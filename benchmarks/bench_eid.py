"""E7 — the EID comparison (Chandra, Lewis & Makowsky 1981).

The paper situates its result against EIDs: "Since EIDs are more general
than template dependencies, the results of this paper imply the
undecidability results of Chandra et al., but not vice versa." This
experiment exercises the containment operationally: every TD is an EID,
the paper's example EID is strictly stronger than its TD split, and the
same chase engine decides EID satisfaction and inference.
"""

from repro.chase.budget import Budget
from repro.chase.engine import chase
from repro.dependencies.eid import td_as_eid
from repro.workloads.garment import figure1_dependency, garment_database, garment_eid

from conftest import record

EXPERIMENT = "E7 / EIDs vs TDs (Chandra-Lewis-Makowsky comparison)"


def test_td_embeds_into_eid_class(benchmark):
    fig1 = figure1_dependency()
    eid = benchmark(td_as_eid, fig1)
    assert eid.is_template_dependency()
    assert eid.as_template_dependency() == fig1
    record(EXPERIMENT, "every TD is an EID with a one-atom conclusion: exact embedding")


def test_eid_model_checking(benchmark):
    eid = garment_eid()
    catalogue = garment_database()
    violation = benchmark(eid.find_violation, catalogue)
    record(
        EXPERIMENT,
        f"paper's example EID on the catalogue: violated={violation is not None}",
    )


def test_eid_strictly_stronger_than_split(benchmark):
    """Chasing with the split TDs does NOT establish the EID."""
    eid = garment_eid()
    split = eid.split()
    catalogue = garment_database()

    def chase_with_split():
        return chase(catalogue, split, budget=Budget(max_steps=500))

    result = benchmark.pedantic(chase_with_split, rounds=1, iterations=1)
    split_satisfies_eid = eid.holds_in(result.instance)
    eid_chased = chase(catalogue, [eid], budget=Budget(max_steps=500)).instance
    assert eid.holds_in(eid_chased)
    record(
        EXPERIMENT,
        f"chase with split TDs satisfies the EID itself: {split_satisfies_eid} "
        "(the conjunction needs ONE witness; the split allows two)",
    )
    record(
        EXPERIMENT,
        "chase with the EID itself satisfies it: True "
        "(shared existential witness per firing)",
    )


def test_eid_chase_cost(benchmark):
    eid = garment_eid()
    catalogue = garment_database()

    def run():
        return chase(catalogue, [eid], budget=Budget(max_steps=500))

    result = benchmark(run)
    record(
        EXPERIMENT,
        f"EID chase on the catalogue: {result.step_count} steps -> "
        f"{len(result.instance)} rows ({result.status.value})",
    )

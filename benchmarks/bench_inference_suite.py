"""E6 — the Main Theorem, operationally: three-valued classification.

Runs the bounded classifier on the canonical positive / negative / gap
instances. The paper proves the first two classes are effectively
inseparable; a bounded procedure therefore must have a third answer, and
the gap instance (in NEITHER of the Main Lemma's sets: no derivation, but
condition (ii) also rules out every cancellation counter-model) shows it
being used honestly.
"""

import pytest

from repro.reduction.theorem import InstanceClass, classify_instance
from repro.workloads.instances import (
    gap_instance,
    negative_instance,
    positive_instance,
)

from conftest import record

EXPERIMENT = "E6 / Main Theorem operationally: three-valued classification"

CASES = [
    ("positive (A0.A0=A0, A0.A0=0)", positive_instance, InstanceClass.A0_COLLAPSES),
    ("negative (zero equations only)", negative_instance, InstanceClass.FINITELY_REFUTABLE),
    ("gap (A0.A0=A0 alone)", gap_instance, InstanceClass.UNKNOWN),
]


@pytest.mark.parametrize("name, build, expected", CASES, ids=[c[0] for c in CASES])
def test_classification(benchmark, name, build, expected):
    presentation = build()

    def classify():
        return classify_instance(presentation, max_semigroup_size=4)

    outcome = benchmark.pedantic(classify, rounds=1, iterations=1)
    assert outcome.instance_class is expected
    certificate = "—"
    if outcome.direction_a is not None:
        certificate = (
            f"derivation len {outcome.direction_a.derivation.length} + "
            f"verified chase proof"
        )
    elif outcome.direction_b is not None:
        certificate = outcome.direction_b.counter_model.describe()
    record(
        EXPERIMENT,
        f"{name:<32} -> {outcome.instance_class.value:<20} [{certificate}]",
    )


def test_gap_has_genuinely_neither(benchmark):
    """The gap instance is outside BOTH inseparable sets, by construction:
    a*a = a with a nonzero contradicts cancellation condition (ii), and no
    derivation exists (checked by bounded search)."""
    from repro.semigroups.rewriting import word_problem
    from repro.semigroups.search import find_counter_model

    presentation = gap_instance()

    def both_searches():
        return (
            word_problem(presentation, max_visited=2_000),
            find_counter_model(presentation, max_size=4),
        )

    derivation, counter_model = benchmark.pedantic(both_searches, rounds=1, iterations=1)
    assert derivation is None
    assert counter_model is None
    record(
        EXPERIMENT,
        "gap instance: no derivation within bounds AND no cancellation "
        "counter-model exists (condition (ii) excludes idempotents) -> "
        "UNKNOWN is forced, as undecidability predicts",
    )

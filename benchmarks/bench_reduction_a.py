"""E4 — Reduction Theorem, direction (A).

Positive word-problem instances: find the derivation ``A0 ->* 0``, replay
it as a machine-verified chase proof of ``D |= D0``, and cross-check with
the generic (unguided) chase. Records derivation length, guided proof
size, and the generic chase's step count — the guided proof is the
paper's induction, the generic chase is what a solver without the paper's
insight must do.
"""

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus, implies
from repro.reduction.encode import encode
from repro.reduction.proofs import prove_from_derivation
from repro.semigroups.rewriting import word_problem
from repro.workloads.instances import positive_chain_family, positive_instance

from conftest import record

EXPERIMENT = "E4 / Reduction Theorem (A): phi valid  =>  D |= D0"

CHAINS = [1, 2, 3, 4]


@pytest.mark.parametrize("chain", CHAINS)
def test_guided_proof(benchmark, chain):
    presentation = positive_chain_family(chain)
    encoding = encode(presentation)
    derivation = word_problem(presentation, max_length=chain + 4)
    assert derivation is not None

    def build_and_verify():
        proof = prove_from_derivation(encoding, derivation)
        proof.verify()
        return proof

    proof = benchmark(build_and_verify)
    record(
        EXPERIMENT,
        f"chain n={chain}: derivation length={derivation.length:>2}  "
        f"guided chase steps={proof.step_count:>2} (<=3/step)  "
        f"final instance={len(proof.final):>3} rows  VERIFIED",
    )


def test_word_problem_search(benchmark):
    presentation = positive_chain_family(3)
    derivation = benchmark(
        word_problem, presentation, max_length=7
    )
    assert derivation is not None
    record(
        EXPERIMENT,
        f"word-problem search (chain n=3): derivation of length "
        f"{derivation.length} found by bidirectional BFS",
    )


def test_generic_chase_cross_check(benchmark):
    """The unguided chase proves the canonical positive instance too."""
    encoding = encode(positive_instance())

    def generic():
        return implies(
            encoding.dependencies,
            encoding.d0,
            budget=Budget(max_steps=4_000, max_seconds=120),
            record_trace=False,
        )

    outcome = benchmark.pedantic(generic, rounds=1, iterations=1)
    assert outcome.status is InferenceStatus.PROVED
    record(
        EXPERIMENT,
        f"generic chase cross-check (canonical instance): PROVED in "
        f"{outcome.chase_result.step_count} steps, "
        f"{len(outcome.chase_result.instance)} rows — vs "
        f"4 guided steps: the derivation is the proof",
    )

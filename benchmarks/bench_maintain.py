"""E16 — incremental maintenance vs from-scratch re-chasing.

PR 7 made chased universal models persistent: a
:class:`~repro.chase.maintain.MaintainedModel` keeps one instance, one
kernel view and one set of trigger memos alive across a stream of base
fact changes, re-deriving only consequences. The alternative — what
every consumer did before — is to re-chase the full base from scratch
after each change. This experiment times both policies over the same
update stream:

* **insert stream** — a chased base, then many small insert batches;
  the incremental path resumes the suspended session per batch, the
  baseline re-chases the accumulated base per batch;
* **delete stream** — the same, deleting base facts batch by batch
  (DRed over-delete/re-derive vs from-scratch re-chase of the
  survivors).

Equivalence is asserted before any timing is trusted: after the full
stream the maintained instance must be homomorphically equivalent to
the final from-scratch chase, with equal-size cores. Full runs assert
the acceptance bar (incremental inserts >= 5x from-scratch); ``--quick``
CI runs assert the coarse >= 1x guard and write the untracked
``BENCH_maintain.quick.json`` so smoke runs never clobber the committed
``BENCH_maintain.json`` baseline.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import chase
from repro.chase.maintain import MaintainedModel
from repro.chase.result import ChaseStatus
from repro.relational.core import core_of, homomorphically_equivalent
from repro.relational.instance import Instance
from repro.workloads.generators import (
    random_instance,
    weakly_acyclic_dependencies,
)

from conftest import record

EXPERIMENT = "E16 / incremental maintenance vs from-scratch re-chasing"

BUDGET = Budget(max_steps=200_000, max_rows=500_000, max_seconds=None)

_REPO_ROOT = Path(__file__).resolve().parent.parent

RESULT_PATH = _REPO_ROOT / "BENCH_maintain.json"
QUICK_RESULT_PATH = _REPO_ROOT / "BENCH_maintain.quick.json"


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture(scope="module")
def workload(quick):
    """One update stream: a chased base plus insert/delete batches."""
    dependencies = weakly_acyclic_dependencies(
        count=4, arity=3, include_eids=True, seed=3
    )
    schema = dependencies[0].schema
    universe = list(
        random_instance(
            seed=11,
            rows=64 if quick else 90,
            arity=3,
            constants_per_column=6 if quick else 7,
            schema=schema,
        ).rows
    )
    base_size = 12 if quick else 40
    batch_size = 2
    base, stream = universe[:base_size], universe[base_size:]
    insert_batches = [
        stream[i : i + batch_size]
        for i in range(0, len(stream), batch_size)
    ]
    # Delete in reverse insertion order, stopping short of the original
    # base so every from-scratch re-chase still has real work.
    delete_batches = list(reversed(insert_batches))[: len(insert_batches) // 2]
    return schema, dependencies, base, insert_batches, delete_batches


def _run_incremental(schema, dependencies, base, inserts, deletes):
    """One maintained model across the whole stream; returns timings."""
    model = MaintainedModel(schema, dependencies, base, budget=BUDGET)
    assert model.saturated
    started = time.perf_counter()
    for batch in inserts:
        report = model.insert(batch)
        assert report.status is ChaseStatus.TERMINATED
    insert_seconds = time.perf_counter() - started
    after_inserts = model.instance.copy()
    started = time.perf_counter()
    for batch in deletes:
        report = model.delete(batch)
        assert report.status is ChaseStatus.TERMINATED
    delete_seconds = time.perf_counter() - started
    return insert_seconds, delete_seconds, after_inserts, model


def _run_scratch(schema, dependencies, base, inserts, deletes):
    """Re-chase the accumulated base from scratch after every batch."""
    facts = set(base)
    final_inserted = None
    started = time.perf_counter()
    for batch in inserts:
        facts.update(batch)
        result = chase(
            Instance(schema, facts),
            dependencies,
            budget=BUDGET,
            record_trace=False,
        )
        assert result.status is ChaseStatus.TERMINATED
        final_inserted = result.instance
    insert_seconds = time.perf_counter() - started
    final_deleted = None
    started = time.perf_counter()
    for batch in deletes:
        facts.difference_update(batch)
        result = chase(
            Instance(schema, facts),
            dependencies,
            budget=BUDGET,
            record_trace=False,
        )
        assert result.status is ChaseStatus.TERMINATED
        final_deleted = result.instance
    delete_seconds = time.perf_counter() - started
    return insert_seconds, delete_seconds, final_inserted, final_deleted


def test_maintenance_speedup(workload, quick):
    schema, dependencies, base, inserts, deletes = workload

    # Warm the plan caches (shared by both policies) off the clock.
    warm = MaintainedModel(schema, dependencies, base[:4], budget=BUDGET)
    warm.insert(inserts[0])
    chase(
        Instance(schema, base[:4]),
        dependencies,
        budget=BUDGET,
        record_trace=False,
    )

    repeats = 1 if quick else 3
    inc_insert = inc_delete = scr_insert = scr_delete = None
    maintained_inserted = maintained = None
    scratch_inserted = scratch_deleted = None
    for __ in range(repeats):
        i_ins, i_del, maintained_inserted, maintained = _run_incremental(
            schema, dependencies, base, inserts, deletes
        )
        s_ins, s_del, scratch_inserted, scratch_deleted = _run_scratch(
            schema, dependencies, base, inserts, deletes
        )
        inc_insert = i_ins if inc_insert is None else min(inc_insert, i_ins)
        inc_delete = i_del if inc_delete is None else min(inc_delete, i_del)
        scr_insert = s_ins if scr_insert is None else min(scr_insert, s_ins)
        scr_delete = s_del if scr_delete is None else min(scr_delete, s_del)

    # Equivalence before timing: both policies computed universal models
    # of the same base facts at the stream's two checkpoints.
    assert homomorphically_equivalent(maintained_inserted, scratch_inserted)
    assert homomorphically_equivalent(maintained.instance, scratch_deleted)
    assert len(core_of(maintained_inserted)) == len(core_of(scratch_inserted))
    assert len(model_core := core_of(maintained.instance)) == len(
        core_of(scratch_deleted)
    )
    assert maintained.saturated and len(model_core) <= len(maintained.instance)

    insert_speedup = scr_insert / inc_insert
    delete_speedup = scr_delete / inc_delete
    record(
        EXPERIMENT,
        f"insert stream  incremental {inc_insert * 1000:>9.1f} ms   "
        f"from-scratch {scr_insert * 1000:>9.1f} ms   "
        f"({len(inserts)} batches of {len(inserts[0])})",
    )
    record(
        EXPERIMENT,
        f"delete stream  incremental {inc_delete * 1000:>9.1f} ms   "
        f"from-scratch {scr_delete * 1000:>9.1f} ms   "
        f"({len(deletes)} batches)",
    )
    record(
        EXPERIMENT,
        f"speedup: {insert_speedup:.2f}x inserts, "
        f"{delete_speedup:.2f}x deletes",
    )

    payload = {
        "experiment": "E16",
        "description": (
            "maintained universal models (resumable chase session, DRed "
            "over-delete/re-derive) vs from-scratch re-chasing per "
            "update batch"
        ),
        "quick": quick,
        "workload": {
            "base_rows": len(base),
            "insert_batches": len(inserts),
            "delete_batches": len(deletes),
            "batch_rows": len(inserts[0]),
            "dependencies": len(dependencies),
        },
        "repeats_best_of": repeats,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "insert_ms": {
            "incremental": round(inc_insert * 1000, 3),
            "from_scratch": round(scr_insert * 1000, 3),
        },
        "delete_ms": {
            "incremental": round(inc_delete * 1000, 3),
            "from_scratch": round(scr_delete * 1000, 3),
        },
        "speedup_inserts": round(insert_speedup, 3),
        # Deliberately NOT a ``speedup_`` key: deletes re-derive from the
        # full surviving frontier, so their ratio hovers near 1x by
        # design (the win is skipping re-interning and view rebuilds) —
        # a trend guard pinning it above 1.0 would flake on noise.
        "ratio_deletes": round(delete_speedup, 3),
    }
    result_path = QUICK_RESULT_PATH if quick else RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    record(EXPERIMENT, f"wrote {result_path.name}")

    if quick:
        # Coarse CI guard: maintenance must never lose to re-chasing.
        # (Tight thresholds on smoke-sized workloads flake on shared
        # runners without any code defect.)
        assert insert_speedup >= 1.0, (
            f"incremental inserts slower than from-scratch on the smoke "
            f"stream ({insert_speedup:.2f}x)"
        )
    else:
        # The acceptance bar on the full-size stream.
        assert insert_speedup >= 5.0, (
            f"incremental insert speedup {insert_speedup:.2f}x < 5x"
        )
        # Deletes re-derive from the full surviving frontier, so their
        # ratio hovers around parity by design; guard only against a
        # collapse (DRed doing meaningfully worse than re-chasing).
        assert delete_speedup >= 0.8, (
            f"incremental deletes collapsed vs from-scratch "
            f"({delete_speedup:.2f}x)"
        )

"""E12 — the HTTP server: serial vs micro-batched vs warm-cache over the wire.

Boots real ``repro serve`` subprocesses on ephemeral localhost ports (so
client and server measure across a process boundary, the way deployments
run) and measures three dispatch regimes on a workload whose expensive
queries are budget-bounded UNKNOWNs — the paper's undecidability made
servable:

* **one-request-per-run** — concurrent client threads against a
  ``--window-ms 0`` server: every request is its own
  ``InferenceService.run``, and a single-task run can never use the
  worker pool's parallelism;
* **micro-batched** — the same concurrent load against a windowed
  server: requests landing together coalesce into shared runs, so
  canonical dedup collapses duplicates *across clients* before any
  chase starts, and each coalesced run fans its misses over the worker
  pool — on a multi-core host the chase work that the per-run regime
  serializes runs ``--workers``-wide;
* **warm cache** — a second client re-issues the whole workload
  alpha-renamed as one ``/v1/batch``: served >= 90% from the cache the
  first clients populated with zero new chases (UNKNOWN verdicts
  included — their budgets cover the identical request), asserted
  through ``/v1/stats``.

Run with ``--quick`` for a smoke-sized workload (CI); the throughput
assertion (micro-batched beats serial) is enforced only at full size,
where the margin is far above scheduler noise.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.dependencies.parser import parse_td
from repro.dependencies.template import TemplateDependency, Variable
from repro.relational.schema import Schema
from repro.service import ServiceClient
from repro.service.testing import ServeSubprocess
from repro.workloads.generators import disguise, transitivity_family

from conftest import record

EXPERIMENT = "E12 / HTTP server: serial vs micro-batched vs warm cache"

#: Per-query budget: unprovable targets under the diverging premise set
#: burn exactly this much chase before their honest UNKNOWN.
BUDGET = Budget(max_steps=120, max_rows=50_000)
QUICK_BUDGET = Budget(max_steps=40, max_rows=50_000)

SCHEMA = Schema(["FROM", "TO"])


def _diverging_premises() -> list[TemplateDependency]:
    """Transitivity plus a successor TD: the chase never terminates, so
    every unprovable target costs its full budget — the expensive case
    a production verdict server actually faces."""
    return [
        parse_td("R(x, y) & R(y, z) -> R(x, z)"),
        parse_td("R(x, y) -> R(y, x2)"),
    ]


def _backward_edge(chain: int, source: int, sink: int) -> TemplateDependency:
    """A chain antecedent whose conclusion points backwards — never
    derivable from the diverging premises (fresh successors cannot reach
    frozen constants), hence UNKNOWN at any finite budget."""
    heads = [Variable(f"a{index}") for index in range(chain + 1)]
    return TemplateDependency(
        SCHEMA,
        [(heads[index], heads[index + 1]) for index in range(chain)],
        (heads[source], heads[sink]),
        name=f"back-{chain}-{source}-{sink}",
    )


def server_workload(
    queries: int, duplicate_fraction: float = 0.35, seed: int = 7
) -> tuple[list[TemplateDependency], list[TemplateDependency]]:
    """Mixed provable/UNKNOWN traffic with disguised duplicates."""
    rng = random.Random(seed)
    backward_edges = [
        (chain, source, sink)
        for chain in range(3, 9)
        for source in range(1, chain + 1)
        for sink in range(source)
    ]
    rng.shuffle(backward_edges)
    targets: list[TemplateDependency] = []
    for number in range(queries):
        if targets and rng.random() < duplicate_fraction:
            targets.append(disguise(rng.choice(targets), seed=number, tag="q"))
        elif rng.random() < 0.5:
            _, path_target = transitivity_family(rng.randrange(3, 8))
            targets.append(disguise(path_target, seed=number, tag="p"))
        else:
            chain, source, sink = backward_edges[number % len(backward_edges)]
            targets.append(_backward_edge(chain, source, sink))
    return _diverging_premises(), targets


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture(scope="module")
def workload(quick):
    queries = 12 if quick else 40
    return server_workload(queries=queries, duplicate_fraction=0.35, seed=7)


def _timed(label, fn):
    started = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - started
    record(EXPERIMENT, f"{label:<40} {elapsed * 1000:>10.1f} ms")
    return result, elapsed


def test_server_throughput_and_cross_client_cache(workload, quick):
    dependencies, targets = workload
    budget = QUICK_BUDGET if quick else BUDGET
    client_threads = 8 if quick else 16
    workers = "2"

    def dispatch_against(base_url):
        def one_request(target):
            return ServiceClient(base_url).implies(
                dependencies, target, budget=budget, certificates=False
            )

        with ThreadPoolExecutor(max_workers=client_threads) as executor:
            return list(executor.map(one_request, targets))

    # --- one-request-per-run: window off, same concurrent load ---------
    with ServeSubprocess("--window-ms", "0", "--workers", workers) as serial_server:
        serial_verdicts, serial_seconds = _timed(
            f"per-run dispatch, {client_threads} client threads",
            lambda: dispatch_against(serial_server.base_url),
        )
        serial_stats = ServiceClient(serial_server.base_url).stats()
    record(
        EXPERIMENT,
        f"  per-run: {serial_stats['server']['batches']} runs for "
        f"{serial_stats['server']['queries']} requests, "
        f"{serial_stats['server']['executed']} chased",
    )

    # --- micro-batched: coalescing window, same concurrent load --------
    with ServeSubprocess("--window-ms", "5", "--workers", workers) as batched_server:
        batched_verdicts, batched_seconds = _timed(
            f"micro-batched, {client_threads} client threads",
            lambda: dispatch_against(batched_server.base_url),
        )
        observer = ServiceClient(batched_server.base_url)
        mid_stats = observer.stats()
        record(
            EXPERIMENT,
            f"  coalesced into {mid_stats['server']['batches']} run(s); "
            f"dedup+cache answered "
            f"{mid_stats['server']['deduplicated'] + mid_stats['server']['cache_hits']}"
            f"/{mid_stats['server']['queries']}",
        )

        # --- warm cache: a second client, alpha-renamed batch ----------
        renamed = [
            disguise(target, seed=9_000 + index, tag="w")
            for index, target in enumerate(targets)
        ]
        second_client = ServiceClient(batched_server.base_url)
        warm_report, warm_seconds = _timed(
            "warm /v1/batch (alpha-renamed, 2nd client)",
            lambda: second_client.batch(
                dependencies, renamed, budget=budget, certificates=False
            ),
        )
        warm_stats = second_client.stats()

    # Correctness: all three regimes agree, query for query.
    expected = [verdict.status for verdict in serial_verdicts]
    assert [verdict.status for verdict in batched_verdicts] == expected
    assert warm_report.statuses == expected
    assert InferenceStatus.UNKNOWN in expected  # the workload is honest

    # Cross-client sharing: the renamed batch is served >= 90% from the
    # cache the first clients populated, with zero new chases — UNKNOWN
    # verdicts included, because their recorded budgets cover the
    # identical request.
    from_cache = warm_report.stats["from_cache"]
    assert from_cache >= 0.9 * len(renamed)
    assert warm_stats["server"]["executed"] == mid_stats["server"]["executed"]
    record(
        EXPERIMENT,
        f"  warm: {from_cache}/{len(renamed)} from cache, 0 new chases; "
        f"speedup over serial {serial_seconds / max(warm_seconds, 1e-9):.0f}x",
    )

    # Micro-batching coalesced: strictly fewer runs than requests, and
    # no more chases than the per-run regime (coalescing dedups the
    # concurrent duplicates the per-run server re-chases).
    assert mid_stats["server"]["batches"] < mid_stats["server"]["queries"]
    assert (
        mid_stats["server"]["executed"] <= serial_stats["server"]["executed"]
    )

    # The acceptance bar: coalesced concurrent dispatch (shared runs,
    # cross-client dedup, pool parallelism) beats one-request-per-run
    # dispatch. The wall-clock edge comes from running each coalesced
    # run's misses --workers wide, so it is only enforced where the
    # hardware can express it: full-size runs on a multi-core host (a
    # single-core box serializes both regimes into near-parity, and the
    # --quick margin is milliseconds on a noisy CI runner).
    cores = os.cpu_count() or 1
    record(
        EXPERIMENT,
        f"  per-run {serial_seconds * 1000:.0f} ms vs micro-batched "
        f"{batched_seconds * 1000:.0f} ms on {cores} core(s)",
    )
    if not quick and cores >= 2:
        assert batched_seconds < serial_seconds

"""E2 — Figure 2: bridges for words.

Regenerates the bridge structure for words of growing length and records
the ``2k + 1`` tuple-count series (k+1 bottom tuples + k apexes), which is
the quantitative content of Figure 2.
"""

import pytest

from repro.reduction.bridge import bridge_instance
from repro.reduction.schema import ReductionSchema

from conftest import record

EXPERIMENT = "E2 / Figure 2: bridge size vs word length (2k+1 tuples)"

LETTERS = ("A0", "X1", "0")
LENGTHS = [1, 2, 4, 8, 16, 32]


def word_of(length: int):
    return tuple(LETTERS[index % len(LETTERS)] for index in range(length))


@pytest.fixture(scope="module")
def schema():
    return ReductionSchema(LETTERS)


@pytest.mark.parametrize("length", LENGTHS)
def test_bridge_construction(benchmark, schema, length):
    word = word_of(length)
    instance, bridge = benchmark(bridge_instance, schema, word)
    assert bridge.tuple_count == 2 * length + 1
    assert len(instance) == bridge.tuple_count
    record(
        EXPERIMENT,
        f"k={length:>3}: bottom={length + 1:>3} apexes={length:>3} "
        f"tuples={bridge.tuple_count:>3} (= 2k+1)",
    )


def test_bridge_invariants_checked(benchmark, schema):
    word = word_of(8)
    __, bridge = bridge_instance(schema, word)
    benchmark(bridge.check)
    record(
        EXPERIMENT,
        "invariants: bottom row E-equivalent, apexes E'-equivalent, "
        "one A'/A'' triangle per letter — verified",
    )

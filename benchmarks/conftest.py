"""Shared infrastructure for the benchmark/experiment harness.

Each benchmark module measures one experiment from DESIGN.md's index
(E1..E10) and *records* the rows/series the paper's artefact corresponds
to via :func:`record`. The recorded lines are printed in the terminal
summary, so ``pytest benchmarks/ --benchmark-only`` emits both the timing
table (pytest-benchmark) and the experiment tables (this hook) — the
latter are what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from collections import OrderedDict

#: experiment id -> list of recorded table lines.
_REPORTS: "OrderedDict[str, list[str]]" = OrderedDict()


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark workloads for smoke runs (CI)",
    )


def record(experiment: str, line: str) -> None:
    """Add one line to an experiment's report table."""
    _REPORTS.setdefault(experiment, []).append(line)


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "experiment reports (paper-shape tables)")
    for experiment, lines in _REPORTS.items():
        terminalreporter.write_line("")
        terminalreporter.write_line(experiment)
        terminalreporter.write_line("-" * len(experiment))
        for line in lines:
            terminalreporter.write_line(line)

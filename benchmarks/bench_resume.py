"""E17 — checkpoint resume vs re-chasing on an UNKNOWN retry.

This PR taught the service to serialize a budget-exhausted chase's
frontier next to its UNKNOWN cache entry and *resume* it when a retry
arrives with a bigger budget, instead of re-chasing from row zero. The
saving is deterministic: a chase suspended after ``B`` of ``S`` total
steps pays ``S - B`` steps on resume where the old path pays ``S``
again — so suspending late (here at 75% of the full chase) bounds the
step ratio near 4x regardless of machine noise.

The workload is transitivity over chains: ``R(a0,a1) & ... ->
R(a0,an)`` (PROVED — the closure reaches the goal) and its reversed
twin ``-> R(an,a0)`` (DISPROVED — the chase terminates without it), so
resume is exercised through to both decisive verdicts. Per target the
full chase is calibrated first, the first run is starved to 75% of
it, and the retry is timed twice from identical starved states: once
resuming (``checkpoints=True``) and once re-chasing
(``checkpoints=False``).

Equivalence is asserted before any timing is trusted: the resumed
verdict must equal the from-scratch verdict for every target, and for
terminating (DISPROVED) chases the cumulative step count and the
counterexample size must match the from-scratch chase exactly (same
closure, merely split across two budgets). Full runs assert
the acceptance bar (steps ratio >= 2x); ``--quick`` CI runs assert the
same bar — the ratio is workload-determined, not machine-determined —
and write the untracked ``BENCH_resume.quick.json`` so smoke runs
never clobber the committed ``BENCH_resume.json`` baseline.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.dependencies.parser import parse_td
from repro.service import InferenceService

from conftest import record

EXPERIMENT = "E17 / checkpoint resume vs re-chase on UNKNOWN retry"

#: Retry budget: big enough that every calibrated chase finishes.
FULL_BUDGET = Budget(max_steps=1_000_000, max_rows=None, max_seconds=None)

#: Fraction of the full chase spent before suspension. Well past half,
#: so the resumed remainder is a small fraction of the full chase and
#: the step ratio clears 2x with margin even where reaching the goal
#: from a resumed frontier costs a few reordered firings.
SUSPEND_FRACTION = 0.75

_REPO_ROOT = Path(__file__).resolve().parent.parent

RESULT_PATH = _REPO_ROOT / "BENCH_resume.json"
QUICK_RESULT_PATH = _REPO_ROOT / "BENCH_resume.quick.json"


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


def proved_chain(n: int):
    atoms = " & ".join(f"R(a{i}, a{i + 1})" for i in range(n))
    return parse_td(f"{atoms} -> R(a0, a{n})")


def disproved_chain(n: int):
    atoms = " & ".join(f"R(a{i}, a{i + 1})" for i in range(n))
    return parse_td(f"{atoms} -> R(a{n}, a0)")


@pytest.fixture(scope="module")
def workload(quick):
    lengths = (8, 10) if quick else (12, 16, 20)
    targets = [proved_chain(n) for n in lengths]
    targets += [disproved_chain(n) for n in lengths]
    expected = [InferenceStatus.PROVED] * len(lengths)
    expected += [InferenceStatus.DISPROVED] * len(lengths)
    return [transitivity()], targets, expected


def _starve_then_retry(premises, target, starve_budget, *, checkpoints):
    """One suspended-then-retried query; returns (outcome, seconds)."""
    service = InferenceService(checkpoints=checkpoints)
    first = service.run_batch(premises, [target], budget=starve_budget)
    outcome = first.outcomes[0]
    assert outcome.status is InferenceStatus.UNKNOWN
    suspended_steps = outcome.chase_result.stats.steps
    started = time.perf_counter()
    retry = service.run_batch(premises, [target], budget=FULL_BUDGET)
    seconds = time.perf_counter() - started
    if checkpoints:
        assert retry.stats.resumed == 1 and retry.stats.executed == 0
    else:
        assert retry.stats.resumed == 0 and retry.stats.executed == 1
    return retry.outcomes[0], suspended_steps, seconds


def test_resume_speedup(workload, quick):
    premises, targets, expected = workload
    # Per-(target, policy) retries repeat and keep the best wall time:
    # these retries are millisecond-scale, so one cold code path (the
    # first checkpoint decode, a first-touch plan compile) would
    # otherwise dominate the whole wall column. Step counts are
    # deterministic and unaffected.
    repeats = 2 if quick else 3

    resumed_steps = scratch_steps = 0
    resumed_seconds = scratch_seconds = 0.0
    for target, want in zip(targets, expected):
        # Calibrate the full chase so the starved budget suspends at a
        # known fraction of it.
        calibration = (
            InferenceService()
            .run_batch(premises, [target], budget=FULL_BUDGET)
            .outcomes[0]
        )
        assert calibration.status is want
        full_steps = calibration.chase_result.stats.steps
        starve = Budget(
            max_steps=max(1, int(full_steps * SUSPEND_FRACTION)),
            max_rows=None,
            max_seconds=None,
        )

        outcome = suspended = seconds = None
        for __ in range(repeats):
            outcome, suspended, once = _starve_then_retry(
                premises, target, starve, checkpoints=True
            )
            seconds = once if seconds is None else min(seconds, once)
        # Equivalence before timing: the resumed verdict matches the
        # calibrated one. For terminating (DISPROVED) chases the
        # cumulative step count and the counterexample size must match
        # the from-scratch chase exactly — one closure split across two
        # budgets, not a different closure. Goal-reaching (PROVED)
        # chases may hit the goal a few reordered firings earlier or
        # later when replayed from a resumed frontier, so only the
        # verdict is pinned there.
        assert outcome.status is want
        cumulative = outcome.chase_result.stats.steps
        if want is InferenceStatus.DISPROVED:
            assert cumulative == full_steps
            assert len(outcome.counterexample.rows) == len(
                calibration.counterexample.rows
            )
        resumed_steps += cumulative - suspended
        resumed_seconds += seconds

        outcome = seconds = None
        for __ in range(repeats):
            outcome, __unused, once = _starve_then_retry(
                premises, target, starve, checkpoints=False
            )
            seconds = once if seconds is None else min(seconds, once)
        assert outcome.status is want
        assert outcome.chase_result.stats.steps == full_steps
        scratch_steps += full_steps
        scratch_seconds += seconds

    step_ratio = scratch_steps / resumed_steps
    wall_ratio = scratch_seconds / resumed_seconds
    record(
        EXPERIMENT,
        f"retry work  resumed {resumed_steps:>7d} steps "
        f"({resumed_seconds * 1000:>7.1f} ms)   from-scratch "
        f"{scratch_steps:>7d} steps ({scratch_seconds * 1000:>7.1f} ms)",
    )
    record(
        EXPERIMENT,
        f"ratio: {step_ratio:.2f}x steps, {wall_ratio:.2f}x wall "
        f"({len(targets)} targets suspended at "
        f"{SUSPEND_FRACTION:.0%} of the full chase)",
    )

    payload = {
        "experiment": "E17",
        "description": (
            "UNKNOWN retries resumed from a serialized chase checkpoint "
            "vs re-chased from row zero under the bigger budget"
        ),
        "quick": quick,
        "workload": {
            "targets": len(targets),
            "suspend_fraction": SUSPEND_FRACTION,
        },
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "retry_steps": {
            "resumed": resumed_steps,
            "from_scratch": scratch_steps,
        },
        "retry_ms": {
            "resumed": round(resumed_seconds * 1000, 3),
            "from_scratch": round(scratch_seconds * 1000, 3),
        },
        "speedup_resume_steps": round(step_ratio, 3),
        # Deliberately NOT a ``speedup_`` key: these retries are
        # millisecond-scale, so the wall ratio is dominated by fixed
        # per-run costs (hashing, cache traffic) and runner noise — the
        # steps ratio above is the deterministic headline.
        "ratio_wall": round(wall_ratio, 3),
    }
    result_path = QUICK_RESULT_PATH if quick else RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    record(EXPERIMENT, f"wrote {result_path.name}")

    # The acceptance bar: suspending past half the chase must at least
    # halve the retry's step bill. Workload-determined, so it holds in
    # quick mode too.
    assert step_ratio >= 2.0, (
        f"resumed retry step ratio {step_ratio:.2f}x < 2x"
    )

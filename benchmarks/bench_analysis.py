"""E18 — goal-directed pruning + derived budgets vs the plain chase.

This PR added a static analyzer that (a) prunes dependencies which can
never influence the verdict — never-firing rules, alpha-renamed
duplicates, shortcuts entailed by what remains — before the chase plan
is compiled, and (b) certifies terminating premise sets with a derived
step/row bound so budget-free queries run to fixpoint. The benchmark
asks one question: on a noisy premise set, how much chase work does the
analyzer shave off without moving a single verdict?

The workload premise set is transitivity plus four parasites the
analyzer must discharge: an alpha-renamed copy of transitivity
(``duplicate``), a 3-chain and a 4-chain shortcut both derivable from
transitivity alone (``entailed``), and a rule whose conclusion embeds
into its own antecedents (``never-fires``). Targets are proved chains
``R(a0,a1) & ... -> R(a0,an)`` and their disproved reversals, the same
family E17 uses. Every target is chased twice through :func:`implies`:
``analysis="off"`` (all five rules, explicit unlimited budget — the
pre-analyzer behavior) and the default ``analysis="auto"`` (pruned to
one rule, budget derived from the termination certificate).

Verdict equivalence is asserted per target before any timing is
trusted, as is the analyzer's work: exactly four dependencies pruned,
the derived budget never exceeded, UNKNOWN impossible. The acceptance
bar is ``speedup_pruned_chase >= 1x`` on *wall time* — pruning must
never make the chase slower — with the step ratio recorded alongside
(steps can dip slightly below 1x: the entailed shortcuts sometimes
reach a PROVED goal in fewer firings, but each firing pays a wider
join, which is exactly the work the analyzer avoids).
``--quick`` runs write the untracked ``BENCH_analysis.quick.json`` so
CI smoke never clobbers the committed ``BENCH_analysis.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.analysis import analyze
from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus, implies
from repro.dependencies.parser import parse_td
from repro.workloads.generators import disguise

from conftest import record

EXPERIMENT = "E18 / analyzer pruning + derived budgets vs plain chase"

_REPO_ROOT = Path(__file__).resolve().parent.parent

RESULT_PATH = _REPO_ROOT / "BENCH_analysis.json"
QUICK_RESULT_PATH = _REPO_ROOT / "BENCH_analysis.quick.json"


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


def transitivity():
    return parse_td("R(x, y) & R(y, z) -> R(x, z)")


def noisy_premises():
    """Transitivity plus four parasites the analyzer must discharge."""
    base = transitivity()
    return [
        base,
        disguise(base, seed=11),  # alpha-renamed duplicate
        parse_td("R(x, y) & R(y, z) & R(z, u) -> R(x, u)"),  # entailed
        parse_td(
            "R(x, y) & R(y, z) & R(z, u) & R(u, v) -> R(x, v)"
        ),  # entailed
        parse_td("R(x, y) & R(y, z) -> R(x, w)"),  # never fires
    ]


def proved_chain(n: int):
    atoms = " & ".join(f"R(a{i}, a{i + 1})" for i in range(n))
    return parse_td(f"{atoms} -> R(a0, a{n})")


def disproved_chain(n: int):
    atoms = " & ".join(f"R(a{i}, a{i + 1})" for i in range(n))
    return parse_td(f"{atoms} -> R(a{n}, a0)")


@pytest.fixture(scope="module")
def workload(quick):
    lengths = (8, 10) if quick else (12, 16, 20)
    targets = [proved_chain(n) for n in lengths]
    targets += [disproved_chain(n) for n in lengths]
    expected = [InferenceStatus.PROVED] * len(lengths)
    expected += [InferenceStatus.DISPROVED] * len(lengths)
    return noisy_premises(), targets, expected


def _time_best(fn, repeats):
    """Best-of-N wall time; returns (last outcome, seconds)."""
    outcome = seconds = None
    for __ in range(repeats):
        started = time.perf_counter()
        outcome = fn()
        once = time.perf_counter() - started
        seconds = once if seconds is None else min(seconds, once)
    return outcome, seconds


def test_pruning_speedup(workload, quick):
    premises, targets, expected = workload
    repeats = 2 if quick else 3

    # The analyzer's homework, checked before any timing: the full set
    # is certified and pruning discharges exactly the four parasites.
    report = analyze(tuple(premises))
    assert report.certified, report.describe()

    pruned_steps = full_steps = 0
    pruned_seconds = full_seconds = 0.0
    for target, want in zip(targets, expected):
        full, f_seconds = _time_best(
            lambda: implies(
                premises, target, budget=Budget.unlimited(), analysis="off"
            ),
            repeats,
        )
        assert full.status is want
        assert full.analysis is None

        pruned, p_seconds = _time_best(
            lambda: implies(premises, target), repeats
        )
        # Equivalence first: the pruned, derived-budget chase lands on
        # the same verdict, decisively.
        assert pruned.status is want
        provenance = pruned.analysis
        assert provenance is not None
        assert provenance["applied"] is True
        assert provenance["pruned"] == 4
        assert provenance["kept"] == 1
        reasons = sorted(d["reason"] for d in provenance["dropped"])
        assert reasons == [
            "duplicate", "entailed", "entailed", "never-fires",
        ]
        assert pruned.chase_result.stats.steps < provenance[
            "derived_max_steps"
        ]

        full_steps += full.chase_result.stats.steps
        pruned_steps += pruned.chase_result.stats.steps
        full_seconds += f_seconds
        pruned_seconds += p_seconds

    step_ratio = full_steps / pruned_steps
    wall_ratio = full_seconds / pruned_seconds
    record(
        EXPERIMENT,
        f"chase work  pruned {pruned_steps:>6d} steps "
        f"({pruned_seconds * 1000:>7.1f} ms)   full program "
        f"{full_steps:>6d} steps ({full_seconds * 1000:>7.1f} ms)",
    )
    record(
        EXPERIMENT,
        f"ratio: {step_ratio:.2f}x steps, {wall_ratio:.2f}x wall "
        f"({len(targets)} targets, {len(premises)} premises pruned to 1)",
    )

    payload = {
        "experiment": "E18",
        "description": (
            "goal-directed pruning + certificate-derived budgets vs the "
            "full premise set under an explicit unlimited budget"
        ),
        "quick": quick,
        "workload": {
            "targets": len(targets),
            "premises": len(premises),
            "kept_after_pruning": 1,
        },
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "chase_steps": {
            "pruned": pruned_steps,
            "full_program": full_steps,
        },
        "chase_ms": {
            "pruned": round(pruned_seconds * 1000, 3),
            "full_program": round(full_seconds * 1000, 3),
        },
        "speedup_pruned_chase": round(wall_ratio, 3),
        "ratio_steps": round(step_ratio, 3),
    }
    result_path = QUICK_RESULT_PATH if quick else RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    record(EXPERIMENT, f"wrote {result_path.name}")

    # The acceptance bar: pruning four parasite rules must never make
    # the chase slower. Wall, not steps, is the bar on purpose: the
    # entailed shortcuts can reach a PROVED goal in slightly *fewer*
    # firings, but each of their firings pays a 3- or 4-way join — the
    # analyzer's win is join work avoided, and that is what wall
    # measures.
    assert wall_ratio >= 1.0, (
        f"pruned chase wall ratio {wall_ratio:.2f}x < 1x"
    )

"""E3 — Figure 3: the dependencies D1..D4 and D0; encoding size claims.

Regenerates the encoding for alphabets of growing size and records the
paper's two quantitative claims: the schema has exactly ``2n + 2``
attributes, and every dependency has at most **five** antecedents (the
boundedness that makes this proof complementary to Vardi's).
"""

import pytest

from repro.dependencies.classify import summarize
from repro.reduction.encode import encode
from repro.workloads.instances import negative_family

from conftest import record

EXPERIMENT = "E3 / Figure 3: encoding size (2n+2 attributes, <=5 antecedents)"

EXTRA_LETTERS = [0, 1, 2, 4, 8]


@pytest.mark.parametrize("extra", EXTRA_LETTERS)
def test_encoding_scaling(benchmark, extra):
    presentation = negative_family(extra)
    encoding = benchmark(encode, presentation)
    n = len(encoding.presentation.alphabet)
    summary = summarize(encoding.dependencies + [encoding.d0])
    assert encoding.attribute_count == 2 * n + 2
    assert summary.max_antecedents == 5
    assert encoding.dependency_count == 4 * len(encoding.presentation.equations)
    record(
        EXPERIMENT,
        f"n={n:>2} letters: attributes={encoding.attribute_count:>2} (=2n+2)  "
        f"equations={len(encoding.presentation.equations):>2}  "
        f"dependencies={encoding.dependency_count:>3} (=4|E|)  "
        f"max antecedents={summary.max_antecedents} (<=5)  typed={summary.typed}",
    )


def test_d1_to_d4_shapes(benchmark):
    from repro.semigroups.presentation import Equation
    from repro.reduction.dependencies import equation_dependencies
    from repro.reduction.schema import ReductionSchema

    schema = ReductionSchema(("A0", "B", "C", "0"))
    equation = Equation.make(["A0", "B"], ["C"])
    four = benchmark(equation_dependencies, schema, equation)
    antecedent_counts = [len(td.antecedents) for td in four]
    assert antecedent_counts == [5, 3, 3, 5]
    record(
        EXPERIMENT,
        "per equation r: AB=C  ->  D1 (5 antecedents), D2 (3), D3 (3), D4 (5); "
        "D0 has 3",
    )

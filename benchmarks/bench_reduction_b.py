"""E5 — Reduction Theorem, direction (B).

Negative word-problem instances: find a finite identity-free cancellation
counter-semigroup, build the paper's ``P u Q`` counterexample database and
model-check that every ``Di(r)`` holds while ``D0`` fails. Records the
|G| -> |G'|, |P|, |Q| series and the verification verdicts.
"""

import pytest

from repro.reduction.encode import encode
from repro.reduction.model import counterexample_database, verify_counterexample
from repro.semigroups.search import find_counter_model
from repro.workloads.instances import negative_family

from conftest import record

EXPERIMENT = "E5 / Reduction Theorem (B): finite counter-model  =>  D |/= D0 finitely"

EXTRA_LETTERS = [0, 1, 2, 3]


@pytest.mark.parametrize("extra", EXTRA_LETTERS)
def test_counterexample_database(benchmark, extra):
    presentation = negative_family(extra)
    encoding = encode(presentation)
    counter_model = find_counter_model(presentation)
    assert counter_model is not None

    def build():
        return counterexample_database(encoding, counter_model)

    database = benchmark(build)
    report = verify_counterexample(database)
    assert report.ok
    record(
        EXPERIMENT,
        f"alphabet n={len(presentation.alphabet)}: "
        f"|G|={counter_model.semigroup.size} -> |G'|={database.extended.size}  "
        f"|P|={len(database.p_elements)}  |Q|={len(database.q_elements)}  "
        f"rows={len(database.instance)}  "
        f"all D hold=True, D0 fails=True  CONFIRMED",
    )


def test_counter_model_search(benchmark):
    presentation = negative_family(1)
    counter_model = benchmark(find_counter_model, presentation)
    assert counter_model is not None
    record(
        EXPERIMENT,
        f"counter-semigroup search (n=3 letters): {counter_model.describe()}",
    )


@pytest.mark.parametrize("index", [3, 4, 6, 8])
def test_database_scales_with_semigroup(benchmark, index):
    """|P| grows with the counter-semigroup: in the nilpotent semigroup of
    index k with A0 -> a^(k-2), the divisors of a^(k-2) are I, a, ...,
    a^(k-2), so |P| = k-1 while |Q| stays 1 (zero equations only)."""
    from repro.semigroups.construct import free_nilpotent
    from repro.semigroups.search import CounterModel

    presentation = negative_family(0)
    encoding = encode(presentation)
    semigroup = free_nilpotent(index)
    # A0 -> a^(k-2): 0-based element index k-3 (element i is a^(i+1)).
    counter_model = CounterModel(semigroup, {"A0": index - 3, "0": index - 1})

    def build_and_verify():
        database = counterexample_database(encoding, counter_model)
        return database, verify_counterexample(database)

    database, report = benchmark.pedantic(build_and_verify, rounds=1, iterations=1)
    assert report.ok
    assert len(database.p_elements) == index - 1
    record(
        EXPERIMENT,
        f"nilpotent index {index}: |G|={semigroup.size}  "
        f"|P|={len(database.p_elements)} (= k-1)  "
        f"|Q|={len(database.q_elements)}  rows={len(database.instance)}  "
        f"CONFIRMED",
    )


def test_model_check_cost(benchmark):
    """Verification cost: model-checking all of D against the database."""
    presentation = negative_family(2)
    encoding = encode(presentation)
    counter_model = find_counter_model(presentation)
    database = counterexample_database(encoding, counter_model)
    report = benchmark(verify_counterexample, database)
    assert report.ok
    record(
        EXPERIMENT,
        f"model-check cost: {encoding.dependency_count} dependencies x "
        f"{len(database.instance)} rows per verification pass",
    )

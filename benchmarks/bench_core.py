"""E15 — compiled core/CQ engine vs the legacy generic search.

PR 3/4 compiled the chase and model checking; cores and conjunctive
queries were the last consumers of the generic backtracking search —
and cores are the differential suites' own runtime sink (every
"equal up to null renaming" comparison computes two cores). This
experiment times the compiled homomorphism engine
(:mod:`repro.relational.homplan`) against the legacy engine on the two
remaining hom-shaped workloads:

* **core mix** — redundancy-heavy instances produced by the OBLIVIOUS
  chase (which fires every trigger once, active or not, so its results
  drip with foldable nulls) plus terminated restricted chases of
  weakly acyclic embedded sets; each is ``core_of``-ed and
  cross-checked with ``homomorphically_equivalent`` — the shape of the
  differential suites and of universal-model canonicalization;
* **CQ mix** — random conjunctive queries padded with foldable atoms:
  ``minimized()`` (iterated retraction fixing the head) plus pairwise
  Chandra–Merlin containment over the batch.

Both engines must agree before any timing is trusted: equal core
sizes, homomorphically equivalent cores, identical containment verdict
matrices, equal minimized body sizes. Full runs assert the acceptance
bar (compiled >= 2x legacy on the combined mix); ``--quick`` CI runs
assert the coarse >= 1x guard and write the untracked
``BENCH_core.quick.json`` so smoke runs never clobber the committed
``BENCH_core.json`` baseline.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, chase
from repro.chase.result import ChaseStatus
from repro.relational.core import core_of, homomorphically_equivalent
from repro.workloads.generators import (
    random_cq,
    random_instance,
    weakly_acyclic_dependencies,
)

from conftest import record

EXPERIMENT = "E15 / compiled core + CQ engine vs legacy generic search"

BUDGET = Budget(max_steps=4_000)

ENGINES = ("legacy", "compiled")

_REPO_ROOT = Path(__file__).resolve().parent.parent

RESULT_PATH = _REPO_ROOT / "BENCH_core.json"
QUICK_RESULT_PATH = _REPO_ROOT / "BENCH_core.quick.json"


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture(scope="module")
def core_cases(quick):
    """Redundancy-heavy instances worth coring."""
    seeds = range(4) if quick else range(12)
    cases = []
    for seed in seeds:
        dependencies = weakly_acyclic_dependencies(
            count=2, include_eids=True, seed=seed
        )
        start = random_instance(seed=seed, rows=5 if quick else 7)
        # The OBLIVIOUS chase fires every trigger once, active or not:
        # maximal redundancy, the hard case for core computation.
        oblivious = chase(
            start,
            dependencies,
            variant=ChaseVariant.OBLIVIOUS,
            budget=Budget(max_steps=60 if quick else 120),
            record_trace=False,
        ).instance
        restricted = chase(
            start, dependencies, budget=BUDGET, record_trace=False
        )
        assert restricted.status is ChaseStatus.TERMINATED
        cases.append((oblivious, restricted.instance))
    return cases


@pytest.fixture(scope="module")
def cq_cases(quick):
    """Foldable conjunctive queries plus containment probe pairs."""
    count = 6 if quick else 18
    return [
        random_cq(
            seed=seed,
            body_atoms=3,
            redundant_atoms=3 if quick else 5,
            head_size=1,
        )
        for seed in range(count)
    ]


def _time_core_mix(cases, engine, repeats):
    best = None
    summary = None
    for __ in range(repeats):
        sizes = []
        started = time.perf_counter()
        for oblivious, restricted in cases:
            oblivious_core = core_of(oblivious, engine=engine)
            restricted_core = core_of(restricted, engine=engine)
            sizes.append((len(oblivious_core), len(restricted_core)))
            # The two chase variants must agree up to null renaming —
            # the differential suites' own comparison, timed here.
            sizes.append(
                homomorphically_equivalent(
                    oblivious_core, restricted_core, engine=engine
                )
            )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
        summary = sizes
    return best, summary


def _time_cq_mix(queries, engine, repeats):
    best = None
    summary = None
    for __ in range(repeats):
        verdicts = []
        started = time.perf_counter()
        for query in queries:
            minimized = query.minimized(engine=engine)
            verdicts.append(len(minimized.body))
            verdicts.append(query.is_equivalent_to(minimized, engine=engine))
        for left in queries:
            for right in queries:
                verdicts.append(left.is_contained_in(right, engine=engine))
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
        summary = verdicts
    return best, summary


def test_core_cq_speedup(core_cases, cq_cases, quick):
    repeats = 2 if quick else 5

    # Warm both engines (plan caches, interpreter warmup) off the clock.
    for engine in ENGINES:
        _time_core_mix(core_cases[:2], engine, 1)
        _time_cq_mix(cq_cases[:2], engine, 1)

    core_times: dict[str, float] = {}
    core_summaries = {}
    for engine in ENGINES:
        seconds, summary = _time_core_mix(core_cases, engine, repeats)
        core_times[engine] = seconds
        core_summaries[engine] = summary
        record(
            EXPERIMENT,
            f"core mix            {engine:<9} {seconds * 1000:>9.1f} ms "
            f"({len(core_cases)} oblivious+restricted pairs cored)",
        )

    cq_times: dict[str, float] = {}
    cq_summaries = {}
    for engine in ENGINES:
        seconds, summary = _time_cq_mix(cq_cases, engine, repeats)
        cq_times[engine] = seconds
        cq_summaries[engine] = summary
        record(
            EXPERIMENT,
            f"CQ minimize+contain {engine:<9} {seconds * 1000:>9.1f} ms "
            f"({len(cq_cases)} queries, {len(cq_cases) ** 2} containments)",
        )

    # Correctness before timing: identical core sizes and equivalence
    # verdicts, identical minimized sizes and containment matrices.
    assert core_summaries["compiled"] == core_summaries["legacy"], (
        "compiled engine changed core computation results"
    )
    assert cq_summaries["compiled"] == cq_summaries["legacy"], (
        "compiled engine changed CQ verdicts"
    )

    core_speedup = core_times["legacy"] / core_times["compiled"]
    cq_speedup = cq_times["legacy"] / cq_times["compiled"]
    total_legacy = core_times["legacy"] + cq_times["legacy"]
    total_compiled = core_times["compiled"] + cq_times["compiled"]
    total_speedup = total_legacy / total_compiled
    record(
        EXPERIMENT,
        f"speedup: {core_speedup:.2f}x cores, {cq_speedup:.2f}x CQs, "
        f"{total_speedup:.2f}x combined",
    )

    payload = {
        "experiment": "E15",
        "description": (
            "compiled homomorphism engine (cores, homomorphic "
            "equivalence, CQ evaluation/containment/minimization on the "
            "shared join kernel) vs the legacy generic search"
        ),
        "quick": quick,
        "workload": {
            "core_pairs": len(core_cases),
            "cq_queries": len(cq_cases),
            "cq_containment_pairs": len(cq_cases) ** 2,
            "budget_max_steps": BUDGET.max_steps,
        },
        "repeats_best_of": repeats,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "core_mix_ms": {
            engine: round(seconds * 1000, 3)
            for engine, seconds in core_times.items()
        },
        "cq_mix_ms": {
            engine: round(seconds * 1000, 3)
            for engine, seconds in cq_times.items()
        },
        "speedup_cores": round(core_speedup, 3),
        "speedup_cqs": round(cq_speedup, 3),
        "speedup_combined": round(total_speedup, 3),
    }
    result_path = QUICK_RESULT_PATH if quick else RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    record(EXPERIMENT, f"wrote {result_path.name}")

    if quick:
        # Coarse CI guard: compiled must never be slower than the search
        # it replaced. (Tight thresholds on smoke-sized workloads flake
        # on shared runners without any code defect.)
        assert total_speedup >= 1.0, (
            f"compiled engine slower than legacy on the smoke mix "
            f"({total_speedup:.2f}x)"
        )
    else:
        # The acceptance bar on the full-size workload.
        assert total_speedup >= 2.0, (
            f"compiled core/CQ speedup {total_speedup:.2f}x < 2x"
        )

"""E1 — Figure 1: the garment dependency and its diagram.

Regenerates the paper's Figure 1 (the example TD's diagram), checks the
diagram <-> formula round trip, and benchmarks diagram construction and
model checking on the garment catalogue.
"""

from repro.chase.engine import chase
from repro.dependencies.diagram import DiagramEdge, diagram_of
from repro.dependencies.render import render_ascii
from repro.workloads.garment import figure1_dependency, garment_database

from conftest import record

EXPERIMENT = "E1 / Figure 1: the garment dependency diagram"


def test_figure1_diagram_shape(benchmark):
    fig1 = figure1_dependency()
    diagram = benchmark(diagram_of, fig1)
    assert diagram.edges == frozenset(
        {
            DiagramEdge.make("1", "2", "SUPPLIER"),
            DiagramEdge.make("1", "*", "STYLE"),
            DiagramEdge.make("2", "*", "SIZE"),
        }
    )
    record(EXPERIMENT, "dependency: " + str(fig1))
    for line in render_ascii(diagram).splitlines():
        record(EXPERIMENT, "  " + line)


def test_figure1_round_trip(benchmark):
    fig1 = figure1_dependency()

    def round_trip():
        return diagram_of(fig1).to_dependency()

    rebuilt = benchmark(round_trip)
    assert rebuilt.structurally_equal(fig1)
    record(EXPERIMENT, "diagram -> formula round trip: exact (up to renaming)")


def test_figure1_model_check(benchmark):
    fig1 = figure1_dependency()
    catalogue = garment_database()
    violation = benchmark(fig1.find_violation, catalogue)
    assert violation is not None  # the raw catalogue violates it
    record(
        EXPERIMENT,
        f"catalogue ({len(catalogue)} rows) violates the dependency: True",
    )


def test_figure1_chase_repair(benchmark):
    fig1 = figure1_dependency()
    catalogue = garment_database()

    def repair():
        return chase(catalogue, [fig1])

    result = benchmark(repair)
    assert fig1.holds_in(result.instance)
    record(
        EXPERIMENT,
        f"chase repair: {len(catalogue)} -> {len(result.instance)} rows in "
        f"{result.step_count} steps; dependency then holds",
    )

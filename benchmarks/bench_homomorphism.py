"""E9 (substrate) — homomorphism search scaling.

The homomorphism finder underlies everything (triggers, model checking,
implication); this measures pattern matching into cycles of growing size
and patterns of growing length, recording the match-count series.
"""

import pytest

from repro.relational.homomorphism import count_homomorphisms, find_homomorphism
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const, LabeledNull

from conftest import record

EXPERIMENT = "E9b / homomorphism search: path patterns into cycles"

SCHEMA = Schema(["FROM", "TO"])


def cycle(size: int) -> Instance:
    nodes = [Const(f"n{index}") for index in range(size)]
    return Instance(
        SCHEMA, [(nodes[index], nodes[(index + 1) % size]) for index in range(size)]
    )


def path_pattern(length: int):
    variables = [LabeledNull(index) for index in range(length + 1)]
    return [
        (variables[index], variables[index + 1]) for index in range(length)
    ]


@pytest.mark.parametrize("size", [10, 40, 160])
def test_cycle_size_scaling(benchmark, size):
    target = cycle(size)
    pattern = path_pattern(4)
    count = benchmark(count_homomorphisms, pattern, target)
    assert count == size  # a path embeds once per starting node
    record(
        EXPERIMENT,
        f"cycle n={size:>4}, path k=4: {count:>4} matches (= n, one per start)",
    )


@pytest.mark.parametrize("length", [2, 6, 12])
def test_pattern_length_scaling(benchmark, length):
    target = cycle(32)
    pattern = path_pattern(length)
    count = benchmark(count_homomorphisms, pattern, target)
    assert count == 32
    record(
        EXPERIMENT,
        f"cycle n=32, path k={length:>2}: {count} matches "
        "(count independent of k on a cycle)",
    )


def test_unsatisfiable_pattern_fast_failure(benchmark):
    """The index prunes impossible patterns without search."""
    target = cycle(64)
    absent = Const("not-in-cycle")
    pattern = [(absent, LabeledNull(0))]
    found = benchmark(find_homomorphism, pattern, target)
    assert found is None
    record(EXPERIMENT, "unsatisfiable pattern: rejected via index, no backtracking")

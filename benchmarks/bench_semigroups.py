"""E10 — the semigroup substrate (Main Lemma machinery).

Measures short-form normalisation, the exhaustive associative-table
search, cancellation checking across the nilpotent family, and
counter-model search — recording the series that calibrate the word-
problem side of the reduction.
"""

import pytest

from repro.semigroups.construct import free_nilpotent
from repro.semigroups.presentation import Equation, Presentation
from repro.semigroups.rewriting import word_problem
from repro.semigroups.search import _iter_all_tables, find_counter_model
from repro.workloads.instances import negative_instance, positive_chain_family

from conftest import record

EXPERIMENT = "E10 / semigroup substrate: normalisation, search, cancellation"


@pytest.mark.parametrize("word_length", [3, 5, 9])
def test_normalisation_scaling(benchmark, word_length):
    presentation = Presentation.with_zero_equations(
        ["A0", "0"],
        [Equation.make(["A0"] * word_length, ["0"])],
    )
    normalized = benchmark(presentation.normalized)
    assert normalized.is_short_form()
    record(
        EXPERIMENT,
        f"normalise |lhs|={word_length}: {len(presentation.equations):>2} -> "
        f"{len(normalized.equations):>2} equations, "
        f"{len(normalized.alphabet) - len(presentation.alphabet)} fresh letters",
    )


@pytest.mark.parametrize("size", [2, 3])
def test_exhaustive_table_search(benchmark, size):
    tables = benchmark.pedantic(
        lambda: list(_iter_all_tables(size)), rounds=1, iterations=1
    )
    expected = {2: 8, 3: 113}[size]
    assert len(tables) == expected
    record(
        EXPERIMENT,
        f"associative tables on {size} elements: {len(tables)} "
        f"(matches the classical count {expected})",
    )


@pytest.mark.parametrize("index", [3, 6, 12])
def test_cancellation_check_scaling(benchmark, index):
    semigroup = free_nilpotent(index)
    ok = benchmark(semigroup.has_cancellation_property)
    assert ok
    record(
        EXPERIMENT,
        f"nilpotent index {index:>2} ({semigroup.size} elements): "
        "cancellation property holds (checked)",
    )


def test_counter_model_search_cost(benchmark):
    presentation = negative_instance()

    def run():
        return find_counter_model(presentation)

    model = benchmark(run)
    assert model is not None
    record(
        EXPERIMENT,
        f"counter-model search (canonical negative): {model.describe()}",
    )


@pytest.mark.parametrize("bound", [2, 3, 4])
def test_bounded_quotient_growth(benchmark, bound):
    """The quotient S*/~ truncated to words of length <= bound: class
    counts separate the positive instance (everything collapses) from the
    negative one (A0-powers stay apart)."""
    from repro.semigroups.congruence import bounded_quotient

    positive = positive_chain_family(1)
    negative = negative_instance()

    def run():
        return bounded_quotient(negative, bound)

    negative_quotient = benchmark(run)
    positive_quotient = bounded_quotient(positive, bound)
    assert not negative_quotient.a0_collapses()
    record(
        EXPERIMENT,
        f"bounded quotient (len<={bound}): negative instance "
        f"{negative_quotient.word_count} words -> "
        f"{negative_quotient.class_count} classes (A0 ~ 0: False); "
        f"positive chain -> {positive_quotient.class_count} classes "
        f"(A0 ~ 0: {positive_quotient.a0_collapses()})",
    )


@pytest.mark.parametrize("chain", [1, 3])
def test_word_problem_cost(benchmark, chain):
    presentation = positive_chain_family(chain)

    def run():
        return word_problem(presentation, max_length=chain + 4)

    derivation = benchmark(run)
    assert derivation is not None
    record(
        EXPERIMENT,
        f"word problem (chain n={chain}): derivation length {derivation.length}",
    )

"""E3-companion — termination analysis of the encoded dependency sets.

Weak acyclicity is the standard syntactic guarantee of chase termination.
The Gurevich-Lewis encodings can never have it: a weakly acyclic encoding
would let the chase decide ``D |= D0`` and hence the word problem,
contradicting the Main Theorem. This harness measures the analysis and
records that every encoding is (necessarily) outside the guarantee, while
the full-TD workloads are inside it.
"""

import pytest

from repro.chase.termination import is_weakly_acyclic, termination_report
from repro.dependencies.parser import parse_td
from repro.reduction.encode import encode
from repro.workloads.generators import transitivity_family
from repro.workloads.instances import negative_family, positive_instance

from conftest import record

EXPERIMENT = "E3b / weak acyclicity: encodings are (necessarily) outside the guarantee"


@pytest.mark.parametrize("extra", [0, 2, 4])
def test_encodings_never_weakly_acyclic(benchmark, extra):
    encoding = encode(negative_family(extra))

    def analyse():
        return termination_report(encoding.dependencies)

    report = benchmark(analyse)
    assert not report.weakly_acyclic
    record(
        EXPERIMENT,
        f"encoding (n={len(encoding.presentation.alphabet)} letters, "
        f"{encoding.dependency_count} dependencies): NOT weakly acyclic "
        f"({report.special_edge_count} special edges) — as the Main "
        "Theorem requires",
    )


def test_positive_encoding_also_outside(benchmark):
    encoding = encode(positive_instance())
    report = benchmark(termination_report, encoding.dependencies)
    assert not report.weakly_acyclic
    record(
        EXPERIMENT,
        "positive encoding: NOT weakly acyclic either (divergence risk is "
        "intrinsic; the guided proof sidesteps it)",
    )


def test_full_td_workloads_inside(benchmark):
    deps, __ = transitivity_family(8)
    report = benchmark(termination_report, deps)
    assert report.weakly_acyclic
    record(
        EXPERIMENT,
        "control (full TDs, transitivity family): weakly acyclic — chase "
        "termination guaranteed",
    )


def test_single_embedded_td(benchmark):
    successor = parse_td("R(x, y) -> R(y, s)")
    report = benchmark(termination_report, [successor])
    assert not report.weakly_acyclic
    record(
        EXPERIMENT,
        "control (successor TD): NOT weakly acyclic — matches its "
        "observed chase divergence (E8)",
    )

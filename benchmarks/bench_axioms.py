"""E11 — the derivation calculus vs the chase (Sadri-Ullman comparison).

TDs came with a complete axiomatization (Sadri & Ullman 1980); this paper
shows no recursive axiomatization can be complete for the *finite*
semantics. The harness compares the calculus prover (tableau derivations
with verified proof objects) against the chase-based solver on the same
implication instances, and measures the structural subsumption fast path.
"""

import pytest

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus, implies
from repro.core.axioms import derive, subsumes
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema
from repro.workloads.generators import transitivity_family

from conftest import record

EXPERIMENT = "E11 / derivation calculus vs chase"

SCHEMA = Schema(["FROM", "TO"])


@pytest.mark.parametrize("length", [3, 5, 8])
def test_calculus_derivations(benchmark, length):
    deps, target = transitivity_family(length)

    def run():
        return derive(deps, target, max_steps=400)

    proof = benchmark(run)
    assert proof is not None
    chased = implies(deps, target, budget=Budget.unlimited())
    assert chased.status is InferenceStatus.PROVED
    record(
        EXPERIMENT,
        f"path k={length}: calculus proof with {proof.length:>3} composition "
        f"steps (verified); chase agrees "
        f"({chased.chase_result.step_count} firings)",
    )


def test_subsumption_fast_path(benchmark):
    transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", SCHEMA)
    augmented = parse_td(
        "R(x, y) & R(y, z) & R(u, v) & R(v, w) -> R(x, z)", SCHEMA
    )
    witness = benchmark(subsumes, transitivity, augmented)
    assert witness is not None
    record(
        EXPERIMENT,
        "subsumption rule: augmented variant recognised structurally, "
        "no chase needed",
    )


def test_non_derivable_saturates(benchmark):
    transitivity = parse_td("R(x, y) & R(y, z) -> R(x, z)", SCHEMA)
    symmetry = parse_td("R(x, y) -> R(y, x)", SCHEMA)

    def run():
        return derive([transitivity], symmetry, max_steps=50)

    proof = benchmark(run)
    assert proof is None
    record(
        EXPERIMENT,
        "non-consequence (symmetry from transitivity): calculus saturates "
        "without closing — agrees with the chase's DISPROVED",
    )

"""E11 — the batch inference service: dedup, cache and pool throughput.

Measures ``InferenceService.run_batch`` against serial
:func:`repro.chase.implication.implies_all` on a generator workload of
100+ queries (a third of them disguised duplicates, the way repeated
production traffic looks):

* **serial** — the baseline for-loop over ``implies``;
* **cold service, workers=0** — canonical dedup alone (identical queries
  chase once);
* **cold service, pool** — dedup plus the multiprocessing scheduler;
* **warm service** — a second batch against the populated cache.

Also re-verifies a cached PROVED verdict end to end: the trace stored in
the cache is replayed with verification on and must still derive the
target's conclusion. Run with ``--quick`` for a smoke-sized workload.
"""

from __future__ import annotations

import time

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import replay
from repro.chase.implication import InferenceStatus, conclusion_satisfied, implies_all
from repro.service import InferenceService, ResultCache
from repro.workloads.generators import inference_workload

from conftest import record

EXPERIMENT = "E11 / batch inference service: dedup + cache + pool vs serial"

BUDGET = Budget(max_steps=5_000)


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture(scope="module")
def workload(quick):
    queries = 24 if quick else 120
    return inference_workload(queries=queries, duplicate_fraction=0.35, seed=42)


def _timed(label, fn):
    started = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - started
    record(EXPERIMENT, f"{label:<34} {elapsed * 1000:>10.1f} ms")
    return result, elapsed


def test_batch_service_throughput(workload, quick):
    dependencies, targets = workload

    serial_outcomes, serial_seconds = _timed(
        f"serial implies_all ({len(targets)} queries)",
        lambda: implies_all(dependencies, targets, budget=BUDGET),
    )

    cold = InferenceService()
    cold_report, __ = _timed(
        "cold run_batch (dedup only)",
        lambda: cold.run_batch(dependencies, targets, budget=BUDGET),
    )
    record(
        EXPERIMENT,
        f"  dedup: {cold_report.stats.executed} chased for "
        f"{cold_report.stats.submitted} submitted",
    )

    with InferenceService(workers=2) as pool_service:
        pool_report, __ = _timed(
            "cold run_batch (pool, 2 workers)",
            lambda: pool_service.run_batch(dependencies, targets, budget=BUDGET),
        )

        warm_report, warm_seconds = _timed(
            "warm run_batch (pool + full cache)",
            lambda: pool_service.run_batch(dependencies, targets, budget=BUDGET),
        )
    record(
        EXPERIMENT,
        f"  warm speedup over serial: {serial_seconds / max(warm_seconds, 1e-9):.0f}x "
        f"({warm_report.stats.cache_hits}/{warm_report.stats.submitted} hits)",
    )

    # Correctness: every configuration agrees with the serial baseline.
    expected = [outcome.status for outcome in serial_outcomes]
    assert [o.status for o in cold_report.outcomes] == expected
    assert [o.status for o in pool_report.outcomes] == expected
    assert [o.status for o in warm_report.outcomes] == expected

    # Dedup must have collapsed the disguised duplicates.
    assert cold_report.stats.executed < cold_report.stats.submitted

    # The acceptance bar: a warm cache in front of the worker pool beats
    # the serial baseline outright. Only enforced on the full-size
    # workload — the --quick smoke run's margin is milliseconds and a
    # noisy CI runner could flip it without any code defect.
    assert warm_report.stats.cache_hits == len(targets)
    if not quick:
        assert warm_seconds < serial_seconds


def test_cached_proof_still_replays(workload):
    dependencies, targets = workload
    service = InferenceService(cache=ResultCache())
    report = service.run_batch(dependencies, targets, budget=BUDGET)
    proved = [
        item
        for item in report.items
        if item.outcome.status is InferenceStatus.PROVED
    ]
    assert proved, "workload contains no provable query"
    # Prefer a proof that actually fired steps over a trivially true one.
    item = max(proved, key=lambda item: len(item.outcome.chase_result.steps))
    # Read the verdict back from the cache and check the certificate the
    # hard way: replay the trace (verify=True) from the frozen target.
    entry = service.cache.lookup(item.fingerprint, BUDGET)
    assert entry is not None
    # Decode the stored JSON payload, not the memoized live object: this
    # exercises exactly what a fresh process would read from the cache.
    from repro.io.json_codec import outcome_from_json

    cached = outcome_from_json(entry.payload)
    start, frozen = cached.target.freeze()
    final = replay(start, cached.chase_result.steps, verify=True)
    assert conclusion_satisfied(final, cached.target, frozen)
    record(
        EXPERIMENT,
        f"cached PROVED trace re-verified by replay "
        f"({len(cached.chase_result.steps)} steps)",
    )

"""E8 — finite vs unrestricted behaviours (the Fagin et al. phenomenon).

The paper's introduction leans on Fagin, Maier, Ullman & Yannakakis
(1981): for TDs the finite and unrestricted semantics genuinely differ,
and the chase alone cannot decide the finite case. This experiment shows
the operational half: an embedded TD whose chase diverges, where bounded
finite-model search folds the infinite chase into a finite
counterexample and settles the question.
"""

from repro.chase.budget import Budget
from repro.chase.engine import chase
from repro.chase.finite_models import search_exhaustive, search_random
from repro.chase.result import ChaseStatus
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema

from conftest import record

EXPERIMENT = "E8 / finite-model search where the chase diverges"

SCHEMA = Schema(["FROM", "TO"])


def successor():
    return parse_td("R(x, y) -> R(y, s)", SCHEMA)


def predecessor():
    return parse_td("R(x, y) -> R(p, x)", SCHEMA)


def test_chase_diverges(benchmark):
    dep = successor()
    start, __ = predecessor().freeze()

    def run():
        return chase(start, [dep], budget=Budget(max_steps=50))

    result = benchmark(run)
    assert result.status is ChaseStatus.BUDGET_EXHAUSTED
    record(
        EXPERIMENT,
        f"chase of 'every node has a successor': budget-exhausted after "
        f"{result.step_count} steps, {len(result.instance)} rows "
        "(an unbounded path — no fixpoint exists)",
    )


def test_random_search_folds_to_finite_model(benchmark):
    deps, target = [successor()], predecessor()

    def run():
        return search_random(deps, target, seed=0)

    witness = benchmark(run)
    assert witness is not None
    record(
        EXPERIMENT,
        f"randomized fold search: finite counterexample with "
        f"{len(witness)} rows (path closed into a lasso); refutes the "
        "implication under BOTH semantics",
    )


def test_exhaustive_search(benchmark):
    deps, target = [successor()], predecessor()

    def run():
        return search_exhaustive(deps, target, domain_size=3)

    witness = benchmark(run)
    status = f"{len(witness)} rows" if witness is not None else "none <= domain 3"
    record(EXPERIMENT, f"exhaustive search over shared 3-value domain: {status}")


def test_valid_implication_finds_no_witness(benchmark):
    """Soundness control: when the implication holds, no witness exists."""
    deps = [successor()]
    target = parse_td("R(x, y) & R(y, z) -> R(z, w)", SCHEMA)

    def run():
        return search_random(deps, target, seed=0, restarts=10, max_seconds=5.0)

    witness = benchmark.pedantic(run, rounds=1, iterations=1)
    assert witness is None
    record(
        EXPERIMENT,
        "control (valid implication): search correctly finds nothing",
    )

"""E19 — the native join backend vs the pure-python walkers.

Every decision procedure funnels through the join kernel
(:mod:`repro.kernel.joins`); this experiment measures what compiling
those walkers (:mod:`repro.kernel._native`, ``REPRO_JOIN_BACKEND``)
buys, on three series:

* **E13-mix join series** (the headline): the kernel walkers
  themselves — a cold antecedent ``extend_matches`` enumeration plus a
  ``violation_walk`` per (chased instance, dependency) pair of the E11
  inference-workload mix, i.e. exactly the loops the chase, the model
  checker and the hom engine sit on. Identical states, identical
  compiled plans; only the backend differs.
* **end-to-end ``implies``** — the whole service hot path under each
  backend. Small queries are plan-compile- and outcome-bound, so this
  ratio is expected near 1x; it is recorded (not asserted) to keep the
  overhead picture honest.
* **single-shot small-CQ latency** — a boolean conjunctive query
  against a *fresh* instance per call, the interning-bound shape from
  ROADMAP: the timed section pays ``kernel_view`` construction (bulk
  interning + index build, ``fill_state`` in C under native) plus one
  walk.

Both backends must agree on every observable (match counts, violation
verdicts, implication statuses, CQ verdicts) — a speedup that changes
answers is a bug, not an optimization. The headline criterion (native
>= 1.5x python on the join series in full runs; a coarse >= 1x guard on
``--quick`` CI smoke runs) is asserted here, and the measurements are
written to ``BENCH_joins.json`` at the repository root so the perf
trajectory is machine-readable across PRs. The whole module skips
visibly when the native extension is not built.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path

import pytest

from repro.chase.budget import Budget
from repro.chase.checkplan import compile_check
from repro.chase.engine import chase
from repro.chase.implication import _freeze_target, implies
from repro.dependencies.template import Variable
from repro.kernel.backend import join_backend_override, native_available
from repro.kernel.joins import extend_matches, violation_walk
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Schema
from repro.relational.values import Const
from repro.workloads.generators import inference_workload

from conftest import record

EXPERIMENT = "E19 / native join backend vs pure-python walkers"

BUDGET = Budget(max_steps=5_000)

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Full runs maintain the committed perf-trajectory baseline; --quick
#: smoke runs (CI, local sanity checks) write a sibling file so they
#: never clobber the tracked full-workload numbers.
RESULT_PATH = _REPO_ROOT / "BENCH_joins.json"
QUICK_RESULT_PATH = _REPO_ROOT / "BENCH_joins.quick.json"

BACKENDS = ("python", "native")

pytestmark = pytest.mark.skipif(
    not native_available(),
    reason="repro.kernel._native not built "
    "(python setup.py build_ext --inplace)",
)


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture(scope="module")
def workload(quick):
    queries = 24 if quick else 120
    return inference_workload(queries=queries, duplicate_fraction=0.35, seed=42)


@pytest.fixture(scope="module")
def join_states(workload, quick):
    """Chased instances of the mix, with their kernel views prebuilt.

    The check pool is the mix's *targets* (3–8 antecedent atoms each):
    model-checking every target against every chased database is
    exactly the join shape E13's engines pay, premise joins and
    conclusion probes included. State construction is identical under
    both backends (the differential suites hold fill_state to the
    python loop), so the views are shared: the timed series below is
    pure walker work.
    """
    dependencies, targets = workload
    n_states = 8 if quick else 30
    states = []
    for target in targets[:n_states]:
        start, __ = _freeze_target(target)
        result = chase(start, dependencies, budget=BUDGET, inplace=True)
        states.append(result.instance.kernel_view())
    checks = [
        compile_check(dependency) for dependency in (*dependencies, *targets)
    ]
    return states, checks


def _run_join_series(states, checks):
    """One pass of the headline series; returns its observable output.

    Per (state, dependency): a cold antecedent enumeration (the model
    checker / trigger-collection shape) and a violation walk (the
    early-exit shape). The totals double as the cross-backend
    correctness fingerprint.
    """
    total_matches = 0
    total_violations = 0
    for state in states:
        for check in checks:
            plan = check.plan
            steps = check.antecedent_steps
            seen: set = set()
            out: list = []
            extend_matches(
                state, steps, 0, [0] * plan.n_slots, plan.n_universal, seen, out
            )
            total_matches += len(out)
            regs = [0] * plan.n_slots
            if violation_walk(state, steps, 0, regs, plan.activity_steps):
                total_violations += 1
    return total_matches, total_violations


def _best_of(callable_, repeats):
    best = None
    value = None
    for __ in range(repeats):
        started = time.perf_counter()
        value = callable_()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    return best, value


def _small_cq_workload():
    """A small boolean CQ and a factory of fresh 120-row instances.

    Fresh instance per timed call: the kernel view (bulk interning +
    index build) is paid inside the measurement — the single-shot
    latency shape, where interning dominates the walk.
    """
    schema = Schema(["A", "B", "C"])
    x, y, z, w = (Variable(n) for n in "xyzw")
    query = ConjunctiveQuery(schema, (), [(x, y, z), (y, w, z)])
    rng = random.Random(20_19)
    rows = set()
    while len(rows) < 120:
        rows.add(tuple(rng.randrange(18) for __ in range(3)))
    value_rows = [tuple(Const(v) for v in row) for row in rows]

    def fresh_instance():
        return Instance(schema, value_rows)

    return query, fresh_instance


def test_join_backend_speedup(workload, join_states, quick):
    dependencies, targets = workload
    states, checks = join_states
    repeats = 3 if quick else 5
    calls = 40 if quick else 120  # small-CQ calls per timing pass

    join_times: dict[str, float] = {}
    join_outputs: dict[str, tuple] = {}
    implies_times: dict[str, float] = {}
    implies_statuses: dict[str, list] = {}
    cq_times: dict[str, float] = {}
    cq_verdicts: dict[str, list] = {}
    query, fresh_instance = _small_cq_workload()

    for backend in BACKENDS:
        with join_backend_override(backend):
            # -- join micro-kernel series (headline) --------------------
            _run_join_series(states, checks)  # warm off the clock
            seconds, output = _best_of(
                lambda: _run_join_series(states, checks), repeats
            )
            join_times[backend] = seconds
            join_outputs[backend] = output
            record(
                EXPERIMENT,
                f"join series   {backend:<8} {seconds * 1000:>9.1f} ms "
                f"({len(states)} states x {len(checks)} dependencies)",
            )

            # -- end-to-end implies -------------------------------------
            def run_implies():
                return [
                    implies(dependencies, target, budget=BUDGET).status
                    for target in targets
                ]

            run_implies()  # warm
            seconds, statuses = _best_of(run_implies, repeats)
            implies_times[backend] = seconds
            implies_statuses[backend] = statuses
            record(
                EXPERIMENT,
                f"implies e2e   {backend:<8} {seconds * 1000:>9.1f} ms "
                f"({len(targets)} queries)",
            )

            # -- single-shot small-CQ latency ---------------------------
            def run_small_cq():
                instances = [fresh_instance() for __ in range(calls)]
                started = time.perf_counter()
                verdicts = [query.holds_in(instance) for instance in instances]
                return time.perf_counter() - started, verdicts

            run_small_cq()  # warm
            best = None
            verdicts = None
            for __ in range(repeats):
                elapsed, verdicts = run_small_cq()
                best = elapsed if best is None or elapsed < best else best
            cq_times[backend] = best / calls
            cq_verdicts[backend] = verdicts
            record(
                EXPERIMENT,
                f"small CQ      {backend:<8} {cq_times[backend] * 1e6:>9.1f} "
                f"us/call (fresh instance per call)",
            )

    # Correctness first: identical observables under both backends.
    assert join_outputs["native"] == join_outputs["python"], (
        "join walkers disagree across backends"
    )
    assert implies_statuses["native"] == implies_statuses["python"], (
        "implication verdicts changed across backends"
    )
    assert cq_verdicts["native"] == cq_verdicts["python"], (
        "CQ verdicts changed across backends"
    )

    speedup_join = join_times["python"] / join_times["native"]
    implies_ratio = implies_times["python"] / implies_times["native"]
    small_cq_ratio = cq_times["python"] / cq_times["native"]
    record(
        EXPERIMENT,
        f"native: {speedup_join:.2f}x on the join series, "
        f"{small_cq_ratio:.2f}x single-shot small CQ, "
        f"{implies_ratio:.2f}x end-to-end",
    )

    payload = {
        "experiment": "E19",
        "description": (
            "native join backend vs pure-python walkers: E13-mix join "
            "series, end-to-end implies, single-shot small-CQ latency"
        ),
        "quick": quick,
        "workload": {
            "queries": len(targets),
            "duplicate_fraction": 0.35,
            "seed": 42,
            "budget_max_steps": BUDGET.max_steps,
            "join_states": len(states),
            "small_cq_calls": calls,
        },
        "repeats_best_of": repeats,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "join_series_ms": {
            backend: round(seconds * 1000, 3)
            for backend, seconds in join_times.items()
        },
        "implies_ms": {
            backend: round(seconds * 1000, 3)
            for backend, seconds in implies_times.items()
        },
        "small_cq_us_per_call": {
            backend: round(seconds * 1e6, 3)
            for backend, seconds in cq_times.items()
        },
        # The guarded headline (scripts/bench_trend.py tracks all
        # speedup_* keys with a 1.0x floor): the walker loops themselves.
        "speedup_join_native_vs_python": round(speedup_join, 3),
        # Informational ratios, deliberately outside the speedup_*
        # namespace: end-to-end small-query runs are compile- and
        # outcome-bound, so these hover near 1x and would make the
        # trend guard flake without measuring the kernel at all.
        "implies_native_vs_python": round(implies_ratio, 3),
        "small_cq_native_vs_python": round(small_cq_ratio, 3),
    }
    result_path = QUICK_RESULT_PATH if quick else RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    record(EXPERIMENT, f"wrote {result_path.name}")

    if quick:
        # Coarse CI guard: native must never lose to the python walkers
        # it replaces. (Not the 1.5x assertion: the smoke-sized series
        # on a noisy shared runner would flake at tight thresholds.)
        assert speedup_join >= 1.0, (
            f"native join backend slower than python on the smoke series "
            f"({speedup_join:.2f}x)"
        )
    else:
        # The tentpole acceptance bar, on the full-size mix.
        assert speedup_join >= 1.5, (
            f"native join speedup {speedup_join:.2f}x < 1.5x"
        )

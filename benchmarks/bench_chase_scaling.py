"""E9 — chase substrate scaling (supports E4-E6).

Measures the chase on the transitivity family (full TDs, growing goal
distance) and compares the standard (restricted) chase against the
oblivious variant — the ablation DESIGN.md calls out: firing satisfied
triggers buys nothing and costs rows.
"""

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, chase
from repro.chase.implication import InferenceStatus, implies
from repro.chase.result import ChaseStatus
from repro.workloads.generators import transitivity_family

from conftest import record

EXPERIMENT = "E9 / chase scaling and the standard-vs-oblivious ablation"

PATH_LENGTHS = [2, 4, 8, 16]


@pytest.mark.parametrize("length", PATH_LENGTHS)
def test_implication_scaling(benchmark, length):
    deps, target = transitivity_family(length)

    def run():
        return implies(deps, target, budget=Budget.unlimited(), record_trace=False)

    outcome = benchmark(run)
    assert outcome.status is InferenceStatus.PROVED
    record(
        EXPERIMENT,
        f"path length k={length:>2}: transitivity |- k-step closure PROVED, "
        f"{outcome.chase_result.step_count:>4} chase steps",
    )


@pytest.mark.parametrize("length", [8, 16])
def test_semi_naive_ablation(benchmark, length):
    """Delta-driven trigger enumeration vs naive rescanning."""
    deps, target = transitivity_family(length)
    start, __ = target.freeze()

    def run_semi_naive():
        return chase(
            start,
            deps,
            variant=ChaseVariant.SEMI_NAIVE,
            budget=Budget.unlimited(),
            record_trace=False,
        )

    naive = chase(start, deps, budget=Budget.unlimited(), record_trace=False)
    semi = benchmark(run_semi_naive)
    assert semi.status is ChaseStatus.TERMINATED
    assert semi.instance.rows == naive.instance.rows
    record(
        EXPERIMENT,
        f"k={length:>2}: semi-naive chase reaches the same fixpoint "
        f"({len(semi.instance)} rows) with delta-driven enumeration "
        f"({semi.step_count} firings, identical to standard)",
    )


@pytest.mark.parametrize("length", [4, 8])
def test_standard_vs_oblivious(benchmark, length):
    deps, target = transitivity_family(length)
    start, __ = target.freeze()

    def run_standard():
        return chase(start, deps, budget=Budget.unlimited(), record_trace=False)

    standard = run_standard()
    oblivious = chase(
        start,
        deps,
        variant=ChaseVariant.OBLIVIOUS,
        budget=Budget(max_steps=20_000, max_rows=None, max_seconds=120),
        record_trace=False,
    )
    benchmark(run_standard)
    assert standard.status is ChaseStatus.TERMINATED
    record(
        EXPERIMENT,
        f"k={length:>2}: standard chase {standard.step_count:>4} steps / "
        f"{len(standard.instance):>4} rows  vs  oblivious "
        f"{oblivious.step_count:>5} steps / {len(oblivious.instance):>4} rows "
        f"({oblivious.status.value})",
    )

"""E13 — the compiled chase kernel vs the legacy engine.

Runs the E11 inference workload mix (transitivity premises, provable
path closures and refutable random full TDs, a third disguised
duplicates) through every ``chase()`` both ways:

* **chase kernel time** — the engine calls themselves, on pre-frozen
  starts with the real implication goal: legacy STANDARD (the old
  default), legacy SEMI_NAIVE, and the compiled kernel;
* **end-to-end ``implies``** — the same comparison including freezing
  and outcome construction, i.e. what the batch service actually pays.

Every configuration must produce identical statuses — a speedup that
changes verdicts is a bug, not an optimization. The headline criterion
(compiled >= 3x legacy on the full workload; a coarse >= 1x guard on
``--quick`` CI runs so a regression that makes the compiled kernel
*slower* fails loudly without flaking on machine noise) is asserted
here, and the measurements are written to ``BENCH_chase_kernel.json``
at the repository root so the perf trajectory is machine-readable
across PRs.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, chase
from repro.chase.implication import ConclusionGoal, _freeze_target, implies
from repro.workloads.generators import inference_workload

from conftest import record

EXPERIMENT = "E13 / compiled chase kernel vs legacy engine (E11 workload mix)"

BUDGET = Budget(max_steps=5_000)

#: (label, kernel, variant) for the chase-kernel-time comparison.
CONFIGURATIONS = (
    ("legacy/standard", "legacy", ChaseVariant.STANDARD),
    ("legacy/semi_naive", "legacy", ChaseVariant.SEMI_NAIVE),
    ("compiled", "compiled", ChaseVariant.STANDARD),
)

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Full runs maintain the committed perf-trajectory baseline; --quick
#: smoke runs (CI, local sanity checks) write a sibling file so they
#: never clobber the tracked full-workload numbers.
RESULT_PATH = _REPO_ROOT / "BENCH_chase_kernel.json"
QUICK_RESULT_PATH = _REPO_ROOT / "BENCH_chase_kernel.quick.json"


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture(scope="module")
def workload(quick):
    queries = 24 if quick else 120
    return inference_workload(queries=queries, duplicate_fraction=0.35, seed=42)


def _prepare(targets):
    """Freeze every target once; timing then covers only the chase calls."""
    return [
        (start, ConclusionGoal(target, frozen))
        for target in targets
        for start, frozen in [_freeze_target(target)]
    ]


def _time_chases(dependencies, targets, kernel, variant, repeats):
    """Best-of-``repeats`` wall time for the whole mix; returns (s, statuses)."""
    best = None
    statuses = None
    for __ in range(repeats):
        prepared = _prepare(targets)  # fresh instances/goals per repeat
        started = time.perf_counter()
        statuses = [
            chase(
                start,
                dependencies,
                budget=BUDGET,
                goal=goal,
                kernel=kernel,
                variant=variant,
            ).status
            for start, goal in prepared
        ]
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    return best, statuses


def _time_implies(dependencies, targets, kernel, repeats):
    best = None
    statuses = None
    for __ in range(repeats):
        started = time.perf_counter()
        statuses = [
            implies(dependencies, target, budget=BUDGET, kernel=kernel).status
            for target in targets
        ]
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    return best, statuses


def test_chase_kernel_speedup(workload, quick):
    dependencies, targets = workload
    repeats = 2 if quick else 5

    # Warm both kernels (plan caches, interpreter warmup) off the clock.
    for kernel in ("legacy", "compiled"):
        _time_chases(dependencies, targets[:4], kernel, ChaseVariant.STANDARD, 1)

    kernel_times: dict[str, float] = {}
    kernel_statuses = {}
    for label, kernel, variant in CONFIGURATIONS:
        seconds, statuses = _time_chases(
            dependencies, targets, kernel, variant, repeats
        )
        kernel_times[label] = seconds
        kernel_statuses[label] = statuses
        record(
            EXPERIMENT,
            f"chase kernel  {label:<18} {seconds * 1000:>9.1f} ms "
            f"({len(targets)} queries)",
        )

    implies_times: dict[str, float] = {}
    implies_statuses = {}
    for kernel in ("legacy", "compiled"):
        seconds, statuses = _time_implies(dependencies, targets, kernel, repeats)
        implies_times[kernel] = seconds
        implies_statuses[kernel] = statuses
        record(
            EXPERIMENT,
            f"implies e2e   {kernel:<18} {seconds * 1000:>9.1f} ms",
        )

    # Correctness first: every configuration agrees status for status
    # (chase statuses among chase runs, verdicts among implies runs).
    reference = kernel_statuses["legacy/standard"]
    for label, statuses in kernel_statuses.items():
        assert statuses == reference, f"{label} changed chase statuses"
    verdict_reference = implies_statuses["legacy"]
    assert implies_statuses["compiled"] == verdict_reference, "verdicts changed"

    speedup = kernel_times["legacy/standard"] / kernel_times["compiled"]
    speedup_semi = kernel_times["legacy/semi_naive"] / kernel_times["compiled"]
    speedup_implies = implies_times["legacy"] / implies_times["compiled"]
    record(
        EXPERIMENT,
        f"speedup: {speedup:.2f}x vs legacy/standard, "
        f"{speedup_semi:.2f}x vs legacy/semi_naive, "
        f"{speedup_implies:.2f}x end-to-end",
    )

    payload = {
        "experiment": "E13",
        "description": "compiled chase kernel vs legacy engine on the E11 inference workload mix",
        "quick": quick,
        "workload": {
            "queries": len(targets),
            "duplicate_fraction": 0.35,
            "seed": 42,
            "budget_max_steps": BUDGET.max_steps,
        },
        "repeats_best_of": repeats,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "chase_kernel_ms": {
            label: round(seconds * 1000, 3)
            for label, seconds in kernel_times.items()
        },
        "implies_ms": {
            label: round(seconds * 1000, 3)
            for label, seconds in implies_times.items()
        },
        "speedup_vs_legacy_standard": round(speedup, 3),
        "speedup_vs_legacy_semi_naive": round(speedup_semi, 3),
        "speedup_implies_end_to_end": round(speedup_implies, 3),
        "verdicts": {
            "proved": sum(1 for s in verdict_reference if s.value == "proved"),
            "disproved": sum(
                1 for s in verdict_reference if s.value == "disproved"
            ),
            "unknown": sum(1 for s in verdict_reference if s.value == "unknown"),
        },
    }
    result_path = QUICK_RESULT_PATH if quick else RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    record(EXPERIMENT, f"wrote {result_path.name}")

    if quick:
        # Coarse CI guard: the compiled kernel must never be slower than
        # the engine it replaced. (Not a 3x assertion: the smoke-sized
        # workload on a noisy shared runner would flake at tight
        # thresholds without any code defect.)
        assert speedup >= 1.0, (
            f"compiled kernel slower than legacy on the smoke workload "
            f"({speedup:.2f}x)"
        )
    else:
        # The tentpole acceptance bar, on the full-size mix.
        assert speedup >= 3.0, f"compiled kernel speedup {speedup:.2f}x < 3x"

"""E14 — compiled model checking vs the legacy generic search.

PR 3's kernel (E13) made PROVED verdicts fast; model checking is what
DISPROVED verdicts pay: verifying a chased counterexample re-checks the
whole dependency set against it, and direction (B) of the reduction
checks one database against every ``Di(r)``. This experiment times both
checkers on two workloads:

* **counterexample-heavy mix** — every DISPROVED target of the E11
  inference workload yields a chased counterexample database; each is
  model-checked (through one shared
  :class:`~repro.chase.checkplan.ModelChecker` per database) against
  the premise set, its own target's violation, and a fixed panel of
  other targets — the database-vs-many-dependencies shape of
  counterexample verification and direction (B);
* **finite-models search** — the deterministic exhaustive search from
  E8 (`every node has a successor` vs `every node has a predecessor`),
  which model-checks thousands of tiny candidate instances, plus the
  randomized fold search (recorded, not asserted: its trajectory
  depends on which witness ``find_violation`` surfaces first, so the
  two checkers legitimately walk different paths).

Both checkers must agree verdict for verdict before any timing is
trusted. Full runs assert the acceptance bar (compiled >= 2x legacy on
the mix, >= 1x on the exhaustive search); ``--quick`` CI runs assert
the coarse >= 1x guard on the mix only and write the untracked
``BENCH_modelcheck.quick.json`` so smoke runs never clobber the
committed ``BENCH_modelcheck.json`` baseline.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.chase.budget import Budget
from repro.chase.checkplan import ModelChecker
from repro.chase.finite_models import search_exhaustive, search_random
from repro.chase.implication import implies
from repro.dependencies.parser import parse_td
from repro.relational.schema import Schema
from repro.workloads.generators import inference_workload

from conftest import record

EXPERIMENT = "E14 / compiled model checking vs legacy generic search"

BUDGET = Budget(max_steps=5_000)

CHECKERS = ("legacy", "compiled")

#: How many other targets every counterexample is checked against (the
#: direction-(B) "one database vs many dependencies" shape).
PANEL_SIZE = 8

_REPO_ROOT = Path(__file__).resolve().parent.parent

RESULT_PATH = _REPO_ROOT / "BENCH_modelcheck.json"
QUICK_RESULT_PATH = _REPO_ROOT / "BENCH_modelcheck.quick.json"


@pytest.fixture(scope="module")
def quick(request):
    return request.config.getoption("--quick")


@pytest.fixture(scope="module")
def mix(quick):
    """(premises, [(counterexample, its target), ...], panel targets)."""
    queries = 24 if quick else 96
    dependencies, targets = inference_workload(
        queries=queries, duplicate_fraction=0.35, seed=42
    )
    cases = []
    for target in targets:
        outcome = implies(dependencies, target, budget=BUDGET)
        if outcome.disproved:
            cases.append((outcome.counterexample, target))
    assert cases, "the E11 mix must produce DISPROVED verdicts"
    panel = [target for __, target in cases[:PANEL_SIZE]]
    return dependencies, cases, panel


def _time_mix(dependencies, cases, panel, checker, repeats):
    """Best-of-``repeats`` wall time for the whole sweep; (s, verdicts)."""
    best = None
    verdicts = None
    for __ in range(repeats):
        run_verdicts = []
        started = time.perf_counter()
        for instance, target in cases:
            model = ModelChecker(instance, checker=checker)
            run_verdicts.append(model.satisfies_all(dependencies))
            run_verdicts.append(model.find_violation(target) is not None)
            for probe in panel:
                run_verdicts.append(model.holds_in(probe))
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
        verdicts = run_verdicts
    return best, verdicts


def _finite_workload():
    schema = Schema(["FROM", "TO"])
    successor = parse_td("R(x, y) -> R(y, s)", schema)
    predecessor = parse_td("R(x, y) -> R(p, x)", schema)
    return [successor], predecessor


def _time_exhaustive(checker, repeats):
    dependencies, target = _finite_workload()
    best = None
    witness = None
    for __ in range(repeats):
        started = time.perf_counter()
        witness = search_exhaustive(
            dependencies, target, domain_size=3, checker=checker
        )
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    return best, witness


def _time_random_search(checker, repeats):
    dependencies, target = _finite_workload()
    best = None
    witness = None
    for __ in range(repeats):
        started = time.perf_counter()
        witness = search_random(dependencies, target, seed=0, checker=checker)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None or elapsed < best else best
    return best, witness


def test_modelcheck_speedup(mix, quick):
    dependencies, cases, panel = mix
    repeats = 2 if quick else 5

    # Warm both checkers (plan caches, interpreter warmup) off the clock.
    for checker in CHECKERS:
        _time_mix(dependencies, cases[:4], panel, checker, 1)

    mix_times: dict[str, float] = {}
    mix_verdicts = {}
    for checker in CHECKERS:
        seconds, verdicts = _time_mix(
            dependencies, cases, panel, checker, repeats
        )
        mix_times[checker] = seconds
        mix_verdicts[checker] = verdicts
        record(
            EXPERIMENT,
            f"counterexample mix  {checker:<9} {seconds * 1000:>9.1f} ms "
            f"({len(cases)} databases x {2 + len(panel)} checks)",
        )

    exhaustive_times: dict[str, float] = {}
    exhaustive_witnesses = {}
    for checker in CHECKERS:
        seconds, witness = _time_exhaustive(checker, repeats)
        exhaustive_times[checker] = seconds
        exhaustive_witnesses[checker] = witness
        size = len(witness) if witness is not None else "none"
        record(
            EXPERIMENT,
            f"exhaustive search   {checker:<9} {seconds * 1000:>9.1f} ms "
            f"(witness rows: {size})",
        )

    random_times: dict[str, float] = {}
    for checker in CHECKERS:
        seconds, witness = _time_random_search(checker, repeats)
        random_times[checker] = seconds
        # Trajectories differ between checkers (the rng consumes whatever
        # witness find_violation surfaces first), so assert validity of
        # each checker's own result, not equality.
        assert witness is not None, checker
        verifier = ModelChecker(witness)
        assert verifier.satisfies_all(_finite_workload()[0]), checker
        assert verifier.find_violation(_finite_workload()[1]) is not None
        record(
            EXPERIMENT,
            f"random fold search  {checker:<9} {seconds * 1000:>9.1f} ms "
            f"({len(witness)}-row witness; trajectory checker-dependent)",
        )

    # Correctness before timing: verdict-for-verdict agreement on the
    # mix, identical minimum witness from the deterministic search.
    assert mix_verdicts["compiled"] == mix_verdicts["legacy"], (
        "compiled checker changed model-checking verdicts"
    )
    assert exhaustive_witnesses["legacy"] is not None
    assert (
        exhaustive_witnesses["legacy"].rows
        == exhaustive_witnesses["compiled"].rows
    ), "exhaustive search returned different witnesses"

    mix_speedup = mix_times["legacy"] / mix_times["compiled"]
    exhaustive_speedup = (
        exhaustive_times["legacy"] / exhaustive_times["compiled"]
    )
    random_speedup = random_times["legacy"] / random_times["compiled"]
    record(
        EXPERIMENT,
        f"speedup: {mix_speedup:.2f}x mix, {exhaustive_speedup:.2f}x "
        f"exhaustive, {random_speedup:.2f}x random fold",
    )

    payload = {
        "experiment": "E14",
        "description": (
            "compiled model checking (holds_in/find_violation on join "
            "plans) vs the legacy generic homomorphism search"
        ),
        "quick": quick,
        "workload": {
            "mix_queries": 24 if quick else 96,
            "mix_databases": len(cases),
            "panel_size": len(panel),
            "duplicate_fraction": 0.35,
            "seed": 42,
            "budget_max_steps": BUDGET.max_steps,
            "exhaustive_domain_size": 3,
        },
        "repeats_best_of": repeats,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
        "mix_ms": {
            checker: round(seconds * 1000, 3)
            for checker, seconds in mix_times.items()
        },
        "exhaustive_ms": {
            checker: round(seconds * 1000, 3)
            for checker, seconds in exhaustive_times.items()
        },
        "random_fold_ms": {
            checker: round(seconds * 1000, 3)
            for checker, seconds in random_times.items()
        },
        "speedup_mix": round(mix_speedup, 3),
        "speedup_exhaustive": round(exhaustive_speedup, 3),
        "speedup_random_fold": round(random_speedup, 3),
    }
    result_path = QUICK_RESULT_PATH if quick else RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    record(EXPERIMENT, f"wrote {result_path.name}")

    if quick:
        # Coarse CI guard: compiled must never be slower than the search
        # it replaced. (Tight thresholds on smoke-sized workloads flake
        # on shared runners without any code defect.)
        assert mix_speedup >= 1.0, (
            f"compiled checker slower than legacy on the smoke mix "
            f"({mix_speedup:.2f}x)"
        )
    else:
        # The acceptance bar on the full-size workloads.
        assert mix_speedup >= 2.0, (
            f"compiled model checking speedup {mix_speedup:.2f}x < 2x"
        )
        assert exhaustive_speedup >= 1.0, (
            f"compiled slower on the exhaustive finite search "
            f"({exhaustive_speedup:.2f}x)"
        )

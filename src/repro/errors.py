"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class. Subclasses are grouped by subsystem:
schema/typing problems, dependency well-formedness, chase-budget issues and
semigroup/presentation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed (duplicate attributes, empty, bad arity)."""


class TypingError(ReproError):
    """The typing restriction is violated.

    The paper assumes *typed* dependencies and databases: attribute domains
    are disjoint, so no value or variable may appear in two different
    columns.
    """


class ArityError(ReproError):
    """A tuple, atom or diagram node has the wrong number of components."""


class DependencyError(ReproError):
    """A dependency is malformed (no antecedents, free conclusion, etc.)."""


class DiagramError(ReproError):
    """A dependency diagram is malformed or inconsistent."""


class ParseError(ReproError):
    """A textual dependency or word could not be parsed."""


class BudgetExceededError(ReproError):
    """A computation exceeded its explicit resource budget.

    Raised only when a caller asks for strict budget enforcement; the
    chase engine normally reports exhaustion through a result status
    instead of raising.
    """


class SemigroupError(ReproError):
    """A finite semigroup is malformed (non-associative table, bad size)."""


class PresentationError(ReproError):
    """A semigroup presentation is malformed or not in the expected form."""


class ReductionError(ReproError):
    """The Gurevich-Lewis reduction was applied to unsuitable input."""


class VerificationError(ReproError):
    """A machine-checked certificate (chase proof, counterexample) failed."""

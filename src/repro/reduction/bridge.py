"""Bridges: the word-encoding structures of Figure 2.

A *bridge* for a word ``A₁A₂...A_k`` is a database fragment with

* ``k + 1`` *bottom* tuples, all agreeing on attribute ``E``;
* ``k`` *apex* tuples, all agreeing on attribute ``E'``;
* for each letter position ``i``, the apex ``dᵢ`` agreeing with the bottom
  tuple to its left on ``Aᵢ'`` and with the one to its right on ``Aᵢ''``
  (one triangle per letter).

Bridges are both a standalone artefact (experiment E2 regenerates
Figure 2 and checks the ``2k+1`` tuple count) and the state the direction
(A) proof builder threads through a word derivation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ReductionError, VerificationError
from repro.reduction.schema import BOTTOM_ROW, TOP_ROW, ReductionSchema
from repro.relational.instance import Instance, Row
from repro.relational.values import Const
from repro.semigroups.words import Word


@dataclass
class Bridge:
    """The tracked rows of a bridge for ``word`` inside some instance.

    ``bottom[i]`` is the base tuple between letters ``i-1`` and ``i``
    (``bottom[0]`` and ``bottom[-1]`` are the bridge's endpoints — the
    paper's ``a`` and ``b``); ``apexes[i]`` is the triangle apex of letter
    ``word[i]``.
    """

    reduction_schema: ReductionSchema
    word: Word
    bottom: list[Row]
    apexes: list[Row]

    @property
    def span(self) -> tuple[Row, Row]:
        """The endpoint base tuples ``(a, b)``."""
        return self.bottom[0], self.bottom[-1]

    @property
    def tuple_count(self) -> int:
        """``2k + 1`` for a ``k``-letter word."""
        return len(self.bottom) + len(self.apexes)

    def check(self) -> None:
        """Verify the structural invariants of Figure 2.

        Raises :class:`~repro.errors.VerificationError` on any breach.
        The proof builder runs this after every derivation step.
        """
        schema = self.reduction_schema.schema
        if len(self.bottom) != len(self.word) + 1:
            raise VerificationError(
                f"bridge for a {len(self.word)}-letter word needs "
                f"{len(self.word) + 1} bottom tuples, has {len(self.bottom)}"
            )
        if len(self.apexes) != len(self.word):
            raise VerificationError(
                f"bridge needs one apex per letter, has {len(self.apexes)}"
            )
        bottom_column = schema.position(BOTTOM_ROW)
        shared_bottom = {row[bottom_column] for row in self.bottom}
        if len(shared_bottom) != 1:
            raise VerificationError("bottom tuples do not share the E attribute")
        if self.apexes:
            top_column = schema.position(TOP_ROW)
            shared_top = {row[top_column] for row in self.apexes}
            if len(shared_top) != 1:
                raise VerificationError("apex tuples do not share the E' attribute")
        for index, letter in enumerate(self.word):
            left = schema.position(self.reduction_schema.primed(letter))
            right = schema.position(self.reduction_schema.double_primed(letter))
            apex = self.apexes[index]
            if apex[left] != self.bottom[index][left]:
                raise VerificationError(
                    f"apex {index} does not agree with its left base on "
                    f"{self.reduction_schema.primed(letter)}"
                )
            if apex[right] != self.bottom[index + 1][right]:
                raise VerificationError(
                    f"apex {index} does not agree with its right base on "
                    f"{self.reduction_schema.double_primed(letter)}"
                )


def bridge_instance(
    reduction_schema: ReductionSchema,
    word: Word,
    *,
    token: str = "bridge",
) -> tuple[Instance, Bridge]:
    """Build a fresh, minimal bridge instance for ``word`` (Figure 2).

    Every component not forced to agree by the bridge pattern receives a
    distinct constant, so the instance realises exactly the agreements of
    the figure and nothing more.
    """
    for letter in word:
        if letter not in reduction_schema.alphabet:
            raise ReductionError(f"letter {letter!r} is not in the alphabet")
    schema = reduction_schema.schema
    counter = itertools.count()

    def fresh(attribute: str) -> Const:
        return Const((token, attribute, next(counter)))

    bottom_shared = fresh(BOTTOM_ROW)
    top_shared = fresh(TOP_ROW)
    bottom_rows: list[list[Const]] = []
    for __ in range(len(word) + 1):
        row = [fresh(schema.attribute(column)) for column in range(schema.arity)]
        row[schema.position(BOTTOM_ROW)] = bottom_shared
        bottom_rows.append(row)
    apex_rows: list[list[Const]] = []
    for index, letter in enumerate(word):
        row = [fresh(schema.attribute(column)) for column in range(schema.arity)]
        row[schema.position(TOP_ROW)] = top_shared
        left = schema.position(reduction_schema.primed(letter))
        right = schema.position(reduction_schema.double_primed(letter))
        row[left] = bottom_rows[index][left]
        row[right] = bottom_rows[index + 1][right]
        apex_rows.append(row)

    bottom = [tuple(row) for row in bottom_rows]
    apexes = [tuple(row) for row in apex_rows]
    instance = Instance(schema, bottom + apexes)
    bridge = Bridge(reduction_schema, word, list(bottom), list(apexes))
    bridge.check()
    return instance, bridge

"""Direction (B): the finite counterexample database.

Given a finite semigroup ``G`` *without identity* having the cancellation
property, in which every antecedent equation holds but ``A0 ≠ 0``, the
paper constructs a finite database satisfying every dependency in ``D``
but not ``D0``:

1. adjoin an identity: ``G' = G ∪ {I}`` (cancellation is preserved —
   that is what condition (ii) is for);
2. ``P = {a ∈ G' : ∃b ∈ G', a·b = Ā₀}`` — the "divisors" of ``Ā₀``;
   ``I, Ā₀ ∈ P`` and ``0 ∉ P``;
3. ``Q = {⟨a, A, b⟩ : a, b ∈ P, a·Ā = b}`` — one fresh element per edge
   of the partial 1-1 functions ``→_A`` (1-1 by cancellation);
4. the universe is ``P ∪ Q`` with the four equivalence-relation families:

   * ``~A'`` links ``⟨a,A,b⟩`` with ``a``      (classes of size ≤ 2),
   * ``~A''`` links ``⟨a,A,b⟩`` with ``b``     (classes of size ≤ 2),
   * ``~E``  makes all of ``P`` one class,
   * ``~E'`` makes all of ``Q`` one class.

Each element becomes one database tuple whose component in attribute
``α`` is (a constant naming) its ``~α``-equivalence class, so two tuples
agree on ``α`` exactly when their elements are ``~α``-equivalent.

:func:`verify_counterexample` then model-checks the whole of ``D``
against the database and exhibits ``D0``'s violation — the paper's
``(NOT D0)`` witness ``t₁ = I, t₂ = Ā₀, t₃ = ⟨I, A₀, Ā₀⟩``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.chase.checkplan import ModelChecker
from repro.dependencies.template import TemplateDependency
from repro.errors import ReductionError, VerificationError
from repro.reduction.encode import ReductionEncoding
from repro.reduction.schema import BOTTOM_ROW, TOP_ROW, ReductionSchema
from repro.relational.instance import Instance, Row
from repro.relational.values import Const
from repro.semigroups.construct import adjoin_identity
from repro.semigroups.finite import FiniteSemigroup
from repro.semigroups.search import CounterModel

#: A universe element: a plain semigroup element index (member of P) or a
#: triple ``(a, letter, b)`` (member of Q).
Element = Union[int, tuple[int, str, int]]


@dataclass
class CounterexampleDatabase:
    """The finite model of ``D`` in which ``D0`` fails, with provenance."""

    encoding: ReductionEncoding
    counter_model: CounterModel
    extended: FiniteSemigroup  # G' = G with identity adjoined
    p_elements: list[int]
    q_elements: list[tuple[int, str, int]]
    instance: Instance
    row_of: dict[Element, Row]

    @property
    def universe_size(self) -> int:
        """``|P| + |Q|``."""
        return len(self.p_elements) + len(self.q_elements)

    def describe(self) -> str:
        """Summary for experiment logs."""
        return (
            f"|G|={self.counter_model.semigroup.size} -> |G'|={self.extended.size}, "
            f"|P|={len(self.p_elements)}, |Q|={len(self.q_elements)}, "
            f"database rows={len(self.instance)}"
        )


def counterexample_database(
    encoding: ReductionEncoding, counter_model: CounterModel
) -> CounterexampleDatabase:
    """Build the paper's finite model from a verified counter-semigroup."""
    semigroup = counter_model.semigroup
    if semigroup.has_identity():
        raise ReductionError("the construction starts from a semigroup WITHOUT identity")
    if semigroup.zero() is None:
        raise ReductionError("the counter-semigroup must have a zero")
    if not semigroup.has_cancellation_property():
        raise ReductionError("the counter-semigroup must have the cancellation property")
    presentation = encoding.presentation
    assignment = dict(counter_model.assignment)
    missing = set(presentation.alphabet) - set(assignment)
    if missing:
        raise ReductionError(f"assignment misses letters {sorted(missing)}")

    extended = adjoin_identity(semigroup)
    a0_element = assignment[presentation.a0]
    zero_element = assignment[presentation.zero]
    if a0_element == zero_element:
        raise ReductionError("the counter-model does not refute A0 = 0")

    # P = divisors of the A0 element in G'.
    p_elements = [
        a
        for a in range(extended.size)
        if any(extended.product(a, b) == a0_element for b in range(extended.size))
    ]
    p_set = set(p_elements)
    identity = extended.size - 1  # adjoin_identity appends I last
    if identity not in p_set or a0_element not in p_set:
        raise VerificationError("P must contain I and the A0 element")
    if zero_element in p_set:
        raise VerificationError("P must not contain 0 (else A0 would be 0)")

    # Q = one element per edge of each partial function ->_A on P.
    q_elements: list[tuple[int, str, int]] = []
    for letter in presentation.alphabet:
        letter_element = assignment[letter]
        for a in p_elements:
            b = extended.product(a, letter_element)
            if b in p_set:
                q_elements.append((a, letter, b))

    schema = encoding.reduction_schema
    row_of = _build_rows(schema, presentation.alphabet, p_elements, q_elements)
    instance = Instance(schema.schema, row_of.values())
    return CounterexampleDatabase(
        encoding=encoding,
        counter_model=counter_model,
        extended=extended,
        p_elements=p_elements,
        q_elements=q_elements,
        instance=instance,
        row_of=row_of,
    )


def _build_rows(
    schema: ReductionSchema,
    alphabet: tuple[str, ...],
    p_elements: list[int],
    q_elements: list[tuple[int, str, int]],
) -> dict[Element, Row]:
    """One tuple per element; components name equivalence classes."""
    universe: list[Element] = list(p_elements) + list(q_elements)
    # For each attribute, map element -> class representative.
    class_of: dict[str, dict[Element, Element]] = {}

    identity_classes = {element: element for element in universe}
    # ~E: all of P together; Q elements alone.
    e_classes: dict[Element, Element] = dict(identity_classes)
    if p_elements:
        for element in p_elements:
            e_classes[element] = p_elements[0]
    class_of[BOTTOM_ROW] = e_classes
    # ~E': all of Q together; P elements alone.
    ep_classes: dict[Element, Element] = dict(identity_classes)
    if q_elements:
        for element in q_elements:
            ep_classes[element] = q_elements[0]
    class_of[TOP_ROW] = ep_classes
    # ~A' pairs <a,A,b> with a;  ~A'' pairs <a,A,b> with b.
    for letter in alphabet:
        primed: dict[Element, Element] = dict(identity_classes)
        doubled: dict[Element, Element] = dict(identity_classes)
        for triple in q_elements:
            a, triple_letter, b = triple
            if triple_letter != letter:
                continue
            primed[triple] = a  # class {a, <a,A,b>}
            doubled[triple] = b  # class {b, <a,A,b>}
        class_of[schema.primed(letter)] = primed
        class_of[schema.double_primed(letter)] = doubled

    rows: dict[Element, Row] = {}
    for element in universe:
        components = []
        for attribute in schema.schema:
            representative = class_of[attribute][element]
            components.append(Const((attribute, representative)))
        rows[element] = tuple(components)
    if len(set(rows.values())) != len(universe):
        raise VerificationError("distinct elements produced identical tuples")
    return rows


def check_class_facts(database: CounterexampleDatabase) -> None:
    """Machine-check the proof's Facts 1 and 2.

    *Fact 1*: each ``~A'`` equivalence class has cardinality 1 or 2, and
    the only classes contained entirely within ``P`` or entirely within
    ``Q`` are trivial (singletons). *Fact 2*: likewise for ``~A''``.
    Raises :class:`~repro.errors.VerificationError` on any breach.
    """
    schema = database.encoding.reduction_schema
    p_set = set(database.p_elements)
    for letter in database.encoding.presentation.alphabet:
        for attribute in (schema.primed(letter), schema.double_primed(letter)):
            column = schema.schema.position(attribute)
            classes: dict[object, list[Element]] = {}
            for element, row in database.row_of.items():
                classes.setdefault(row[column], []).append(element)
            for members in classes.values():
                if len(members) > 2:
                    raise VerificationError(
                        f"~{attribute} class {members} has cardinality "
                        f"{len(members)} > 2 (Facts 1/2 violated)"
                    )
                if len(members) == 2:
                    in_p = [member in p_set for member in members]
                    if all(in_p) or not any(in_p):
                        raise VerificationError(
                            f"nontrivial ~{attribute} class {members} lies "
                            "entirely within P or entirely within Q"
                        )


@dataclass
class CounterexampleReport:
    """Outcome of verifying a counterexample database."""

    database: CounterexampleDatabase
    d_satisfied: bool
    d0_violated: bool
    d0_witness: Optional[dict]
    violations: list[tuple[TemplateDependency, dict]]

    @property
    def ok(self) -> bool:
        """True when direction (B) is fully confirmed."""
        return self.d_satisfied and self.d0_violated

    def describe(self) -> str:
        """Summary for experiment logs."""
        status = "CONFIRMED" if self.ok else "FAILED"
        return (
            f"direction (B) {status}: all D hold={self.d_satisfied}, "
            f"D0 violated={self.d0_violated} ({self.database.describe()})"
        )


def verify_counterexample(database: CounterexampleDatabase) -> CounterexampleReport:
    """Model-check the whole encoding against the database.

    Confirms every ``Di(r)`` holds and ``D0`` fails, returning the full
    report (including ``D0``'s violating match — the paper's
    ``t₁ = I, t₂ = Ā₀, t₃ = ⟨I, A₀, Ā₀⟩`` witness, or a symmetric one).
    """
    encoding = database.encoding
    check_class_facts(database)  # the proof's Facts 1 and 2
    # One interned view of the database serves the whole direction-(B)
    # sweep: every Di(r) plus D0's violation probe.
    model = ModelChecker(database.instance)
    violations = model.all_violations(encoding.dependencies)
    d0_witness = model.find_violation(encoding.d0)
    return CounterexampleReport(
        database=database,
        d_satisfied=not violations,
        d0_violated=d0_witness is not None,
        d0_witness=d0_witness,
        violations=violations,
    )

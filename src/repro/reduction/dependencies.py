"""The reduction's dependencies: ``D1(r) .. D4(r)`` per equation, and ``D0``.

Figure 3 of the paper gives, for each short-form equation ``r: AB = C``,
four template dependencies over the bridge schema; together with the goal
dependency ``D0`` they realise replacement steps of the word problem as
chase steps:

* **D1(r)** — *contraction* ``AB → C``: given adjacent triangles for ``A``
  (over base points 1,2) and ``B`` (over 2,3), an apex for ``C`` spanning
  1-3 exists.
* **D2(r)** — start of *expansion* ``C → AB``: given a ``C`` triangle over
  1-2, an ``A`` apex attached to base point 1 exists (its right endpoint
  is existential).
* **D3(r)** — "completely analogous" other half: a ``B`` apex attached to
  base point 2 exists (its left endpoint existential).
* **D4(r)** — *gluing*: given the ``C`` triangle plus an ``A`` apex from
  point 1 and a ``B`` apex into point 2 (all apexes E'-equivalent), a new
  **base** point exists that simultaneously ends the ``A`` apex and starts
  the ``B`` apex — in the proof its existence is exactly where the
  semigroup's cancellation property is used.

* **D0** — "a bridge for the single letter ``A0`` spans a-b implies a
  bridge for ``0`` spans a-b": given an ``A0`` triangle over base points
  1-2, a ``0`` apex over 1-2 exists, E'-equivalent to the ``A0`` apex.

Each dependency is specified as a node/edge diagram (the same data as the
paper's figures) through :func:`build_td`, so the construction is readable
against Figure 3 line by line. Every dependency has at most **five**
antecedents — the boundedness the paper highlights as complementary to
Vardi's result.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dependencies.template import TemplateDependency, Variable
from repro.errors import ReductionError
from repro.reduction.schema import BOTTOM_ROW, TOP_ROW, ReductionSchema
from repro.relational.schema import Attribute
from repro.semigroups.presentation import Equation

#: A diagram edge: two node labels and the attribute they agree on.
EdgeSpec = tuple[str, str, Attribute]

#: The conclusion node's label in specifications.
STAR = "*"


def build_td(
    reduction_schema: ReductionSchema,
    antecedent_nodes: Sequence[str],
    edges: Iterable[EdgeSpec],
    *,
    name: str,
) -> TemplateDependency:
    """Build a TD from a node/edge specification (a textual Figure 3).

    ``antecedent_nodes`` lists the antecedent node labels in atom order;
    the conclusion node is always ``"*"``. Every node gets a distinct
    variable in every column; each edge merges the two endpoint variables
    of its attribute's column. Conclusion-node variables not merged with
    any antecedent come out existentially quantified, exactly as in the
    paper's diagrams.
    """
    schema = reduction_schema.schema
    nodes = list(antecedent_nodes) + [STAR]
    if len(set(nodes)) != len(nodes):
        raise ReductionError(f"duplicate node labels in {nodes}")
    # Union-find over (node, column) cells.
    parent: dict[tuple[str, int], tuple[str, int]] = {
        (node, column): (node, column)
        for node in nodes
        for column in range(schema.arity)
    }

    def find(cell: tuple[str, int]) -> tuple[str, int]:
        while parent[cell] != cell:
            parent[cell] = parent[parent[cell]]
            cell = parent[cell]
        return cell

    for node_a, node_b, attribute in edges:
        column = schema.position(attribute)
        for node in (node_a, node_b):
            if node not in nodes:
                raise ReductionError(f"edge uses unknown node {node!r}")
        parent[find((node_a, column))] = find((node_b, column))

    def atom_for(node: str) -> tuple[Variable, ...]:
        variables = []
        for column in range(schema.arity):
            root_node, root_column = find((node, column))
            variables.append(
                Variable(f"{schema.attribute(root_column)}@{root_node}")
            )
        return tuple(variables)

    return TemplateDependency(
        schema,
        [atom_for(node) for node in antecedent_nodes],
        atom_for(STAR),
        name=name,
    )


def equation_dependencies(
    reduction_schema: ReductionSchema, equation: Equation
) -> tuple[TemplateDependency, ...]:
    """The four dependencies ``D1(r) .. D4(r)`` for ``r: AB = C``."""
    if not equation.is_short_form():
        raise ReductionError(f"equation {equation} is not in short form AB = C")
    letter_a, letter_b = equation.lhs
    letter_c = equation.rhs[0]
    a_p = reduction_schema.primed(letter_a)
    a_pp = reduction_schema.double_primed(letter_a)
    b_p = reduction_schema.primed(letter_b)
    b_pp = reduction_schema.double_primed(letter_b)
    c_p = reduction_schema.primed(letter_c)
    c_pp = reduction_schema.double_primed(letter_c)
    tag = f"{'.'.join(equation.lhs)}={'.'.join(equation.rhs)}"

    # D1(r): contract A B -> C. Base points 1,2,3; A-apex 4, B-apex 5;
    # conclusion: C-apex over 1-3, joining the apex row.
    d1 = build_td(
        reduction_schema,
        ["1", "2", "3", "4", "5"],
        [
            ("1", "2", BOTTOM_ROW),
            ("2", "3", BOTTOM_ROW),
            ("1", "4", a_p),
            ("4", "2", a_pp),
            ("2", "5", b_p),
            ("5", "3", b_pp),
            ("4", "5", TOP_ROW),
            ("1", STAR, c_p),
            (STAR, "3", c_pp),
            (STAR, "4", TOP_ROW),
        ],
        name=f"D1[{tag}]",
    )

    # D2(r): expansion, first half. Base points 1,2; C-apex 3;
    # conclusion: an A-apex hanging off base point 1 (right end
    # existential), E'-equivalent to the C-apex.
    d2 = build_td(
        reduction_schema,
        ["1", "2", "3"],
        [
            ("1", "2", BOTTOM_ROW),
            ("1", "3", c_p),
            ("3", "2", c_pp),
            ("1", STAR, a_p),
            (STAR, "3", TOP_ROW),
        ],
        name=f"D2[{tag}]",
    )

    # D3(r): expansion, second half ("completely analogous to D2"):
    # a B-apex ending at base point 2 (left end existential).
    d3 = build_td(
        reduction_schema,
        ["1", "2", "3"],
        [
            ("1", "2", BOTTOM_ROW),
            ("1", "3", c_p),
            ("3", "2", c_pp),
            (STAR, "2", b_pp),
            (STAR, "3", TOP_ROW),
        ],
        name=f"D3[{tag}]",
    )

    # D4(r): gluing. Base points 1,2; C-apex 3; A-apex 4 from point 1;
    # B-apex 5 into point 2; conclusion: a new *base* point that ends the
    # A-apex and starts the B-apex. (In the model proof, its existence is
    # cancellation: b1·B = t1·A·B = t1·C = t2 = b2·B forces b1 = b2.)
    d4 = build_td(
        reduction_schema,
        ["1", "2", "3", "4", "5"],
        [
            ("1", "2", BOTTOM_ROW),
            ("1", "3", c_p),
            ("3", "2", c_pp),
            ("1", "4", a_p),
            ("4", "3", TOP_ROW),
            ("5", "2", b_pp),
            ("5", "3", TOP_ROW),
            (STAR, "1", BOTTOM_ROW),
            ("4", STAR, a_pp),
            (STAR, "5", b_p),
        ],
        name=f"D4[{tag}]",
    )
    return d1, d2, d3, d4


def d0_dependency(reduction_schema: ReductionSchema, a0: str, zero: str) -> TemplateDependency:
    """The goal dependency ``D0``.

    Antecedents: a triangle for the one-letter word ``A0`` spanning base
    points 1-2 (apex node 3). Conclusion: a ``0`` apex over the same base
    points, E'-equivalent to the ``A0`` apex — i.e. a bridge for the word
    ``0`` spans the same endpoints.
    """
    return build_td(
        reduction_schema,
        ["1", "2", "3"],
        [
            ("1", "2", BOTTOM_ROW),
            ("1", "3", reduction_schema.primed(a0)),
            ("3", "2", reduction_schema.double_primed(a0)),
            ("3", STAR, TOP_ROW),
            ("1", STAR, reduction_schema.primed(zero)),
            (STAR, "2", reduction_schema.double_primed(zero)),
        ],
        name="D0",
    )

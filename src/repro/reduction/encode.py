"""The full encoding ``φ ↦ (D, D0)`` of the Reduction Theorem.

Given a presentation (the antecedent equations of ``φ``, in short form and
containing the zero equations), :func:`encode` produces

* the schema with ``2n + 2`` attributes,
* the dependency set ``D`` — four dependencies per equation, and
* the goal dependency ``D0``,

packaged as a :class:`ReductionEncoding` that both directions of the
theorem, the benchmarks and the examples consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dependencies.classify import summarize
from repro.dependencies.template import TemplateDependency
from repro.errors import ReductionError
from repro.reduction.dependencies import d0_dependency, equation_dependencies
from repro.reduction.schema import ReductionSchema
from repro.semigroups.presentation import Equation, Presentation


@dataclass
class ReductionEncoding:
    """The output of the reduction: schema, ``D`` and ``D0``."""

    presentation: Presentation
    reduction_schema: ReductionSchema
    dependencies: list[TemplateDependency]
    d0: TemplateDependency
    by_equation: dict[Equation, tuple[TemplateDependency, ...]] = field(
        default_factory=dict
    )

    @property
    def dependency_count(self) -> int:
        """``4 · |equations|``."""
        return len(self.dependencies)

    @property
    def attribute_count(self) -> int:
        """``2n + 2`` for an ``n``-letter alphabet."""
        return self.reduction_schema.attribute_count

    def describe(self) -> str:
        """Summary used by the experiment logs (paper claims E3)."""
        stats = summarize(self.dependencies + [self.d0])
        return (
            f"alphabet {len(self.presentation.alphabet)} letters -> "
            f"{self.attribute_count} attributes; "
            f"{len(self.presentation.equations)} equations -> "
            f"{self.dependency_count} dependencies + D0; {stats}"
        )


def encode(presentation: Presentation, *, normalize: bool = True) -> ReductionEncoding:
    """Encode ``φ`` (a presentation) into ``(D, D0)``.

    With ``normalize`` (the default) the presentation is first brought to
    short form; otherwise it must already be short-form or a
    :class:`~repro.errors.ReductionError` is raised. The paper's
    requirement that the zero equations be present is enforced either way.
    """
    if normalize:
        presentation = presentation.normalized()
    if not presentation.is_short_form():
        raise ReductionError(
            "the reduction needs a short-form presentation; pass normalize=True"
        )
    if not presentation.has_zero_equations():
        raise ReductionError(
            "the Main Lemma requires the zero equations A.0 = 0 and 0.A = 0; "
            "build the presentation with Presentation.with_zero_equations"
        )
    reduction_schema = ReductionSchema.for_presentation(presentation)
    dependencies: list[TemplateDependency] = []
    by_equation: dict[Equation, tuple[TemplateDependency, ...]] = {}
    for equation in presentation.short_equations():
        four = equation_dependencies(reduction_schema, equation)
        by_equation[equation] = four
        dependencies.extend(four)
    d0 = d0_dependency(reduction_schema, presentation.a0, presentation.zero)
    return ReductionEncoding(
        presentation=presentation,
        reduction_schema=reduction_schema,
        dependencies=dependencies,
        d0=d0,
        by_equation=by_equation,
    )

"""The Gurevich-Lewis reduction (system S5).

Everything in the proof of the paper's Main Theorem, as running code:

* :mod:`repro.reduction.schema` — the ``2n+2``-attribute schema: for each
  letter ``A`` the attributes ``A'`` and ``A''``, plus ``E`` (bottom row)
  and ``E'`` (top row);
* :mod:`repro.reduction.bridge` — bridge structures for words (Figure 2);
* :mod:`repro.reduction.dependencies` — the dependencies ``D1(r) ... D4(r)``
  for each short-form equation ``r: AB = C`` and the goal dependency
  ``D0`` (Figure 3);
* :mod:`repro.reduction.encode` — the full encoding ``φ ↦ (D, D0)``;
* :mod:`repro.reduction.proofs` — direction (A): replay a word derivation
  ``A0 →* 0`` as a machine-verified chase proof that ``D ⊨ D0``;
* :mod:`repro.reduction.model` — direction (B): the finite
  counterexample database ``P ∪ Q`` built from a finite cancellation
  semigroup without identity, plus its verification;
* :mod:`repro.reduction.theorem` — end-to-end drivers for both
  directions and the operational three-valued Main-Theorem classifier.
"""

from repro.reduction.bridge import Bridge, bridge_instance
from repro.reduction.dependencies import (
    build_td,
    d0_dependency,
    equation_dependencies,
)
from repro.reduction.encode import ReductionEncoding, encode
from repro.reduction.model import counterexample_database, verify_counterexample
from repro.reduction.proofs import BridgeChaseProof, prove_from_derivation
from repro.reduction.schema import ReductionSchema
from repro.reduction.theorem import (
    DirectionAReport,
    DirectionBReport,
    InstanceClass,
    classify_instance,
    prove_direction_a,
    prove_direction_b,
)

__all__ = [
    "ReductionSchema",
    "Bridge",
    "bridge_instance",
    "build_td",
    "d0_dependency",
    "equation_dependencies",
    "ReductionEncoding",
    "encode",
    "BridgeChaseProof",
    "prove_from_derivation",
    "counterexample_database",
    "verify_counterexample",
    "DirectionAReport",
    "DirectionBReport",
    "InstanceClass",
    "classify_instance",
    "prove_direction_a",
    "prove_direction_b",
]

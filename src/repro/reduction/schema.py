"""The reduction's relational schema: ``2n + 2`` attributes.

For an alphabet ``S`` of ``n`` letters, the construction uses one relation
whose attributes are the equivalence relations of the proof:

* ``A'`` and ``A''`` for each letter ``A`` — an apex tuple representing an
  occurrence of ``A`` agrees with the bottom tuple to its left on ``A'``
  and with the bottom tuple to its right on ``A''``;
* ``E`` — all bottom tuples of a bridge agree here;
* ``E'`` — all apex tuples of a bridge agree here.

"if S contains n symbols, the relation will have 2n + 2 attributes."
"""

from __future__ import annotations

from repro.errors import ReductionError
from repro.relational.schema import Attribute, Schema
from repro.semigroups.presentation import Presentation

#: Attribute shared by all bottom (base) tuples of a bridge.
BOTTOM_ROW: Attribute = "E"

#: Attribute shared by all apex (top) tuples of a bridge.
TOP_ROW: Attribute = "E'"


class ReductionSchema:
    """The ``2n + 2``-attribute schema for an alphabet.

    Attribute order: ``E``, ``E'``, then ``A'``, ``A''`` per letter in
    alphabet order. Letters named ``E`` or ``E'`` would collide with the
    row attributes and are rejected (rename the letter).
    """

    __slots__ = ("alphabet", "schema")

    def __init__(self, alphabet: tuple[str, ...]):
        if len(set(alphabet)) != len(alphabet):
            raise ReductionError("alphabet contains duplicate letters")
        names: list[Attribute] = [BOTTOM_ROW, TOP_ROW]
        for letter in alphabet:
            primed, doubled = f"{letter}'", f"{letter}''"
            if letter in (BOTTOM_ROW, TOP_ROW) or primed in (BOTTOM_ROW, TOP_ROW):
                raise ReductionError(
                    f"letter {letter!r} collides with the bridge-row attributes; "
                    "rename it before encoding"
                )
            names.append(primed)
            names.append(doubled)
        self.alphabet = alphabet
        self.schema = Schema(names)

    @staticmethod
    def for_presentation(presentation: Presentation) -> "ReductionSchema":
        """The schema for a presentation's alphabet."""
        return ReductionSchema(tuple(presentation.alphabet))

    def primed(self, letter: str) -> Attribute:
        """The ``A'`` attribute of ``letter`` (apex-to-left-base agreement)."""
        self._check_letter(letter)
        return f"{letter}'"

    def double_primed(self, letter: str) -> Attribute:
        """The ``A''`` attribute of ``letter`` (apex-to-right-base agreement)."""
        self._check_letter(letter)
        return f"{letter}''"

    def _check_letter(self, letter: str) -> None:
        if letter not in self.alphabet:
            raise ReductionError(f"letter {letter!r} is not in the alphabet")

    @property
    def attribute_count(self) -> int:
        """``2n + 2`` for an ``n``-letter alphabet."""
        return self.schema.arity

    def __repr__(self) -> str:
        return (
            f"<ReductionSchema letters={len(self.alphabet)} "
            f"attributes={self.attribute_count}>"
        )

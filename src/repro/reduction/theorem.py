"""End-to-end drivers for the Reduction Theorem and the Main Theorem.

* :func:`prove_direction_a` — positive instances: find a derivation
  ``A0 →* 0``, replay it as a verified chase proof, and (optionally)
  cross-check with the generic chase engine.
* :func:`prove_direction_b` — negative instances: find a finite
  cancellation counter-semigroup, build the counterexample database, and
  model-check both halves of the claim.
* :func:`classify_instance` — the Main Theorem made operational: a
  bounded, three-valued classifier. ``A0_COLLAPSES`` and
  ``FINITELY_REFUTABLE`` come with machine-checked certificates;
  ``UNKNOWN`` is the honest third value that the undecidability theorem
  says cannot always be avoided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.chase.budget import Budget
from repro.chase.implication import InferenceOutcome, InferenceStatus, implies
from repro.errors import ReductionError
from repro.reduction.encode import ReductionEncoding, encode
from repro.reduction.model import (
    CounterexampleReport,
    counterexample_database,
    verify_counterexample,
)
from repro.reduction.proofs import BridgeChaseProof, prove_from_derivation
from repro.semigroups.presentation import Presentation
from repro.semigroups.rewriting import Derivation, word_problem
from repro.semigroups.search import CounterModel, find_counter_model


@dataclass
class DirectionAReport:
    """A fully verified positive instance: ``φ`` valid, hence ``D ⊨ D0``."""

    encoding: ReductionEncoding
    derivation: Derivation
    proof: BridgeChaseProof
    generic_outcome: Optional[InferenceOutcome] = None

    def describe(self) -> str:
        """Summary for experiment logs."""
        parts = [
            f"derivation of length {self.derivation.length}",
            f"guided chase proof with {self.proof.step_count} steps",
        ]
        if self.generic_outcome is not None:
            parts.append(f"generic chase: {self.generic_outcome.status.value}")
        return "direction (A) CONFIRMED: " + ", ".join(parts)


@dataclass
class DirectionBReport:
    """A fully verified negative instance: finite model of ``D`` failing ``D0``."""

    encoding: ReductionEncoding
    counter_model: CounterModel
    report: CounterexampleReport

    def describe(self) -> str:
        """Summary for experiment logs."""
        return (
            f"{self.report.describe()}; counter-semigroup: "
            f"{self.counter_model.describe()}"
        )


def prove_direction_a(
    presentation: Presentation,
    *,
    max_word_length: int = 8,
    max_visited: int = 200_000,
    cross_check: bool = False,
    cross_check_budget: Optional[Budget] = None,
) -> DirectionAReport:
    """Run direction (A) end to end on a positive instance.

    Raises :class:`~repro.errors.ReductionError` when no derivation is
    found within the search bounds (the instance may still be positive —
    undecidability — so this is a resource failure, not a refutation).
    """
    encoding = encode(presentation)
    derivation = word_problem(
        encoding.presentation,
        max_length=max_word_length,
        max_visited=max_visited,
    )
    if derivation is None:
        raise ReductionError(
            "no derivation A0 ->* 0 found within bounds; cannot run direction (A)"
        )
    proof = prove_from_derivation(encoding, derivation)
    generic: Optional[InferenceOutcome] = None
    if cross_check:
        generic = implies(
            encoding.dependencies,
            encoding.d0,
            budget=cross_check_budget or Budget(),
        )
    return DirectionAReport(
        encoding=encoding,
        derivation=derivation,
        proof=proof,
        generic_outcome=generic,
    )


def prove_direction_b(
    presentation: Presentation,
    *,
    max_semigroup_size: int = 6,
) -> DirectionBReport:
    """Run direction (B) end to end on a negative instance.

    Raises :class:`~repro.errors.ReductionError` when no counter-semigroup
    is found within the size bound, and
    :class:`~repro.errors.VerificationError` if (impossibly, unless the
    construction is wrong) the built database fails its model check.
    """
    encoding = encode(presentation)
    counter_model = find_counter_model(
        encoding.presentation, max_size=max_semigroup_size
    )
    if counter_model is None:
        raise ReductionError(
            "no finite cancellation counter-semigroup found within bounds; "
            "cannot run direction (B)"
        )
    database = counterexample_database(encoding, counter_model)
    report = verify_counterexample(database)
    return DirectionBReport(
        encoding=encoding, counter_model=counter_model, report=report
    )


class InstanceClass(enum.Enum):
    """What the bounded classifier established about a presentation."""

    #: ``A0 = 0`` is derivable: ``φ`` holds in every semigroup and
    #: ``D ⊨ D0`` (certificate: derivation + chase proof).
    A0_COLLAPSES = "a0_collapses"

    #: A finite cancellation counter-semigroup exists: ``D ⊭ D0`` even
    #: finitely (certificate: verified counterexample database).
    FINITELY_REFUTABLE = "finitely_refutable"

    #: Neither found within bounds. The Main Theorem guarantees no budget
    #: makes this case empty.
    UNKNOWN = "unknown"


@dataclass
class ClassificationReport:
    """Outcome of :func:`classify_instance` with its certificate."""

    presentation: Presentation
    instance_class: InstanceClass
    direction_a: Optional[DirectionAReport] = None
    direction_b: Optional[DirectionBReport] = None

    def describe(self) -> str:
        """Summary for experiment logs."""
        detail = ""
        if self.direction_a is not None:
            detail = f" ({self.direction_a.describe()})"
        elif self.direction_b is not None:
            detail = f" ({self.direction_b.describe()})"
        return f"{self.instance_class.value}{detail}"


def classify_instance(
    presentation: Presentation,
    *,
    max_word_length: int = 8,
    max_visited: int = 50_000,
    max_semigroup_size: int = 5,
) -> ClassificationReport:
    """The Main Theorem, operationally: try both directions under bounds.

    First searches for a derivation (positive), then for a finite
    counter-model (negative); returns ``UNKNOWN`` when both bounded
    searches fail — the three-valued behaviour that undecidability forces
    on every terminating procedure.
    """
    try:
        report_a = prove_direction_a(
            presentation,
            max_word_length=max_word_length,
            max_visited=max_visited,
        )
        return ClassificationReport(
            presentation=presentation,
            instance_class=InstanceClass.A0_COLLAPSES,
            direction_a=report_a,
        )
    except ReductionError:
        pass
    try:
        report_b = prove_direction_b(
            presentation, max_semigroup_size=max_semigroup_size
        )
        if report_b.report.ok:
            return ClassificationReport(
                presentation=presentation,
                instance_class=InstanceClass.FINITELY_REFUTABLE,
                direction_b=report_b,
            )
    except ReductionError:
        pass
    return ClassificationReport(
        presentation=presentation, instance_class=InstanceClass.UNKNOWN
    )

"""Direction (A): word derivations replayed as machine-verified chase proofs.

The proof of part (A) of the Reduction Theorem is an induction: a
derivation ``u₀ = A0, u₁, ..., u_m = 0`` is mirrored, step by step, by
chase steps over the encoded dependencies, maintaining a bridge for the
current word that spans the two frozen base points ``a`` and ``b`` of
``D0``'s antecedent. Concretely:

* a **contraction** step (replace ``AB`` by ``C``) fires ``D1(r)`` once;
* an **expansion** step (replace ``C`` by ``AB``) fires ``D2(r)``,
  ``D3(r)`` and ``D4(r)`` in sequence — D2/D3 grow the two new apexes
  (with existential endpoints) and D4 glues them at a new base point;
* after processing the whole derivation the bridge is a bridge for the
  word ``0``, whose apex is precisely ``D0``'s conclusion tuple.

Every constructed :class:`~repro.chase.result.ChaseStep` is replayed
through the chase engine's verifying :func:`~repro.chase.engine.apply_step`
— the builder cannot produce an unsound proof without raising — and the
final instance is checked to satisfy ``D0``'s conclusion at the frozen
match. The result is an explicit, independently checkable certificate
that ``D ⊨ D0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chase.engine import apply_step
from repro.chase.implication import conclusion_satisfied
from repro.chase.result import ChaseStep
from repro.dependencies.template import TemplateDependency, Variable, is_variable
from repro.errors import ReductionError, VerificationError
from repro.reduction.bridge import Bridge
from repro.reduction.encode import ReductionEncoding
from repro.relational.instance import Instance, Row
from repro.relational.values import NullFactory, Value
from repro.semigroups.presentation import Equation
from repro.semigroups.rewriting import Derivation
from repro.semigroups.words import Word, show


@dataclass
class BridgeChaseProof:
    """A verified chase proof that the encoding's ``D`` implies ``D0``.

    ``steps`` replayed from ``start`` (the frozen ``D0`` antecedents)
    yield ``final``, which satisfies ``D0``'s conclusion at the frozen
    assignment. ``derivation`` is the word-problem certificate the proof
    was built from.
    """

    encoding: ReductionEncoding
    derivation: Derivation
    start: Instance
    final: Instance
    steps: list[ChaseStep]
    frozen_assignment: dict[Variable, Value]

    @property
    def step_count(self) -> int:
        """Number of chase steps (≤ 3 per derivation step)."""
        return len(self.steps)

    def verify(self) -> None:
        """Re-run the whole proof from scratch, verifying every step.

        Raises :class:`~repro.errors.VerificationError` on any problem.
        """
        working = self.start.copy()
        for step in self.steps:
            apply_step(working, step, verify=True)
        if working.rows != self.final.rows:
            raise VerificationError("replayed proof does not reproduce the final instance")
        if not conclusion_satisfied(working, self.encoding.d0, self.frozen_assignment):
            raise VerificationError("proof does not establish D0's conclusion")


class _ProofBuilder:
    """Threads a bridge through a derivation, emitting chase steps."""

    def __init__(self, encoding: ReductionEncoding):
        self.encoding = encoding
        self.schema = encoding.reduction_schema
        self.fresh = NullFactory()
        self.steps: list[ChaseStep] = []
        self.instance, self.frozen = self._freeze_d0()
        self.bridge = self._initial_bridge()

    # -- setup ---------------------------------------------------------

    def _freeze_d0(self) -> tuple[Instance, dict[Variable, Value]]:
        instance, frozen = self.encoding.d0.freeze()
        return instance, frozen

    def _initial_bridge(self) -> Bridge:
        """The frozen ``D0`` antecedents *are* a bridge for the word A0."""
        d0 = self.encoding.d0
        rows = [
            tuple(self.frozen[variable] for variable in atom)
            for atom in d0.antecedents
        ]
        base_left, base_right, apex = rows
        bridge = Bridge(
            self.schema,
            (self.encoding.presentation.a0,),
            bottom=[base_left, base_right],
            apexes=[apex],
        )
        bridge.check()
        return bridge

    # -- firing machinery ----------------------------------------------

    def _fire(
        self, dependency: TemplateDependency, node_rows: dict[str, Row]
    ) -> Row:
        """Fire ``dependency`` at the given node-to-row match.

        Computes the variable bindings from the node rows, builds the
        conclusion row (fresh nulls for existentials), and replays the
        step through the verifying applier. Returns the added row.
        """
        bindings: dict[Variable, Value] = {}
        for atom, node in zip(dependency.antecedents, self._node_order(dependency)):
            row = node_rows[node]
            for variable, value in zip(atom, row):
                known = bindings.setdefault(variable, value)
                if known != value:
                    raise ReductionError(
                        f"inconsistent match for {dependency.name} at node {node}"
                    )
        conclusion_values: list[Value] = []
        for variable in dependency.conclusion:
            if variable in bindings:
                conclusion_values.append(bindings[variable])
            else:
                null = self.fresh()
                bindings[variable] = null
                conclusion_values.append(null)
        added = tuple(conclusion_values)
        step = ChaseStep(
            dependency=dependency,
            bindings=tuple(
                sorted(
                    (
                        (variable.name, value)
                        for variable, value in bindings.items()
                        if variable in dependency.universal_variables()
                    ),
                    key=lambda pair: pair[0],
                )
            ),
            added_rows=(added,),
        )
        apply_step(self.instance, step, verify=True)
        self.steps.append(step)
        return added

    @staticmethod
    def _node_order(dependency: TemplateDependency) -> list[str]:
        """The node labels behind a built dependency's antecedent order.

        :func:`repro.reduction.dependencies.build_td` lays out antecedents
        in the node order it was given, which for D1/D4 is 1..5 and for
        D0/D2/D3 is 1..3.
        """
        return [str(index + 1) for index in range(len(dependency.antecedents))]

    # -- derivation steps ----------------------------------------------

    def contract(self, equation: Equation, position: int) -> None:
        """Apply ``AB -> C`` at ``position`` (one D1 firing)."""
        d1 = self.encoding.by_equation[equation][0]
        bottom, apexes = self.bridge.bottom, self.bridge.apexes
        new_apex = self._fire(
            d1,
            {
                "1": bottom[position],
                "2": bottom[position + 1],
                "3": bottom[position + 2],
                "4": apexes[position],
                "5": apexes[position + 1],
            },
        )
        word = self.bridge.word
        self.bridge = Bridge(
            self.schema,
            word[:position] + equation.rhs + word[position + 2 :],
            bottom=bottom[: position + 1] + bottom[position + 2 :],
            apexes=apexes[:position] + [new_apex] + apexes[position + 2 :],
        )
        self.bridge.check()

    def expand(self, equation: Equation, position: int) -> None:
        """Apply ``C -> AB`` at ``position`` (D2, D3, then D4)."""
        __, d2, d3, d4 = self.encoding.by_equation[equation]
        bottom, apexes = self.bridge.bottom, self.bridge.apexes
        base_match = {
            "1": bottom[position],
            "2": bottom[position + 1],
            "3": apexes[position],
        }
        apex_a = self._fire(d2, base_match)
        apex_b = self._fire(d3, base_match)
        new_base = self._fire(d4, {**base_match, "4": apex_a, "5": apex_b})
        word = self.bridge.word
        self.bridge = Bridge(
            self.schema,
            word[:position] + equation.lhs + word[position + 1 :],
            bottom=bottom[: position + 1] + [new_base] + bottom[position + 1 :],
            apexes=apexes[:position] + [apex_a, apex_b] + apexes[position + 1 :],
        )
        self.bridge.check()


def classify_replacement(
    encoding: ReductionEncoding, before: Word, after: Word
) -> tuple[Equation, int, str]:
    """Identify which equation, where, and in which direction.

    Returns ``(equation, position, kind)`` with ``kind`` one of
    ``"contract"`` (``lhs -> rhs``) or ``"expand"`` (``rhs -> lhs``).
    """
    for equation in encoding.presentation.equations:
        lhs, rhs = equation.lhs, equation.rhs
        for position in range(len(before) - len(lhs) + 1):
            if (
                before[position : position + len(lhs)] == lhs
                and before[:position] + rhs + before[position + len(lhs) :] == after
            ):
                return equation, position, "contract"
        for position in range(len(before) - len(rhs) + 1):
            if (
                before[position : position + len(rhs)] == rhs
                and before[:position] + lhs + before[position + len(rhs) :] == after
            ):
                return equation, position, "expand"
    raise ReductionError(
        f"no single replacement explains {show(before)} -> {show(after)}"
    )


def prove_from_derivation(
    encoding: ReductionEncoding, derivation: Derivation
) -> BridgeChaseProof:
    """Build and verify the chase proof mirroring ``derivation``.

    The derivation must run from the one-letter word ``A0`` to the
    one-letter word ``0`` over the encoding's presentation.
    """
    presentation = encoding.presentation
    if derivation.source != (presentation.a0,):
        raise ReductionError(
            f"derivation must start at {presentation.a0}, starts at "
            f"{show(derivation.source)}"
        )
    if derivation.target != (presentation.zero,):
        raise ReductionError(
            f"derivation must end at {presentation.zero}, ends at "
            f"{show(derivation.target)}"
        )
    derivation.validate(presentation)
    builder = _ProofBuilder(encoding)
    for before, after in derivation.steps():
        equation, position, kind = classify_replacement(encoding, before, after)
        if kind == "contract":
            builder.contract(equation, position)
        else:
            builder.expand(equation, position)
        if builder.bridge.word != after:
            raise ReductionError(
                f"bridge word {show(builder.bridge.word)} diverged from "
                f"derivation word {show(after)}"
            )
    proof = BridgeChaseProof(
        encoding=encoding,
        derivation=derivation,
        start=encoding.d0.freeze()[0],
        final=builder.instance,
        steps=builder.steps,
        frozen_assignment=builder.frozen,
    )
    proof.verify()
    return proof

"""JSON round-tripping for the library's core objects.

Everything the solvers produce — including the *certificates* (chase
traces and counterexample databases) — can be serialized, so a sceptical
reader can store a proof and re-verify it in a fresh process. The format
is plain ``json``-module-compatible dicts; every entry point has a
``*_to_json`` / ``*_from_json`` pair, and round-tripping is exact
(property-tested).

Value encoding: constants may carry structured names (tuples, nested
values — the direct product and the reduction use them), so names are
encoded recursively with one-letter tags: ``{"s": ...}`` scalar,
``{"t": [...]}`` tuple, ``{"v": ...}`` nested value.
"""

from __future__ import annotations

import os
from typing import Union

from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.template import TemplateDependency, Variable
from repro.errors import ReproError
from repro.chase.budget import Budget, ChaseStats
from repro.chase.checkpoint import CHECKPOINT_VERSION, ChaseCheckpoint
from repro.chase.implication import InferenceOutcome, InferenceStatus
from repro.chase.result import ChaseResult, ChaseStatus, ChaseStep
from repro.obs.metrics import MetricsSnapshot
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Schema
from repro.relational.values import Const, LabeledNull, Value
from repro.semigroups.finite import FiniteSemigroup
from repro.semigroups.presentation import Equation, Presentation

Json = Union[dict, list, str, int, float, bool, None]


class CodecError(ReproError):
    """Malformed JSON payload for one of the codecs."""


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

def _name_to_json(name: object) -> Json:
    if isinstance(name, (str, int, float, bool)) or name is None:
        return {"s": name}
    if isinstance(name, tuple):
        return {"t": [_name_to_json(part) for part in name]}
    if isinstance(name, (Const, LabeledNull)):
        return {"v": value_to_json(name)}
    raise CodecError(f"cannot encode constant name {name!r}")


def _name_from_json(payload: Json) -> object:
    if not isinstance(payload, dict) or len(payload) != 1:
        raise CodecError(f"bad name payload {payload!r}")
    if "s" in payload:
        return payload["s"]
    if "t" in payload:
        return tuple(_name_from_json(part) for part in payload["t"])
    if "v" in payload:
        return value_from_json(payload["v"])
    raise CodecError(f"bad name payload {payload!r}")


def value_to_json(value: Value) -> Json:
    """Encode a constant or labelled null."""
    if isinstance(value, Const):
        return {"const": _name_to_json(value.name)}
    if isinstance(value, LabeledNull):
        return {"null": value.label}
    raise CodecError(f"cannot encode value {value!r}")


def value_from_json(payload: Json) -> Value:
    """Decode a constant or labelled null."""
    if isinstance(payload, dict) and "const" in payload:
        return Const(_name_from_json(payload["const"]))
    if isinstance(payload, dict) and "null" in payload:
        return LabeledNull(int(payload["null"]))
    raise CodecError(f"bad value payload {payload!r}")


# ---------------------------------------------------------------------------
# Schemas and instances
# ---------------------------------------------------------------------------

def schema_to_json(schema: Schema) -> Json:
    """Encode a schema as its attribute list."""
    return list(schema.attributes)


def schema_from_json(payload: Json) -> Schema:
    """Decode a schema."""
    if not isinstance(payload, list):
        raise CodecError("schema payload must be a list of attribute names")
    return Schema(payload)


def instance_to_json(instance: Instance) -> Json:
    """Encode a database instance (schema + rows)."""
    return {
        "schema": schema_to_json(instance.schema),
        "rows": [
            [value_to_json(value) for value in row]
            for row in sorted(instance.rows, key=repr)
        ],
    }


def instance_from_json(payload: Json) -> Instance:
    """Decode a database instance."""
    if not isinstance(payload, dict) or "schema" not in payload:
        raise CodecError("instance payload needs 'schema' and 'rows'")
    schema = schema_from_json(payload["schema"])
    rows = [
        tuple(value_from_json(value) for value in row)
        for row in payload.get("rows", [])
    ]
    return Instance(schema, rows)


# ---------------------------------------------------------------------------
# Dependencies
# ---------------------------------------------------------------------------

def _atom_to_json(atom) -> list[str]:
    return [variable.name for variable in atom]


def _atom_from_json(payload) -> tuple[Variable, ...]:
    return tuple(Variable(name) for name in payload)


def dependency_to_json(
    dependency: Union[TemplateDependency, EmbeddedImplicationalDependency],
) -> Json:
    """Encode a TD or EID."""
    return {
        "kind": "td" if isinstance(dependency, TemplateDependency) else "eid",
        "schema": schema_to_json(dependency.schema),
        "antecedents": [_atom_to_json(atom) for atom in dependency.antecedents],
        "conclusions": [_atom_to_json(atom) for atom in dependency.conclusions],
        "name": dependency.name,
    }


def dependency_from_json(
    payload: Json,
) -> Union[TemplateDependency, EmbeddedImplicationalDependency]:
    """Decode a TD or EID."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise CodecError("dependency payload needs a 'kind'")
    schema = schema_from_json(payload["schema"])
    antecedents = [_atom_from_json(atom) for atom in payload["antecedents"]]
    conclusions = [_atom_from_json(atom) for atom in payload["conclusions"]]
    name = payload.get("name")
    if payload["kind"] == "td":
        if len(conclusions) != 1:
            raise CodecError("a TD payload must have exactly one conclusion atom")
        return TemplateDependency(schema, antecedents, conclusions[0], name=name)
    if payload["kind"] == "eid":
        return EmbeddedImplicationalDependency(
            schema, antecedents, conclusions, name=name
        )
    raise CodecError(f"unknown dependency kind {payload['kind']!r}")


# ---------------------------------------------------------------------------
# Rows and conjunctive queries (the maintained-model wire format)
# ---------------------------------------------------------------------------

def rows_to_json(rows) -> Json:
    """Encode a collection of rows (sorted for a canonical payload)."""
    return [
        [value_to_json(value) for value in row]
        for row in sorted(rows, key=repr)
    ]


def rows_from_json(payload: Json) -> list[tuple]:
    """Decode a list of rows (arity is checked downstream, on insert)."""
    if not isinstance(payload, list):
        raise CodecError("rows payload must be a list of rows")
    return [
        tuple(value_from_json(value) for value in row) for row in payload
    ]


def cq_to_json(query: ConjunctiveQuery) -> Json:
    """Encode a conjunctive query (schema, head variables, body atoms)."""
    return {
        "schema": schema_to_json(query.schema),
        "head": [variable.name for variable in query.head],
        "body": [_atom_to_json(atom) for atom in query.body],
        "name": query.name,
    }


def cq_from_json(payload: Json) -> ConjunctiveQuery:
    """Decode a conjunctive query (well-formedness re-checked)."""
    if not isinstance(payload, dict) or "body" not in payload:
        raise CodecError("query payload needs 'schema', 'head' and 'body'")
    schema = schema_from_json(payload.get("schema", []))
    head = tuple(Variable(name) for name in payload.get("head", []))
    body = [_atom_from_json(atom) for atom in payload["body"]]
    try:
        return ConjunctiveQuery(schema, head, body, name=payload.get("name"))
    except ReproError as error:
        raise CodecError(f"bad query payload: {error}") from error


# ---------------------------------------------------------------------------
# Presentations and finite semigroups
# ---------------------------------------------------------------------------

def presentation_to_json(presentation: Presentation) -> Json:
    """Encode a presentation."""
    return {
        "alphabet": list(presentation.alphabet),
        "equations": [
            {"lhs": list(equation.lhs), "rhs": list(equation.rhs)}
            for equation in presentation.equations
        ],
        "zero": presentation.zero,
        "a0": presentation.a0,
    }


def presentation_from_json(payload: Json) -> Presentation:
    """Decode a presentation."""
    if not isinstance(payload, dict) or "alphabet" not in payload:
        raise CodecError("presentation payload needs an 'alphabet'")
    equations = [
        Equation(tuple(entry["lhs"]), tuple(entry["rhs"]))
        for entry in payload.get("equations", [])
    ]
    return Presentation(
        payload["alphabet"],
        equations,
        zero=payload.get("zero", "0"),
        a0=payload.get("a0", "A0"),
    )


def semigroup_to_json(semigroup: FiniteSemigroup) -> Json:
    """Encode a finite semigroup (Cayley table + names)."""
    return {
        "table": semigroup.table.tolist(),
        "names": list(semigroup.names),
    }


def semigroup_from_json(payload: Json) -> FiniteSemigroup:
    """Decode a finite semigroup (associativity re-checked)."""
    if not isinstance(payload, dict) or "table" not in payload:
        raise CodecError("semigroup payload needs a 'table'")
    return FiniteSemigroup(payload["table"], payload.get("names"))


# ---------------------------------------------------------------------------
# Chase traces (certificates)
# ---------------------------------------------------------------------------

def trace_to_json(steps: list[ChaseStep]) -> Json:
    """Encode a chase trace against a shared dependency registry.

    Dependencies are deduplicated into a registry; steps refer to them by
    index, so large traces stay compact.
    """
    registry: list = []
    index_of: dict = {}
    encoded_steps = []
    for step in steps:
        key = step.dependency
        if key not in index_of:
            index_of[key] = len(registry)
            registry.append(dependency_to_json(key))
        encoded_steps.append(
            {
                "dependency": index_of[key],
                "bindings": [
                    [name, value_to_json(value)] for name, value in step.bindings
                ],
                "added_rows": [
                    [value_to_json(value) for value in row]
                    for row in step.added_rows
                ],
            }
        )
    return {"dependencies": registry, "steps": encoded_steps}


def trace_from_json(payload: Json) -> list[ChaseStep]:
    """Decode a chase trace."""
    if not isinstance(payload, dict) or "steps" not in payload:
        raise CodecError("trace payload needs 'dependencies' and 'steps'")
    registry = [dependency_from_json(entry) for entry in payload["dependencies"]]
    steps = []
    for entry in payload["steps"]:
        dependency = registry[entry["dependency"]]
        bindings = tuple(
            (name, value_from_json(value)) for name, value in entry["bindings"]
        )
        added_rows = tuple(
            tuple(value_from_json(value) for value in row)
            for row in entry["added_rows"]
        )
        steps.append(
            ChaseStep(dependency=dependency, bindings=bindings, added_rows=added_rows)
        )
    return steps


# ---------------------------------------------------------------------------
# Budgets, chase results and inference outcomes
# ---------------------------------------------------------------------------

def budget_to_json(budget: Budget) -> Json:
    """Encode a budget (``None`` axes mean unlimited)."""
    return {
        "max_steps": budget.max_steps,
        "max_rows": budget.max_rows,
        "max_seconds": budget.max_seconds,
    }


def budget_from_json(payload: Json) -> Budget:
    """Decode a budget."""
    if not isinstance(payload, dict):
        raise CodecError(f"bad budget payload {payload!r}")
    return Budget(
        max_steps=payload.get("max_steps"),
        max_rows=payload.get("max_rows"),
        max_seconds=payload.get("max_seconds"),
    )


def stats_to_json(stats: ChaseStats) -> Json:
    """Encode run statistics, freezing the elapsed wall-clock time."""
    return {
        "budget": budget_to_json(stats.budget),
        "steps": stats.steps,
        "rows_added": stats.rows_added,
        "elapsed_seconds": stats.elapsed_seconds,
    }


def stats_from_json(payload: Json) -> ChaseStats:
    """Decode run statistics (the clock is pinned to the recorded elapsed)."""
    if not isinstance(payload, dict) or "budget" not in payload:
        raise CodecError(f"bad stats payload {payload!r}")
    return ChaseStats(
        budget=budget_from_json(payload["budget"]),
        steps=int(payload.get("steps", 0)),
        rows_added=int(payload.get("rows_added", 0)),
        frozen_elapsed=float(payload.get("elapsed_seconds", 0.0)),
    )


def chase_result_to_json(result: ChaseResult) -> Json:
    """Encode a full chase result (status, instance, trace, stats)."""
    payload: dict = {
        "status": result.status.value,
        "instance": instance_to_json(result.instance),
        "trace": trace_to_json(result.steps),
    }
    if result.stats is not None:
        payload["stats"] = stats_to_json(result.stats)
    return payload


def chase_result_from_json(payload: Json) -> ChaseResult:
    """Decode a chase result."""
    if (
        not isinstance(payload, dict)
        or "status" not in payload
        or "instance" not in payload
    ):
        raise CodecError("chase result payload needs 'status' and 'instance'")
    stats = payload.get("stats")
    return ChaseResult(
        status=ChaseStatus(payload["status"]),
        instance=instance_from_json(payload["instance"]),
        steps=trace_from_json(payload.get("trace", {"dependencies": [], "steps": []})),
        stats=stats_from_json(stats) if stats is not None else None,
    )


def outcome_to_json(outcome: InferenceOutcome) -> Json:
    """Encode one ``D ⊨ d`` outcome with all its certificates.

    The payload is self-contained: a PROVED trace can be replayed (the
    chase start is the freezing of the target, reconstructable from the
    encoded target and frozen assignment) and a DISPROVED counterexample
    re-checked, in a fresh process that never saw the original run.
    """
    payload: dict = {
        "status": outcome.status.value,
        "target": dependency_to_json(outcome.target),
    }
    if outcome.chase_result is not None:
        payload["chase_result"] = chase_result_to_json(outcome.chase_result)
    if outcome.counterexample is not None:
        if (
            outcome.chase_result is not None
            and outcome.counterexample == outcome.chase_result.instance
        ):
            # The usual DISPROVED case: the counterexample *is* the chased
            # instance — mark the sharing instead of serializing it twice.
            payload["counterexample_shared"] = True
        else:
            payload["counterexample"] = instance_to_json(outcome.counterexample)
    if outcome.frozen_assignment is not None:
        payload["frozen"] = [
            [variable.name, value_to_json(value)]
            for variable, value in sorted(
                outcome.frozen_assignment.items(), key=lambda item: item[0].name
            )
        ]
    if outcome.error is not None:
        payload["error"] = outcome.error
    if outcome.analysis is not None:
        payload["analysis"] = outcome.analysis
    if outcome.join_backend is not None:
        payload["join_backend"] = outcome.join_backend
    return payload


def slim_unknown_outcome(payload: Json) -> Json:
    """Drop the budget-exhausted chase result from an UNKNOWN payload.

    An UNKNOWN carries no certificate — only its status matters for
    later use — so the (potentially huge) exhausted chase result is
    debris. Every layer that ships or stores UNKNOWN payloads (the
    result cache, the worker-pool wire, the HTTP server) applies this
    one policy; decisive payloads pass through untouched because their
    traces/counterexamples replay.
    """
    if (
        isinstance(payload, dict)
        and payload.get("status") == InferenceStatus.UNKNOWN.value
    ):
        payload.pop("chase_result", None)
    return payload


def outcome_from_json(payload: Json) -> InferenceOutcome:
    """Decode one inference outcome."""
    if (
        not isinstance(payload, dict)
        or "status" not in payload
        or "target" not in payload
    ):
        raise CodecError("outcome payload needs 'status' and 'target'")
    chase_payload = payload.get("chase_result")
    chase_result = (
        chase_result_from_json(chase_payload) if chase_payload is not None else None
    )
    counterexample_payload = payload.get("counterexample")
    if payload.get("counterexample_shared") and chase_result is not None:
        counterexample = chase_result.instance
    elif counterexample_payload is not None:
        counterexample = instance_from_json(counterexample_payload)
    else:
        counterexample = None
    frozen = payload.get("frozen")
    return InferenceOutcome(
        status=InferenceStatus(payload["status"]),
        target=dependency_from_json(payload["target"]),
        chase_result=chase_result,
        counterexample=counterexample,
        frozen_assignment=(
            {Variable(name): value_from_json(value) for name, value in frozen}
            if frozen is not None
            else None
        ),
        error=payload.get("error"),
        analysis=payload.get("analysis"),
        join_backend=payload.get("join_backend"),
    )


# ---------------------------------------------------------------------------
# Chase checkpoints (suspended budget-exhausted runs)
# ---------------------------------------------------------------------------

def checkpoint_to_json(checkpoint: ChaseCheckpoint) -> Json:
    """Encode a suspended chase for the result cache.

    Int rows, the frontier and the memo keys are stored verbatim: the
    intern table assigns ids in first-seen order and never reclaims
    them, so re-interning the encoded ``values`` list in order on
    decode reproduces identical ids.
    """
    payload: dict = {
        "version": CHECKPOINT_VERSION,
        "dependencies": [
            dependency_to_json(dependency)
            for dependency in checkpoint.dependencies
        ],
        "values": [value_to_json(value) for value in checkpoint.values],
        "rows": [list(irow) for irow in checkpoint.rows],
        "frontier": [list(irow) for irow in checkpoint.frontier],
        "evaluated": [
            [list(key) for key in keys] for keys in checkpoint.evaluated
        ],
        "next_null": checkpoint.next_null,
        "steps": checkpoint.steps,
        "rows_added": checkpoint.rows_added,
        "elapsed": checkpoint.elapsed,
    }
    if checkpoint.target is not None:
        payload["target"] = dependency_to_json(checkpoint.target)
    if checkpoint.trace is not None:
        payload["trace"] = trace_to_json(list(checkpoint.trace))
    return payload


#: Env override for the checkpoint serialization row cap.
CHECKPOINT_MAX_ROWS_ENV = "REPRO_CHECKPOINT_MAX_ROWS"
#: Default cap: checkpoints of instances beyond this many rows are not
#: serialized (a resume saves recomputation only while the state is
#: cheaper to ship than to rebuild).
DEFAULT_CHECKPOINT_MAX_ROWS = 10_000


def encode_checkpoint(outcome: InferenceOutcome) -> Union[Json, None]:
    """The encoded checkpoint riding an UNKNOWN outcome, or None.

    None when the outcome carries no suspended chase (decided, legacy
    kernel, capture off) or when the captured instance exceeds the
    ``REPRO_CHECKPOINT_MAX_ROWS`` cap — an oversized checkpoint costs
    more to store and ship than the resume would save.
    """
    result = outcome.chase_result
    checkpoint = getattr(result, "checkpoint", None)
    if checkpoint is None:
        return None
    cap = DEFAULT_CHECKPOINT_MAX_ROWS
    raw = os.environ.get(CHECKPOINT_MAX_ROWS_ENV)
    if raw:
        try:
            cap = int(raw)
        except ValueError:
            pass
    if checkpoint.row_count > cap:
        return None
    return checkpoint_to_json(checkpoint)


def checkpoint_from_json(payload: Json) -> ChaseCheckpoint:
    """Decode a suspended chase; :class:`CodecError` on junk."""
    if not isinstance(payload, dict) or "rows" not in payload:
        raise CodecError("checkpoint payload needs 'rows'")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CodecError(
            f"unsupported checkpoint version {payload.get('version')!r}"
        )
    try:
        target_payload = payload.get("target")
        trace_payload = payload.get("trace")
        return ChaseCheckpoint(
            dependencies=tuple(
                dependency_from_json(entry)
                for entry in payload.get("dependencies", [])
            ),
            target=(
                dependency_from_json(target_payload)
                if target_payload is not None
                else None
            ),
            values=tuple(
                value_from_json(entry) for entry in payload.get("values", [])
            ),
            rows=tuple(tuple(map(int, irow)) for irow in payload["rows"]),
            frontier=tuple(
                tuple(map(int, irow)) for irow in payload.get("frontier", [])
            ),
            evaluated=tuple(
                tuple(tuple(map(int, key)) for key in keys)
                for keys in payload.get("evaluated", [])
            ),
            next_null=int(payload.get("next_null", 0)),
            steps=int(payload.get("steps", 0)),
            rows_added=int(payload.get("rows_added", 0)),
            elapsed=float(payload.get("elapsed", 0.0)),
            trace=(
                tuple(trace_from_json(trace_payload))
                if trace_payload is not None
                else None
            ),
        )
    except (TypeError, ValueError, KeyError) as error:
        raise CodecError(f"bad checkpoint payload: {error}") from error


# ---------------------------------------------------------------------------
# Metrics snapshots
# ---------------------------------------------------------------------------


def metrics_snapshot_to_json(snapshot: MetricsSnapshot) -> Json:
    """Encode a frozen metrics-registry snapshot.

    The shape is :meth:`~repro.obs.metrics.MetricsSnapshot.to_json`'s;
    this wrapper exists so service payloads carrying metrics go through
    the same codec (and the same :class:`CodecError` discipline) as
    every other wire object.
    """
    return snapshot.to_json()


def metrics_snapshot_from_json(payload: Json) -> MetricsSnapshot:
    """Decode a metrics snapshot; :class:`CodecError` on junk."""
    try:
        return MetricsSnapshot.from_json(payload)
    except (ValueError, TypeError, KeyError) as error:
        raise CodecError(f"bad metrics snapshot payload: {error}") from error

"""JSON round-tripping for the library's core objects.

Everything the solvers produce — including the *certificates* (chase
traces and counterexample databases) — can be serialized, so a sceptical
reader can store a proof and re-verify it in a fresh process. The format
is plain ``json``-module-compatible dicts; every entry point has a
``*_to_json`` / ``*_from_json`` pair, and round-tripping is exact
(property-tested).

Value encoding: constants may carry structured names (tuples, nested
values — the direct product and the reduction use them), so names are
encoded recursively with one-letter tags: ``{"s": ...}`` scalar,
``{"t": [...]}`` tuple, ``{"v": ...}`` nested value.
"""

from __future__ import annotations

from typing import Union

from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.template import TemplateDependency, Variable
from repro.errors import ReproError
from repro.chase.result import ChaseStep
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const, LabeledNull, Value
from repro.semigroups.finite import FiniteSemigroup
from repro.semigroups.presentation import Equation, Presentation

Json = Union[dict, list, str, int, float, bool, None]


class CodecError(ReproError):
    """Malformed JSON payload for one of the codecs."""


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

def _name_to_json(name: object) -> Json:
    if isinstance(name, (str, int, float, bool)) or name is None:
        return {"s": name}
    if isinstance(name, tuple):
        return {"t": [_name_to_json(part) for part in name]}
    if isinstance(name, (Const, LabeledNull)):
        return {"v": value_to_json(name)}
    raise CodecError(f"cannot encode constant name {name!r}")


def _name_from_json(payload: Json) -> object:
    if not isinstance(payload, dict) or len(payload) != 1:
        raise CodecError(f"bad name payload {payload!r}")
    if "s" in payload:
        return payload["s"]
    if "t" in payload:
        return tuple(_name_from_json(part) for part in payload["t"])
    if "v" in payload:
        return value_from_json(payload["v"])
    raise CodecError(f"bad name payload {payload!r}")


def value_to_json(value: Value) -> Json:
    """Encode a constant or labelled null."""
    if isinstance(value, Const):
        return {"const": _name_to_json(value.name)}
    if isinstance(value, LabeledNull):
        return {"null": value.label}
    raise CodecError(f"cannot encode value {value!r}")


def value_from_json(payload: Json) -> Value:
    """Decode a constant or labelled null."""
    if isinstance(payload, dict) and "const" in payload:
        return Const(_name_from_json(payload["const"]))
    if isinstance(payload, dict) and "null" in payload:
        return LabeledNull(int(payload["null"]))
    raise CodecError(f"bad value payload {payload!r}")


# ---------------------------------------------------------------------------
# Schemas and instances
# ---------------------------------------------------------------------------

def schema_to_json(schema: Schema) -> Json:
    """Encode a schema as its attribute list."""
    return list(schema.attributes)


def schema_from_json(payload: Json) -> Schema:
    """Decode a schema."""
    if not isinstance(payload, list):
        raise CodecError("schema payload must be a list of attribute names")
    return Schema(payload)


def instance_to_json(instance: Instance) -> Json:
    """Encode a database instance (schema + rows)."""
    return {
        "schema": schema_to_json(instance.schema),
        "rows": [
            [value_to_json(value) for value in row]
            for row in sorted(instance.rows, key=repr)
        ],
    }


def instance_from_json(payload: Json) -> Instance:
    """Decode a database instance."""
    if not isinstance(payload, dict) or "schema" not in payload:
        raise CodecError("instance payload needs 'schema' and 'rows'")
    schema = schema_from_json(payload["schema"])
    rows = [
        tuple(value_from_json(value) for value in row)
        for row in payload.get("rows", [])
    ]
    return Instance(schema, rows)


# ---------------------------------------------------------------------------
# Dependencies
# ---------------------------------------------------------------------------

def _atom_to_json(atom) -> list[str]:
    return [variable.name for variable in atom]


def _atom_from_json(payload) -> tuple[Variable, ...]:
    return tuple(Variable(name) for name in payload)


def dependency_to_json(
    dependency: Union[TemplateDependency, EmbeddedImplicationalDependency],
) -> Json:
    """Encode a TD or EID."""
    return {
        "kind": "td" if isinstance(dependency, TemplateDependency) else "eid",
        "schema": schema_to_json(dependency.schema),
        "antecedents": [_atom_to_json(atom) for atom in dependency.antecedents],
        "conclusions": [_atom_to_json(atom) for atom in dependency.conclusions],
        "name": dependency.name,
    }


def dependency_from_json(
    payload: Json,
) -> Union[TemplateDependency, EmbeddedImplicationalDependency]:
    """Decode a TD or EID."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise CodecError("dependency payload needs a 'kind'")
    schema = schema_from_json(payload["schema"])
    antecedents = [_atom_from_json(atom) for atom in payload["antecedents"]]
    conclusions = [_atom_from_json(atom) for atom in payload["conclusions"]]
    name = payload.get("name")
    if payload["kind"] == "td":
        if len(conclusions) != 1:
            raise CodecError("a TD payload must have exactly one conclusion atom")
        return TemplateDependency(schema, antecedents, conclusions[0], name=name)
    if payload["kind"] == "eid":
        return EmbeddedImplicationalDependency(
            schema, antecedents, conclusions, name=name
        )
    raise CodecError(f"unknown dependency kind {payload['kind']!r}")


# ---------------------------------------------------------------------------
# Presentations and finite semigroups
# ---------------------------------------------------------------------------

def presentation_to_json(presentation: Presentation) -> Json:
    """Encode a presentation."""
    return {
        "alphabet": list(presentation.alphabet),
        "equations": [
            {"lhs": list(equation.lhs), "rhs": list(equation.rhs)}
            for equation in presentation.equations
        ],
        "zero": presentation.zero,
        "a0": presentation.a0,
    }


def presentation_from_json(payload: Json) -> Presentation:
    """Decode a presentation."""
    if not isinstance(payload, dict) or "alphabet" not in payload:
        raise CodecError("presentation payload needs an 'alphabet'")
    equations = [
        Equation(tuple(entry["lhs"]), tuple(entry["rhs"]))
        for entry in payload.get("equations", [])
    ]
    return Presentation(
        payload["alphabet"],
        equations,
        zero=payload.get("zero", "0"),
        a0=payload.get("a0", "A0"),
    )


def semigroup_to_json(semigroup: FiniteSemigroup) -> Json:
    """Encode a finite semigroup (Cayley table + names)."""
    return {
        "table": semigroup.table.tolist(),
        "names": list(semigroup.names),
    }


def semigroup_from_json(payload: Json) -> FiniteSemigroup:
    """Decode a finite semigroup (associativity re-checked)."""
    if not isinstance(payload, dict) or "table" not in payload:
        raise CodecError("semigroup payload needs a 'table'")
    return FiniteSemigroup(payload["table"], payload.get("names"))


# ---------------------------------------------------------------------------
# Chase traces (certificates)
# ---------------------------------------------------------------------------

def trace_to_json(steps: list[ChaseStep]) -> Json:
    """Encode a chase trace against a shared dependency registry.

    Dependencies are deduplicated into a registry; steps refer to them by
    index, so large traces stay compact.
    """
    registry: list = []
    index_of: dict = {}
    encoded_steps = []
    for step in steps:
        key = step.dependency
        if key not in index_of:
            index_of[key] = len(registry)
            registry.append(dependency_to_json(key))
        encoded_steps.append(
            {
                "dependency": index_of[key],
                "bindings": [
                    [name, value_to_json(value)] for name, value in step.bindings
                ],
                "added_rows": [
                    [value_to_json(value) for value in row]
                    for row in step.added_rows
                ],
            }
        )
    return {"dependencies": registry, "steps": encoded_steps}


def trace_from_json(payload: Json) -> list[ChaseStep]:
    """Decode a chase trace."""
    if not isinstance(payload, dict) or "steps" not in payload:
        raise CodecError("trace payload needs 'dependencies' and 'steps'")
    registry = [dependency_from_json(entry) for entry in payload["dependencies"]]
    steps = []
    for entry in payload["steps"]:
        dependency = registry[entry["dependency"]]
        bindings = tuple(
            (name, value_from_json(value)) for name, value in entry["bindings"]
        )
        added_rows = tuple(
            tuple(value_from_json(value) for value in row)
            for row in entry["added_rows"]
        )
        steps.append(
            ChaseStep(dependency=dependency, bindings=bindings, added_rows=added_rows)
        )
    return steps

"""Small text file formats for the command-line interface.

**Dependency files** — one dependency per line, the parser syntax of
:mod:`repro.dependencies.parser`; blank lines and ``#`` comments ignored:

.. code-block:: text

    # garment constraints
    R(a, b, c) & R(a, b', c') -> R(a*, b, c')

**Presentation files** — the Main Lemma's ``φ`` as text:

.. code-block:: text

    letters: A0 0
    zero: 0
    a0: A0
    zero-equations: yes
    A0 A0 = A0
    A0 A0 = 0

``zero-equations: yes`` (the default) adds the ``A·0 = 0 / 0·A = 0`` laws
the Main Lemma requires; equation lines are space-separated letters with
one ``=``.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.parser import parse_dependency
from repro.dependencies.template import TemplateDependency
from repro.errors import ParseError
from repro.relational.schema import Schema
from repro.semigroups.presentation import Equation, Presentation

Dependency = Union[TemplateDependency, EmbeddedImplicationalDependency]


def parse_dependency_file(
    text: str, schema: Optional[Schema] = None
) -> list[Dependency]:
    """Parse a one-dependency-per-line file body."""
    dependencies: list[Dependency] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            dependencies.append(parse_dependency(line, schema))
        except ParseError as error:
            raise ParseError(f"line {line_number}: {error}") from error
    if dependencies and schema is None:
        arities = {dependency.schema.arity for dependency in dependencies}
        if len(arities) != 1:
            raise ParseError(
                f"dependencies have inconsistent arities {sorted(arities)}"
            )
        shared = dependencies[0].schema
        rebuilt: list[Dependency] = []
        for dependency in dependencies:
            if isinstance(dependency, TemplateDependency):
                rebuilt.append(
                    TemplateDependency(
                        shared,
                        dependency.antecedents,
                        dependency.conclusion,
                        name=dependency.name,
                    )
                )
            else:
                rebuilt.append(
                    EmbeddedImplicationalDependency(
                        shared,
                        dependency.antecedents,
                        dependency.conclusions,
                        name=dependency.name,
                    )
                )
        dependencies = rebuilt
    return dependencies


def parse_presentation_text(text: str) -> Presentation:
    """Parse a presentation file body."""
    letters: Optional[list[str]] = None
    zero = "0"
    a0 = "A0"
    add_zero_equations = True
    equations: list[Equation] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith("letters:"):
            letters = line.split(":", 1)[1].split()
            continue
        if lowered.startswith("zero:"):
            zero = line.split(":", 1)[1].strip()
            continue
        if lowered.startswith("a0:"):
            a0 = line.split(":", 1)[1].strip()
            continue
        if lowered.startswith("zero-equations:"):
            flag = line.split(":", 1)[1].strip().lower()
            add_zero_equations = flag in ("yes", "true", "on", "1")
            continue
        if "=" not in line:
            raise ParseError(f"line {line_number}: expected an equation with '='")
        left, __, right = line.partition("=")
        lhs = tuple(left.split())
        rhs = tuple(right.split())
        if not lhs or not rhs:
            raise ParseError(f"line {line_number}: empty equation side")
        equations.append(Equation(lhs, rhs))
    if letters is None:
        raise ParseError("presentation file needs a 'letters:' line")
    if add_zero_equations:
        return Presentation.with_zero_equations(
            letters, equations, zero=zero, a0=a0
        )
    return Presentation(letters, equations, zero=zero, a0=a0)


def render_presentation_text(presentation: Presentation) -> str:
    """Render a presentation back into the file format (zero laws inline)."""
    lines = [
        "letters: " + " ".join(presentation.alphabet),
        f"zero: {presentation.zero}",
        f"a0: {presentation.a0}",
        "zero-equations: no",  # every equation is written out explicitly
    ]
    for equation in presentation.equations:
        lines.append(" ".join(equation.lhs) + " = " + " ".join(equation.rhs))
    return "\n".join(lines) + "\n"

"""Serialization and file formats.

* :mod:`repro.io.json_codec` — JSON round-tripping for schemas, values,
  instances, dependencies, presentations, finite semigroups and chase
  traces (the certificates), so results and counterexamples can be
  stored, shipped and independently re-verified;
* :mod:`repro.io.textfmt` — the small text formats the CLI reads:
  one-dependency-per-line files and presentation files.
"""

from repro.io.json_codec import (
    budget_from_json,
    budget_to_json,
    chase_result_from_json,
    chase_result_to_json,
    dependency_from_json,
    dependency_to_json,
    instance_from_json,
    instance_to_json,
    outcome_from_json,
    outcome_to_json,
    presentation_from_json,
    presentation_to_json,
    semigroup_from_json,
    semigroup_to_json,
    trace_from_json,
    trace_to_json,
)
from repro.io.textfmt import (
    parse_dependency_file,
    parse_presentation_text,
    render_presentation_text,
)

__all__ = [
    "instance_to_json",
    "instance_from_json",
    "dependency_to_json",
    "dependency_from_json",
    "presentation_to_json",
    "presentation_from_json",
    "semigroup_to_json",
    "semigroup_from_json",
    "trace_to_json",
    "trace_from_json",
    "budget_to_json",
    "budget_from_json",
    "chase_result_to_json",
    "chase_result_from_json",
    "outcome_to_json",
    "outcome_from_json",
    "parse_dependency_file",
    "parse_presentation_text",
    "render_presentation_text",
]

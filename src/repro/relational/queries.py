"""Conjunctive queries over the single relation, and the homomorphism theorem.

Template dependencies and conjunctive-query (CQ) containment are two
faces of the same homomorphism machinery — Sadri & Ullman's and Fagin
et al.'s papers move between them constantly. This module provides the
query side:

* :class:`ConjunctiveQuery` — ``head(x̄) :- R(...), R(...), ...``;
* evaluation over instances (all answers, via homomorphism enumeration);
* **Chandra–Merlin containment**: ``Q₁ ⊆ Q₂`` iff ``Q₂`` maps
  homomorphically into ``Q₁``'s canonical (frozen) database with heads
  aligned — decidable, NP-complete, and exactly the technique the chase
  reuses for dependencies;
* **minimization**: the core of the body computed by iterated retraction,
  yielding the unique (up to isomorphism) minimal equivalent CQ.

The property tests check the semantic readings: containment implies
answer inclusion on random instances, and minimization preserves answers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.dependencies.template import Atom, Variable, is_variable
from repro.errors import DependencyError
from repro.relational.homomorphism import apply_assignment
from repro.relational.homplan import (
    find_homomorphism,
    find_retraction_assignment,
    iter_homomorphisms,
)
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const, Value


class ConjunctiveQuery:
    """A conjunctive query ``head(x̄) :- body`` over one relation.

    ``head`` is a tuple of variables (the projection); every head
    variable must occur in the body (safety). Body atoms are tuples of
    variables, one per column of the schema.
    """

    __slots__ = ("schema", "head", "body", "name")

    def __init__(
        self,
        schema: Schema,
        head: Sequence[Variable],
        body: Iterable[Sequence[Variable]],
        *,
        name: Optional[str] = None,
    ):
        self.schema = schema
        self.head: tuple[Variable, ...] = tuple(head)
        self.body: tuple[Atom, ...] = tuple(tuple(atom) for atom in body)
        self.name = name
        if not self.body:
            raise DependencyError("a conjunctive query needs at least one body atom")
        body_variables = {variable for atom in self.body for variable in atom}
        for atom in self.body:
            if len(atom) != schema.arity:
                raise DependencyError(
                    f"body atom of arity {len(atom)} does not fit schema "
                    f"arity {schema.arity}"
                )
            for term in atom:
                if not is_variable(term):
                    raise DependencyError("body atoms must contain variables only")
        unsafe = [variable for variable in self.head if variable not in body_variables]
        if unsafe:
            raise DependencyError(
                f"unsafe head variables {[v.name for v in unsafe]} "
                "(must occur in the body)"
            )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def answers(
        self, instance: Instance, *, engine: Optional[str] = None
    ) -> set[tuple[Value, ...]]:
        """All head tuples produced by body homomorphisms into ``instance``.

        ``engine`` selects the homomorphism engine (compiled by default;
        see :mod:`repro.relational.homplan`), as on every query method
        below — the differential suite pins each side.
        """
        results: set[tuple[Value, ...]] = set()
        for assignment in iter_homomorphisms(
            self.body, instance, flexible=is_variable, engine=engine
        ):
            results.add(tuple(assignment[variable] for variable in self.head))
        return results

    def is_boolean(self) -> bool:
        """True for a boolean (empty-head) query."""
        return not self.head

    def holds_in(
        self, instance: Instance, *, engine: Optional[str] = None
    ) -> bool:
        """Boolean evaluation: does the body match at all?"""
        return (
            find_homomorphism(
                self.body, instance, flexible=is_variable, engine=engine
            )
            is not None
        )

    # ------------------------------------------------------------------
    # The homomorphism theorem
    # ------------------------------------------------------------------

    def canonical_instance(self) -> tuple[Instance, dict[Variable, Value]]:
        """The frozen body, with the variable-to-constant assignment."""
        assignment: dict[Variable, Value] = {}
        variables = {variable for atom in self.body for variable in atom}
        for variable in sorted(variables, key=lambda v: v.name):
            assignment[variable] = Const(("cq", variable.name))
        instance = Instance(
            self.schema,
            (
                tuple(assignment[variable] for variable in atom)
                for atom in self.body
            ),
        )
        return instance, assignment

    def is_contained_in(
        self, other: "ConjunctiveQuery", *, engine: Optional[str] = None
    ) -> bool:
        """Chandra–Merlin: ``self ⊆ other`` iff ``other`` folds onto
        ``self``'s canonical database with heads aligned."""
        if self.schema != other.schema or len(self.head) != len(other.head):
            return False
        canonical, assignment = self.canonical_instance()
        # Align heads, checking consistency: if `other` repeats a head
        # variable where `self` has two different ones, no alignment exists.
        partial: dict[Variable, Value] = {}
        for other_variable, self_variable in zip(other.head, self.head):
            value = assignment[self_variable]
            if partial.setdefault(other_variable, value) != value:
                return False
        witness = find_homomorphism(
            other.body, canonical, partial=partial, flexible=is_variable,
            engine=engine,
        )
        return witness is not None

    def is_equivalent_to(
        self, other: "ConjunctiveQuery", *, engine: Optional[str] = None
    ) -> bool:
        """Mutual containment."""
        return self.is_contained_in(other, engine=engine) and other.is_contained_in(
            self, engine=engine
        )

    # ------------------------------------------------------------------
    # Minimization (the CQ core)
    # ------------------------------------------------------------------

    def minimized(self, *, engine: Optional[str] = None) -> "ConjunctiveQuery":
        """The minimal equivalent query: fold redundant body atoms away.

        Iterated proper retraction of the body fixing the head variables —
        the query analogue of :func:`repro.relational.core.core_of`, run
        through the same engine (the compiled retraction walk by
        default).
        """
        body = list(self.body)
        head_identity = {variable: variable for variable in self.head}
        while True:
            body_instance = Instance(self.schema, (tuple(atom) for atom in body))
            assignment = find_retraction_assignment(
                body,
                body_instance,
                partial=head_identity,
                flexible=is_variable,
                engine=engine,
            )
            if assignment is None:
                break
            image = {
                apply_assignment(tuple(atom), assignment, flexible=is_variable)
                for atom in body
            }
            body = [tuple(atom) for atom in sorted(image, key=repr)]
        return ConjunctiveQuery(self.schema, self.head, body, name=self.name)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.head == other.head
            and set(self.body) == set(other.body)
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.head, frozenset(self.body)))

    def __repr__(self) -> str:
        return f"<ConjunctiveQuery head={len(self.head)} body={len(self.body)}>"

    def __str__(self) -> str:
        head = ", ".join(variable.name for variable in self.head)
        body = ", ".join(
            "R(" + ", ".join(variable.name for variable in atom) + ")"
            for atom in self.body
        )
        return f"q({head}) :- {body}"

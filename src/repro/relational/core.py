"""Cores of instances (minimal retracts).

The *core* of an instance is a smallest sub-instance it retracts onto: a
homomorphic image, fixing constants, that cannot be shrunk further. Chase
results are only unique up to homomorphic equivalence, and cores are the
canonical representatives — two terminating chase runs of the same problem
have isomorphic cores. The test suite uses cores to compare chase variants,
and the benchmarks use them to measure redundancy introduced by the
oblivious chase.

Core computation is NP-hard in general; the implementation here is the
standard iterated-retraction algorithm. Retraction search runs on the
compiled homomorphism engine by default
(:func:`repro.relational.homplan.find_retraction_assignment` — the
image-shrinks early-exit walk over the shared join kernel); pass
``engine="legacy"`` (or set ``REPRO_HOM_ENGINE=legacy``) for the generic
backtracking search, the reference semantics the differential suite
holds the engine to.
"""

from __future__ import annotations

from typing import Optional

from repro.relational.homomorphism import Assignment, apply_assignment
from repro.relational.instance import Instance
from repro.relational.values import is_null


def find_retraction(
    instance: Instance, *, engine: Optional[str] = None
) -> Optional[Assignment]:
    """Find a proper retraction of ``instance``, if one exists.

    A proper retraction is an endomorphism (constants fixed, nulls mapped
    anywhere) whose image omits at least one row. Returns the assignment or
    None when the instance is already a core.
    """
    from repro.relational.homplan import find_retraction_assignment

    return find_retraction_assignment(
        list(instance.rows), instance, engine=engine
    )


def core_of(instance: Instance, *, engine: Optional[str] = None) -> Instance:
    """Compute the core of ``instance`` by iterated proper retraction."""
    current = instance.copy()
    while True:
        retraction = find_retraction(current, engine=engine)
        if retraction is None:
            return current
        current = Instance(
            current.schema,
            (apply_assignment(row, retraction) for row in current),
        )


def is_core(instance: Instance, *, engine: Optional[str] = None) -> bool:
    """Return True when ``instance`` admits no proper retraction."""
    return find_retraction(instance, engine=engine) is None


def homomorphically_equivalent(
    left: Instance, right: Instance, *, engine: Optional[str] = None
) -> bool:
    """True when homomorphisms exist in both directions (constants fixed).

    Nulls are the flexible terms; constants must be preserved. Two
    terminating chases of the same input are homomorphically equivalent,
    which is the correctness notion for universal models.
    """
    from repro.relational.homplan import find_homomorphism

    if left.schema != right.schema:
        return False
    forward = find_homomorphism(left.rows, right, engine=engine)
    if forward is None:
        return False
    backward = find_homomorphism(right.rows, left, engine=engine)
    return backward is not None


def null_count(instance: Instance) -> int:
    """Number of distinct labelled nulls in the instance."""
    return sum(1 for value in instance.active_domain() if is_null(value))

"""Cores of instances (minimal retracts).

The *core* of an instance is a smallest sub-instance it retracts onto: a
homomorphic image, fixing constants, that cannot be shrunk further. Chase
results are only unique up to homomorphic equivalence, and cores are the
canonical representatives — two terminating chase runs of the same problem
have isomorphic cores. The test suite uses cores to compare chase variants,
and the benchmarks use them to measure redundancy introduced by the
oblivious chase.

Core computation is NP-hard in general; the implementation here is the
standard iterated-retraction algorithm and is intended for the small-to-
medium instances that arise in this library's experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.relational.homomorphism import (
    Assignment,
    apply_assignment,
    iter_homomorphisms,
)
from repro.relational.instance import Instance
from repro.relational.values import is_null


def find_retraction(instance: Instance) -> Optional[Assignment]:
    """Find a proper retraction of ``instance``, if one exists.

    A proper retraction is an endomorphism (constants fixed, nulls mapped
    anywhere) whose image omits at least one row. Returns the assignment or
    None when the instance is already a core.
    """
    rows = list(instance.rows)
    for candidate in iter_homomorphisms(rows, instance):
        image = {apply_assignment(row, candidate) for row in rows}
        if len(image) < len(rows):
            return dict(candidate)
    return None


def core_of(instance: Instance) -> Instance:
    """Compute the core of ``instance`` by iterated proper retraction."""
    current = instance.copy()
    while True:
        retraction = find_retraction(current)
        if retraction is None:
            return current
        current = Instance(
            current.schema,
            (apply_assignment(row, retraction) for row in current),
        )


def is_core(instance: Instance) -> bool:
    """Return True when ``instance`` admits no proper retraction."""
    return find_retraction(instance) is None


def homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """True when homomorphisms exist in both directions (constants fixed).

    Nulls are the flexible terms; constants must be preserved. Two
    terminating chases of the same input are homomorphically equivalent,
    which is the correctness notion for universal models.
    """
    from repro.relational.homomorphism import find_homomorphism

    if left.schema != right.schema:
        return False
    forward = find_homomorphism(left.rows, right)
    if forward is None:
        return False
    backward = find_homomorphism(right.rows, left)
    return backward is not None


def null_count(instance: Instance) -> int:
    """Number of distinct labelled nulls in the instance."""
    return sum(1 for value in instance.active_domain() if is_null(value))

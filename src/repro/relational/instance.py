"""Database instances: finite sets of typed tuples over one relation.

An :class:`Instance` is the paper's "database": a finite relational structure
consisting of a single relation ``R`` over a fixed schema. Tuples are plain
Python tuples of :class:`~repro.relational.values.Value`. The instance keeps
a per-(column, value) inverted index so that trigger enumeration during the
chase can seed backtracking from the rarest cell instead of scanning.

Instances are mutable (the chase extends them in place) but expose
value-semantics helpers (:meth:`Instance.copy`, equality on row sets) for
tests and model search.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import TypingError
from repro.relational.schema import Schema
from repro.relational.values import Value

#: A database row: one value per column.
Row = tuple[Value, ...]


class Instance:
    """A finite set of rows over a :class:`~repro.relational.schema.Schema`.

    >>> from repro.relational import Schema, Const
    >>> garments = Instance(Schema(["SUPPLIER", "STYLE", "SIZE"]))
    >>> garments.add((Const("BVD"), Const("Brief"), Const(36)))
    True
    >>> len(garments)
    1
    """

    __slots__ = ("schema", "_rows", "_index")

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()):
        self.schema = schema
        self._rows: set[Row] = set()
        # (column, value) -> set of rows having that value in that column.
        self._index: dict[tuple[int, Value], set[Row]] = {}
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, row: Row) -> bool:
        """Insert ``row``; return True when it was not already present."""
        self.schema.check_arity(row)
        if row in self._rows:
            return False
        self._rows.add(row)
        for column, value in enumerate(row):
            self._index.setdefault((column, value), set()).add(row)
        return True

    def add_all(self, rows: Iterable[Row]) -> int:
        """Insert every row; return the number of genuinely new rows."""
        return sum(1 for row in rows if self.add(row))

    def discard(self, row: Row) -> bool:
        """Remove ``row`` if present; return True when it was removed."""
        if row not in self._rows:
            return False
        self._rows.discard(row)
        for column, value in enumerate(row):
            bucket = self._index.get((column, value))
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del self._index[(column, value)]
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def rows(self) -> frozenset[Row]:
        """A frozen snapshot of the current row set."""
        return frozenset(self._rows)

    def rows_with(self, column: int, value: Value) -> frozenset[Row]:
        """All rows whose ``column`` component equals ``value``."""
        return frozenset(self._index.get((column, value), ()))

    def matching_rows(self, pattern: Mapping[int, Value]) -> Iterator[Row]:
        """Yield rows agreeing with ``pattern`` (a column -> value map).

        The scan is seeded from the most selective constrained column; with
        an empty pattern every row matches.
        """
        if not pattern:
            yield from self._rows
            return
        candidates: set[Row] | None = None
        best_size = None
        for column, value in pattern.items():
            bucket = self._index.get((column, value))
            if not bucket:
                return
            if best_size is None or len(bucket) < best_size:
                candidates = bucket
                best_size = len(bucket)
        assert candidates is not None
        for row in tuple(candidates):
            if all(row[column] == value for column, value in pattern.items()):
                yield row

    def column_values(self, column: int) -> set[Value]:
        """The set of values occurring in ``column``."""
        return {row[column] for row in self._rows}

    def active_domain(self) -> set[Value]:
        """All values occurring anywhere in the instance."""
        domain: set[Value] = set()
        for row in self._rows:
            domain.update(row)
        return domain

    def validate(self) -> None:
        """Enforce the typing restriction (disjoint attribute domains).

        Raises :class:`~repro.errors.TypingError` if some value occurs in
        two different columns, which the paper's typed setting forbids.
        """
        seen: dict[Value, int] = {}
        for row in self._rows:
            for column, value in enumerate(row):
                previous = seen.setdefault(value, column)
                if previous != column:
                    raise TypingError(
                        f"value {value!r} occurs in columns "
                        f"{self.schema.attribute(previous)!r} and "
                        f"{self.schema.attribute(column)!r}"
                    )

    def is_typed(self) -> bool:
        """Return True when the typing restriction holds."""
        try:
            self.validate()
        except TypingError:
            return False
        return True

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------

    def copy(self) -> "Instance":
        """An independent copy sharing the schema."""
        return Instance(self.schema, self._rows)

    def map_values(self, mapping: Callable[[Value], Value]) -> "Instance":
        """Apply ``mapping`` to every component, returning a new instance."""
        return Instance(
            self.schema,
            (tuple(mapping(value) for value in row) for row in self._rows),
        )

    def union(self, other: "Instance") -> "Instance":
        """Union of two instances over the same schema."""
        if other.schema != self.schema:
            raise TypingError("cannot union instances over different schemas")
        merged = self.copy()
        merged.add_all(other.rows)
        return merged

    def induced(self, keep: Callable[[Row], bool]) -> "Instance":
        """The sub-instance of rows satisfying ``keep``."""
        return Instance(self.schema, (row for row in self._rows if keep(row)))

    # ------------------------------------------------------------------
    # Comparison and display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.schema == other.schema and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("Instance is mutable and unhashable; use .rows")

    def __repr__(self) -> str:
        return f"<Instance arity={self.schema.arity} rows={len(self._rows)}>"

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width rendering, for logs and examples."""
        header = " | ".join(self.schema.attributes)
        lines = [header, "-" * len(header)]
        for count, row in enumerate(sorted(self._rows, key=repr)):
            if count >= limit:
                lines.append(f"... ({len(self._rows) - limit} more rows)")
                break
            lines.append(" | ".join(str(value) for value in row))
        return "\n".join(lines)

"""Database instances: finite sets of typed tuples over one relation.

An :class:`Instance` is the paper's "database": a finite relational structure
consisting of a single relation ``R`` over a fixed schema. Tuples are plain
Python tuples of :class:`~repro.relational.values.Value`. The instance keeps
a per-(column, value) inverted index so that trigger enumeration during the
chase can seed backtracking from the rarest cell instead of scanning.

Instances are mutable (the chase extends them in place) but expose
value-semantics helpers (:meth:`Instance.copy`, equality on row sets) for
tests and model search.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Iterable, Iterator, Mapping, Optional

from repro.errors import TypingError
from repro.relational.schema import Schema
from repro.relational.values import InternTable, Value

#: A database row: one value per column.
Row = tuple[Value, ...]

#: Shared empty bucket served by ``rows_with`` misses (never mutated).
_EMPTY_BUCKET: frozenset = frozenset()


class _RowsView(AbstractSet):
    """A zero-copy read-only view over a live index bucket.

    Exposes set reads (membership, iteration, length, comparisons via
    the ``Set`` mixins) without handing callers the mutable internal
    set — mutating methods simply don't exist, so a stray
    ``bucket.discard(...)`` fails loudly instead of silently
    desynchronizing the index from the row set.
    """

    __slots__ = ("_bucket",)

    def __init__(self, bucket: AbstractSet[Row]):
        self._bucket = bucket

    def __contains__(self, row: object) -> bool:
        return row in self._bucket

    def __iter__(self) -> Iterator[Row]:
        return iter(self._bucket)

    def __len__(self) -> int:
        return len(self._bucket)

    @classmethod
    def _from_iterable(cls, iterable) -> frozenset:
        # Set-algebra results (view & other, view | other, ...) are
        # materialized, not views.
        return frozenset(iterable)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<rows view of {len(self._bucket)} row(s)>"


class Instance:
    """A finite set of rows over a :class:`~repro.relational.schema.Schema`.

    >>> from repro.relational import Schema, Const
    >>> garments = Instance(Schema(["SUPPLIER", "STYLE", "SIZE"]))
    >>> garments.add((Const("BVD"), Const("Brief"), Const(36)))
    True
    >>> len(garments)
    1
    """

    __slots__ = (
        "schema",
        "_rows",
        "_index",
        "_intern",
        "_snapshot",
        "_view",
        "_epoch",
    )

    def __init__(self, schema: Schema, rows: Iterable[Row] = ()):
        self.schema = schema
        self._rows: set[Row] = set()
        # (column, value) -> set of rows having that value in that column.
        self._index: dict[tuple[int, Value], set[Row]] = {}
        # Lazily created Value <-> dense-int table for the compiled chase
        # kernel; plain Instance users never pay for it.
        self._intern: Optional[InternTable] = None
        # Cached frozenset snapshot served by ``rows``; invalidated on
        # mutation so repeated reads (semi-naive seeding, the service's
        # replay checks) don't rebuild it per access.
        self._snapshot: Optional[frozenset[Row]] = None
        # The cached interned kernel view (see ``kernel_view``), kept in
        # sync by the mutation hooks below; None until first requested.
        self._view = None
        # Mutation epoch: bumped on every successful add/discard through
        # any path (including the kernel's direct fire path), so callers
        # holding derived artifacts can detect *any* out-of-band change —
        # unlike a row count, which an equal-count discard+add preserves.
        self._epoch: int = 0
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, row: Row) -> bool:
        """Insert ``row``; return True when it was not already present."""
        self.schema.check_arity(row)
        if row in self._rows:
            return False
        self._rows.add(row)
        self._snapshot = None
        self._epoch += 1
        for column, value in enumerate(row):
            self._index.setdefault((column, value), set()).add(row)
        view = self._view
        if view is not None:
            view._admit(view.intern_row(row))
        return True

    def add_all(self, rows: Iterable[Row]) -> int:
        """Insert every row; return the number of genuinely new rows."""
        return sum(1 for row in rows if self.add(row))

    def discard(self, row: Row) -> bool:
        """Remove ``row`` if present; return True when it was removed."""
        if row not in self._rows:
            return False
        self._rows.discard(row)
        self._snapshot = None
        self._epoch += 1
        for column, value in enumerate(row):
            bucket = self._index.get((column, value))
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del self._index[(column, value)]
        view = self._view
        if view is not None:
            view._retract(view.intern_row(row))
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def rows(self) -> frozenset[Row]:
        """A frozen snapshot of the current row set (cached until mutation)."""
        snapshot = self._snapshot
        if snapshot is None:
            snapshot = self._snapshot = frozenset(self._rows)
        return snapshot

    @property
    def epoch(self) -> int:
        """Mutation counter: bumped on every successful add or discard.

        Derived artifacts (interned kernel views, model-checker sync
        state) compare epochs instead of row counts — a discard followed
        by an add leaves ``len`` unchanged but never the epoch.
        """
        return self._epoch

    def kernel_view(self):
        """The cached interned kernel view of this instance.

        Created on first use and then kept in sync by the mutation
        hooks in :meth:`add` / :meth:`discard` (and by the kernel's own
        fire path), so repeated compiled-engine calls on one database
        stop paying O(instance) view construction per call. Returns a
        :class:`repro.kernel.joins.KernelState`; imported lazily to
        keep the relational layer free of a kernel dependency at import
        time.
        """
        view = self._view
        if view is None:
            from repro.kernel.joins import KernelState

            view = self._view = KernelState(self)
        return view

    @property
    def intern_table(self) -> InternTable:
        """The instance's Value <-> dense-int table (created on first use).

        The compiled chase kernel keys its row representation on this
        table; everything else (certificates, the canonical hasher, the
        JSON codec) keeps seeing real :class:`Value` objects at the
        boundary. The table only ever grows — ids stay valid across
        ``add``/``discard``.
        """
        table = self._intern
        if table is None:
            table = self._intern = InternTable()
        return table

    def rows_with(self, column: int, value: Value) -> AbstractSet[Row]:
        """All rows whose ``column`` component equals ``value``.

        Returns a read-only *view* of the live index bucket (no copy;
        it tracks later mutations of the instance). Callers that mutate
        the instance while iterating must snapshot it first — the chase
        engine and homomorphism search already enumerate before firing.
        """
        bucket = self._index.get((column, value))
        if bucket is None:
            return _EMPTY_BUCKET
        return _RowsView(bucket)

    def matching_rows(self, pattern: Mapping[int, Value]) -> Iterator[Row]:
        """Yield rows agreeing with ``pattern`` (a column -> value map).

        The scan is seeded from the most selective constrained column
        and iterates the live bucket without copying; with an empty
        pattern every row matches. As with :meth:`rows_with`, callers
        must not mutate the instance mid-iteration.
        """
        if not pattern:
            yield from self._rows
            return
        candidates: set[Row] | None = None
        best_size = None
        for column, value in pattern.items():
            bucket = self._index.get((column, value))
            if not bucket:
                return
            if best_size is None or len(bucket) < best_size:
                candidates = bucket
                best_size = len(bucket)
        assert candidates is not None
        items = pattern.items()
        for row in candidates:
            if all(row[column] == value for column, value in items):
                yield row

    def column_values(self, column: int) -> set[Value]:
        """The set of values occurring in ``column``.

        Derived from the inverted index keys — O(distinct cells), not a
        full row scan.
        """
        return {
            value for (key_column, value) in self._index if key_column == column
        }

    def active_domain(self) -> set[Value]:
        """All values occurring anywhere in the instance.

        Derived from the inverted index keys — O(distinct cells), not a
        full row scan.
        """
        return {value for (__, value) in self._index}

    def validate(self) -> None:
        """Enforce the typing restriction (disjoint attribute domains).

        Raises :class:`~repro.errors.TypingError` if some value occurs in
        two different columns, which the paper's typed setting forbids.
        """
        seen: dict[Value, int] = {}
        for row in self._rows:
            for column, value in enumerate(row):
                previous = seen.setdefault(value, column)
                if previous != column:
                    raise TypingError(
                        f"value {value!r} occurs in columns "
                        f"{self.schema.attribute(previous)!r} and "
                        f"{self.schema.attribute(column)!r}"
                    )

    def is_typed(self) -> bool:
        """Return True when the typing restriction holds."""
        try:
            self.validate()
        except TypingError:
            return False
        return True

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------

    def copy(self, *, share_intern: bool = False) -> "Instance":
        """An independent copy sharing the schema.

        Clones the row set and inverted index wholesale instead of
        re-inserting row by row (rows in ``self`` already passed the
        arity check).

        ``share_intern`` hands the copy this instance's
        :class:`~repro.relational.values.InternTable` (created now if
        need be) instead of a lazily created private one. Safe because
        the table is append-only — ids minted through either instance
        stay valid for both — and worth it when many copies of one
        start are chased (the variant-racing scheduler): each copy's
        kernel state reuses the interning work of the previous arm.
        """
        clone = Instance.__new__(Instance)
        clone.schema = self.schema
        clone._rows = set(self._rows)
        clone._index = {
            key: set(bucket) for key, bucket in self._index.items()
        }
        clone._intern = self.intern_table if share_intern else None
        clone._snapshot = self._snapshot
        clone._view = None  # views subscribe to one instance only
        clone._epoch = 0
        return clone

    def map_values(self, mapping: Callable[[Value], Value]) -> "Instance":
        """Apply ``mapping`` to every component, returning a new instance."""
        return Instance(
            self.schema,
            (tuple(mapping(value) for value in row) for row in self._rows),
        )

    def union(self, other: "Instance") -> "Instance":
        """Union of two instances over the same schema."""
        if other.schema != self.schema:
            raise TypingError("cannot union instances over different schemas")
        merged = self.copy()
        merged.add_all(other.rows)
        return merged

    def induced(self, keep: Callable[[Row], bool]) -> "Instance":
        """The sub-instance of rows satisfying ``keep``."""
        return Instance(self.schema, (row for row in self._rows if keep(row)))

    # ------------------------------------------------------------------
    # Comparison and display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.schema == other.schema and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("Instance is mutable and unhashable; use .rows")

    def __repr__(self) -> str:
        return f"<Instance arity={self.schema.arity} rows={len(self._rows)}>"

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width rendering, for logs and examples."""
        header = " | ".join(self.schema.attributes)
        lines = [header, "-" * len(header)]
        for count, row in enumerate(sorted(self._rows, key=repr)):
            if count >= limit:
                lines.append(f"... ({len(self._rows) - limit} more rows)")
                break
            lines.append(" | ".join(str(value) for value in row))
        return "\n".join(lines)

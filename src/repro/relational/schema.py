"""Schemas: ordered lists of named attributes for the single relation ``R``.

Gurevich & Lewis work with a single relation with a fixed number of columns
(attributes) ``A, B, ..., C`` whose domains are pairwise disjoint. A
:class:`Schema` is the ordered list of attribute names; positions (column
indexes) are the primary handle used throughout the library, names are for
presentation and parsing.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError

#: An attribute is identified by its name.
Attribute = str


class Schema:
    """An ordered, duplicate-free list of attribute names.

    The schema fixes the arity of every tuple in an
    :class:`~repro.relational.instance.Instance` and the column of every
    variable in a dependency. Schemas are immutable and hashable, so they
    can key caches and be shared freely between instances and dependencies.

    >>> schema = Schema(["SUPPLIER", "STYLE", "SIZE"])
    >>> schema.arity
    3
    >>> schema.position("STYLE")
    1
    """

    __slots__ = ("_attributes", "_positions", "_hash")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        positions: dict[Attribute, int] = {}
        for index, name in enumerate(attrs):
            if not isinstance(name, str) or not name:
                raise SchemaError(f"attribute names must be non-empty strings, got {name!r}")
            if name in positions:
                raise SchemaError(f"duplicate attribute {name!r}")
            positions[name] = index
        self._attributes = attrs
        self._positions = positions
        self._hash = hash(attrs)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attribute names, in column order."""
        return self._attributes

    @property
    def arity(self) -> int:
        """Number of columns of the relation."""
        return len(self._attributes)

    def position(self, attribute: Attribute) -> int:
        """Return the column index of ``attribute``.

        Raises :class:`~repro.errors.SchemaError` for unknown attributes.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(f"unknown attribute {attribute!r}") from None

    def attribute(self, position: int) -> Attribute:
        """Return the attribute name at ``position``."""
        if not 0 <= position < len(self._attributes):
            raise SchemaError(
                f"position {position} out of range for arity {self.arity}"
            )
        return self._attributes[position]

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Schema({list(self._attributes)!r})"

    def check_arity(self, row: tuple) -> None:
        """Raise :class:`~repro.errors.ArityError` unless ``len(row) == arity``."""
        from repro.errors import ArityError

        if len(row) != self.arity:
            raise ArityError(
                f"tuple of length {len(row)} does not fit schema of arity {self.arity}"
            )

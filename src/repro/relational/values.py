"""Values that may occupy tuple components: constants and labelled nulls.

Two kinds of values appear in database instances:

* :class:`Const` — a named, externally meaningful value ("St. Laurent",
  "Brief", 36). Constants compare by name and are only ever mapped to
  themselves by homomorphisms.
* :class:`LabeledNull` — an anonymous value invented by the chase for an
  existentially quantified conclusion component. Nulls compare by identity
  of their label and may be mapped to any value of the same column by a
  homomorphism.

Both are immutable and hashable so they can be stored in tuples and sets.
The *typing restriction* of the paper (disjoint attribute domains) is not a
property of values themselves but of where they occur; it is enforced by
:meth:`repro.relational.instance.Instance.validate`.
"""

from __future__ import annotations

from typing import Optional, Union


class Const:
    """A named constant value.

    >>> Const("BVD") == Const("BVD")
    True
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: object) -> None:
        self.name = name
        self._hash = hash(("Const", name))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Const):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Const({self.name!r})"

    def __str__(self) -> str:
        return str(self.name)


class LabeledNull:
    """A labelled null: an anonymous, renameable value.

    Labelled nulls stand for existentially quantified individuals. Two nulls
    are equal when they carry the same label. Fresh nulls should be obtained
    from a :class:`NullFactory`, which guarantees unique labels within one
    computation.
    """

    __slots__ = ("label", "_hash")

    def __init__(self, label: int) -> None:
        self.label = label
        self._hash = hash(("Null", label))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledNull):
            return NotImplemented
        return self.label == other.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"LabeledNull({self.label})"

    def __str__(self) -> str:
        return f"_N{self.label}"


#: Anything that can sit in a tuple component.
Value = Union[Const, LabeledNull]


def is_null(value: object) -> bool:
    """Return True when ``value`` is a labelled null."""
    return isinstance(value, LabeledNull)


class InternTable:
    """Bijective interning of :class:`Value` objects to dense integers.

    The compiled chase kernel (:mod:`repro.chase.plan`) works on rows of
    small ints instead of ``Value`` tuples: hashing and equality become
    integer operations instead of ``Const.__eq__`` name comparisons, and
    index keys shrink. One table serves one
    :class:`~repro.relational.instance.Instance` (see
    ``Instance.intern_table``); ids are assigned in first-seen order and
    never reclaimed, so ``values[intern(v)] is v``-style round trips stay
    stable for the lifetime of the table.
    """

    __slots__ = ("_ids", "values")

    def __init__(self) -> None:
        self._ids: dict[Value, int] = {}
        #: id -> Value, the inverse mapping (read-only for callers).
        self.values: list[Value] = []

    def intern(self, value: Value) -> int:
        """The dense id for ``value`` (assigned on first sight)."""
        idx = self._ids.get(value)
        if idx is None:
            idx = len(self.values)
            self._ids[value] = idx
            self.values.append(value)
        return idx

    def raw(self) -> tuple[dict[Value, int], list[Value]]:
        """The live ``(ids, values)`` pair backing the table.

        The kernel layer (:class:`repro.kernel.state.KernelState`, and
        the native extension's C interning loop) holds these directly
        and interns with inline dict probes instead of per-value method
        calls — the audited fast path behind single-shot small-CQ
        latency. Both structures are append-only; callers must preserve
        the bijection (``ids[values[i]] == i``)."""
        return self._ids, self.values

    def id_of(self, value: Value) -> Optional[int]:
        """The id for ``value`` if already interned, else None."""
        return self._ids.get(value)

    def __len__(self) -> int:
        return len(self.values)


class NullFactory:
    """Produces labelled nulls with unique labels.

    A single factory is threaded through a chase run so that every invented
    value is distinct. Factories are cheap; create one per computation.

    >>> fresh = NullFactory()
    >>> fresh() == fresh()
    False
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def __call__(self) -> LabeledNull:
        label = self._next
        self._next += 1
        return LabeledNull(label)

    @property
    def next_label(self) -> int:
        """The label the next invented null will carry.

        Exposed so a suspended chase can checkpoint its null counter and a
        resumed run can continue inventing *distinct* labels
        (:mod:`repro.chase.checkpoint`).
        """
        return self._next

    def take(self, count: int) -> list[LabeledNull]:
        """Return ``count`` fresh nulls."""
        return [self() for __ in range(count)]

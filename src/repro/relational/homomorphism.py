"""Homomorphism search between tuple sets.

A *homomorphism* from a set of source rows into a target
:class:`~repro.relational.instance.Instance` is a mapping of the source's
flexible terms (labelled nulls, or dependency variables) to target values
such that every source row, after substitution, is a row of the target.
Rigid terms (constants) must map to themselves.

This is the workhorse of the whole library: dependency satisfaction, chase
triggers, implication testing and core computation are all homomorphism
problems. The search is a backtracking join over the target's per-cell
indexes, always expanding the source row with the most already-bound
components first (a most-constrained-first heuristic).

Because the paper's databases are *typed* (disjoint column domains), a term
only ever needs to range over values of its own column, which the index
lookups enforce automatically.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.relational.instance import Instance, Row
from repro.relational.values import Value, is_null

#: Decides whether a source term may be remapped (variable-like) or is rigid.
Flexibility = Callable[[object], bool]

#: A (partial) homomorphism: flexible term -> target value.
Assignment = dict


def _row_candidates(
    target: Instance,
    source_row: Sequence[object],
    assignment: Mapping,
    flexible: Flexibility,
) -> Iterator[Row]:
    """Yield target rows compatible with ``source_row`` under ``assignment``."""
    pattern: dict[int, Value] = {}
    for column, term in enumerate(source_row):
        if flexible(term):
            if term in assignment:
                pattern[column] = assignment[term]
        else:
            pattern[column] = term  # rigid: must match literally
    yield from target.matching_rows(pattern)


def _bound_count(row: Sequence[object], assignment: Mapping, flexible: Flexibility) -> int:
    """How many components of ``row`` are already determined."""
    return sum(
        1
        for term in row
        if not flexible(term) or term in assignment
    )


def iter_homomorphisms(
    source_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    partial: Optional[Mapping] = None,
    flexible: Flexibility = is_null,
) -> Iterator[Assignment]:
    """Yield every homomorphism of ``source_rows`` into ``target``.

    ``partial`` pre-binds some flexible terms (its bindings are honoured but
    not re-checked against rigidity). ``flexible`` classifies source terms;
    the default treats labelled nulls as variables and everything else as
    rigid, which is the right notion for instance-to-instance homomorphisms.

    Yields assignment dicts covering every flexible term of the source.
    The same dict object is reused between yields; callers that store
    results must copy them (``dict(h)``).
    """
    rows = [tuple(row) for row in source_rows]
    assignment: Assignment = dict(partial) if partial else {}
    yield from _search(rows, target, assignment, flexible)


def _search(
    pending: list[tuple],
    target: Instance,
    assignment: Assignment,
    flexible: Flexibility,
) -> Iterator[Assignment]:
    if not pending:
        yield assignment
        return
    # Most-constrained-first: pick the pending row with the most bound cells.
    best_index = max(
        range(len(pending)),
        key=lambda i: _bound_count(pending[i], assignment, flexible),
    )
    source_row = pending[best_index]
    rest = pending[:best_index] + pending[best_index + 1 :]
    for candidate in _row_candidates(target, source_row, assignment, flexible):
        added: list[object] = []
        ok = True
        for term, value in zip(source_row, candidate):
            if flexible(term):
                bound = assignment.get(term)
                if bound is None:
                    assignment[term] = value
                    added.append(term)
                elif bound != value:
                    ok = False
                    break
            elif term != value:
                ok = False
                break
        if ok:
            yield from _search(rest, target, assignment, flexible)
        for term in added:
            del assignment[term]


def find_homomorphism(
    source_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    partial: Optional[Mapping] = None,
    flexible: Flexibility = is_null,
) -> Optional[Assignment]:
    """Return one homomorphism (as a fresh dict) or None."""
    for assignment in iter_homomorphisms(
        source_rows, target, partial=partial, flexible=flexible
    ):
        return dict(assignment)
    return None


def count_homomorphisms(
    source_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    partial: Optional[Mapping] = None,
    flexible: Flexibility = is_null,
    limit: Optional[int] = None,
) -> int:
    """Count homomorphisms, optionally stopping at ``limit``."""
    if limit is not None and limit <= 0:
        # A non-positive limit caps the count at nothing; the old
        # post-increment check returned 1 for ``limit=0``.
        return 0
    count = 0
    for __ in iter_homomorphisms(source_rows, target, partial=partial, flexible=flexible):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def extend_homomorphism(
    assignment: Mapping,
    extra_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    flexible: Flexibility = is_null,
) -> Optional[Assignment]:
    """Extend ``assignment`` so that ``extra_rows`` also embed into ``target``.

    Returns the extended assignment (a fresh dict) or None when no extension
    exists. This is exactly the *trigger activity* test of the restricted
    chase: a trigger is active when its antecedent homomorphism has no
    extension covering the conclusion.
    """
    return find_homomorphism(extra_rows, target, partial=assignment, flexible=flexible)


def is_homomorphism(
    assignment: Mapping,
    source_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    flexible: Flexibility = is_null,
) -> bool:
    """Check that ``assignment`` maps every source row into ``target``."""
    for row in source_rows:
        image = []
        for term in row:
            if flexible(term):
                if term not in assignment:
                    return False
                image.append(assignment[term])
            else:
                image.append(term)
        if tuple(image) not in target:
            return False
    return True


def apply_assignment(
    row: Sequence[object],
    assignment: Mapping,
    *,
    flexible: Flexibility = is_null,
) -> tuple:
    """Substitute ``assignment`` into ``row`` (rigid terms pass through)."""
    return tuple(
        assignment[term] if flexible(term) and term in assignment else term
        for term in row
    )

"""Typed relational substrate (system S1).

This package implements the database model of Gurevich & Lewis (1982):
a single relation ``R`` over a fixed list of attributes whose domains are
pairwise disjoint (the *typing restriction*). It provides:

* :class:`~repro.relational.schema.Schema` — ordered attribute lists;
* :class:`~repro.relational.values.Const` and
  :class:`~repro.relational.values.LabeledNull` — the two kinds of values
  (named constants and chase-invented labelled nulls);
* :class:`~repro.relational.instance.Instance` — a finite set of typed
  tuples with per-column indexes for fast trigger enumeration;
* homomorphism search — the generic reference engine
  (:mod:`repro.relational.homomorphism`) and the compiled engine on the
  shared join kernel (:mod:`repro.relational.homplan`, the default;
  select per call with ``engine=`` or process-wide with
  ``REPRO_HOM_ENGINE``) — plus direct products
  (:mod:`repro.relational.product`) and cores
  (:mod:`repro.relational.core`).
"""

from repro.relational.core import core_of, find_retraction, is_core
from repro.relational.homomorphism import is_homomorphism
from repro.relational.homplan import (
    count_homomorphisms,
    extend_homomorphism,
    find_homomorphism,
    find_retraction_assignment,
    iter_homomorphisms,
    resolve_engine,
)
from repro.relational.instance import Instance
from repro.relational.product import direct_product, power
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Attribute, Schema
from repro.relational.values import Const, LabeledNull, NullFactory, Value, is_null

__all__ = [
    "Attribute",
    "Schema",
    "Const",
    "LabeledNull",
    "NullFactory",
    "Value",
    "is_null",
    "Instance",
    "find_homomorphism",
    "iter_homomorphisms",
    "count_homomorphisms",
    "extend_homomorphism",
    "is_homomorphism",
    "direct_product",
    "power",
    "ConjunctiveQuery",
    "core_of",
    "find_retraction",
    "find_retraction_assignment",
    "is_core",
    "resolve_engine",
]

"""Direct products of instances.

Template dependencies are Horn-like sentences and are therefore preserved
under direct products (cf. Fagin 1980, "Horn clauses and database
dependencies"). The product is used by the test suite as a semantic
invariant: whenever two databases satisfy a TD, so does their direct
product. It is also a classic tool for building counterexamples.

The product of rows ``r`` and ``s`` is the row of componentwise pairs; pair
values are constants named by the pair of underlying values, so products of
typed instances remain typed (pairs inherit their column).
"""

from __future__ import annotations

from repro.errors import TypingError
from repro.relational.instance import Instance
from repro.relational.values import Const, Value


def pair_value(left: Value, right: Value) -> Const:
    """The product value of ``left`` and ``right``."""
    return Const((left, right))


def direct_product(left: Instance, right: Instance) -> Instance:
    """The direct product ``left × right`` over the common schema.

    Its rows are all componentwise pairings of a row of ``left`` with a row
    of ``right``; its size is ``len(left) * len(right)``.
    """
    if left.schema != right.schema:
        raise TypingError("direct product requires a common schema")
    product = Instance(left.schema)
    for row_l in left:
        for row_r in right:
            product.add(tuple(pair_value(a, b) for a, b in zip(row_l, row_r)))
    return product


def power(instance: Instance, exponent: int) -> Instance:
    """The ``exponent``-fold direct product of ``instance`` with itself.

    ``power(I, 1)`` is a copy of ``I``; ``exponent`` must be positive.
    """
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    result = instance.copy()
    for __ in range(exponent - 1):
        result = direct_product(result, instance)
    return result

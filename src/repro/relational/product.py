"""Direct products of instances.

Template dependencies are Horn-like sentences and are therefore preserved
under direct products (cf. Fagin 1980, "Horn clauses and database
dependencies"). The product is used by the test suite as a semantic
invariant: whenever two databases satisfy a TD, so does their direct
product. It is also a classic tool for building counterexamples.

The product of rows ``r`` and ``s`` is the row of componentwise pairs; pair
values are constants named by the pair of underlying values, so products of
typed instances remain typed (pairs inherit their column).

Rows are generated *lazily*: :func:`iter_product_rows` streams the
pairings (deduplicating pair constants through a per-call intern memo,
so a product with ``n x m`` rows allocates ``O(distinct cell pairs)``
pair values, not ``n x m x arity``), and :func:`power` folds an
``exponent``-fold product without ever materializing the intermediate
instances. Because product sizes are multiplicative — the silent
quadratic (or worse) blowup of counterexample search — both entry
points accept ``max_rows`` and fail with a clear
:class:`~repro.errors.BudgetExceededError` *before* generating anything
when the result would exceed it.
"""

from __future__ import annotations

from itertools import product as _cartesian
from typing import Iterator, Optional

from repro.errors import BudgetExceededError, TypingError
from repro.relational.instance import Instance, Row
from repro.relational.values import Const, Value


def pair_value(left: Value, right: Value) -> Const:
    """The product value of ``left`` and ``right``."""
    return Const((left, right))


def _check_size(rows: int, max_rows: Optional[int], what: str) -> None:
    if max_rows is not None and rows > max_rows:
        raise BudgetExceededError(
            f"{what} would have {rows} rows, exceeding max_rows={max_rows}; "
            "raise the bound or shrink the factors"
        )


def _pair_interner():
    """A memoizing :func:`pair_value`: one Const per distinct cell pair."""
    pairs: dict[tuple[Value, Value], Const] = {}

    def pair(a: Value, b: Value) -> Const:
        key = (a, b)
        value = pairs.get(key)
        if value is None:
            value = pairs[key] = pair_value(a, b)
        return value

    return pair


def iter_product_rows(left: Instance, right: Instance) -> Iterator[Row]:
    """Stream the rows of ``left x right`` without materializing them.

    Pair constants are interned per call: every distinct ``(a, b)`` cell
    pair becomes one shared :class:`Const` object instead of a fresh
    allocation per occurrence.
    """
    if left.schema != right.schema:
        raise TypingError("direct product requires a common schema")
    pair = _pair_interner()
    for row_l in left:
        for row_r in right:
            yield tuple(pair(a, b) for a, b in zip(row_l, row_r))


def direct_product(
    left: Instance, right: Instance, *, max_rows: Optional[int] = None
) -> Instance:
    """The direct product ``left × right`` over the common schema.

    Its rows are all componentwise pairings of a row of ``left`` with a row
    of ``right``; its size is ``len(left) * len(right)`` (guarded by
    ``max_rows`` when given).
    """
    if left.schema != right.schema:
        raise TypingError("direct product requires a common schema")
    _check_size(len(left) * len(right), max_rows, "direct product")
    return Instance(left.schema, iter_product_rows(left, right))


def power(
    instance: Instance, exponent: int, *, max_rows: Optional[int] = None
) -> Instance:
    """The ``exponent``-fold direct product of ``instance`` with itself.

    ``power(I, 1)`` is a copy of ``I``; ``exponent`` must be positive.
    Equal to left-associated repeated :func:`direct_product` (pair
    values nest identically), but streamed: the ``len(I)^k``
    intermediate instances are never built — each result row is folded
    directly from one ``exponent``-tuple of base rows, with pair
    constants interned per call. ``max_rows`` bounds the *final* size
    ``len(I) ** exponent`` up front.
    """
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    if exponent == 1:
        return instance.copy()
    _check_size(len(instance) ** exponent, max_rows, f"power(.., {exponent})")
    pair = _pair_interner()

    def rows() -> Iterator[Row]:
        base = list(instance)
        arity = instance.schema.arity
        for combo in _cartesian(base, repeat=exponent):
            row = combo[0]
            for factor in combo[1:]:
                row = tuple(
                    pair(row[column], factor[column]) for column in range(arity)
                )
            yield row

    return Instance(instance.schema, rows())

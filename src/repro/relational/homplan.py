"""The compiled homomorphism engine: hom search on the shared join kernel.

:mod:`repro.relational.homomorphism` is the reference semantics — a
generic backtracking search that re-derives its join strategy at every
node. This module compiles the same search onto the engine layer of
:mod:`repro.kernel.joins` (the machinery already under the chase and the
model checker): flat integer *slots* for the flexible terms, a
most-constrained-first atom order decided once per source structure, and
probe/bind/check column lists walked over a
:class:`~repro.kernel.joins.KernelState`'s interned int-row index.

What compiles, per call shape:

* **enumeration** (:func:`iter_homomorphisms`) — a backtracking walk
  yielding every complete assignment; rigid source terms and
  ``partial``-bound flexible terms become *prebound* slots, so constants
  cost one index probe instead of a per-candidate comparison;
* **existence** (:func:`find_homomorphism`, :func:`extend_homomorphism`,
  :func:`count_homomorphisms`) — the kernel's early-exit
  :func:`~repro.kernel.joins.has_extension` walk, which leaves the
  witnessing assignment in the registers;
* **retraction** (:func:`find_retraction_assignment`) — the
  *endomorphism mode* behind core computation and CQ minimization: the
  walk tracks the image row of every matched source atom and
  **early-exits the moment two source atoms collapse onto one target
  row** (an image strictly smaller than the source is exactly a proper
  retraction), switching to the pure-existence walk for the remaining
  atoms. The generic engine instead enumerates complete endomorphisms
  and sizes their images afterwards.

Plans are cached structurally (two row sets with the same
variable/constant shape and the same prebound positions share one
plan), through the same :func:`~repro.kernel.joins.memoized` policy as
every other compiled-artifact cache. All compiled paths run on the
target's *cached* kernel view
(:meth:`~repro.relational.instance.Instance.kernel_view`), kept in sync
by the instance's mutation hooks — repeated small queries against one
database no longer pay an O(instance) interning pass per call.

Engine selection mirrors the chase kernel and the model checker: every
entry point takes ``engine="compiled" | "legacy"`` (None means the
process default, ``REPRO_HOM_ENGINE`` or compiled). The legacy engine
remains the reference; ``tests/relational/test_homplan.py`` holds the
two to identical homomorphism *sets*, not just existence.

NOTE: the candidate loop in :func:`_iter_walk` (the one enumerating
walker, a generator — the shape that stays python under every join
backend) is deliberately kept in lockstep with
:func:`repro.kernel.joins.extend_matches` /
:func:`~repro.kernel.joins.has_extension` (see the NOTE there) — same
step semantics, different termination discipline. The early-exit walks
(existence, retraction) are kernel-owned and run on whichever join
backend the process resolved (``REPRO_JOIN_BACKEND``).
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.kernel.joins import (
    AtomStep,
    IntRow,
    KernelState,
    compile_steps,
    has_extension,
    memoized,
    retraction_walk,
)
from repro.relational import homomorphism as _legacy
from repro.relational.homomorphism import (
    Assignment,
    Flexibility,
    apply_assignment,
)
from repro.relational.instance import Instance
from repro.relational.values import is_null

#: Which engine the homomorphism entry points use when the caller does
#: not say. Mirrors ``REPRO_CHASE_KERNEL`` / ``REPRO_MODEL_CHECKER``:
#: flip a whole process back to the generic backtracking search for
#: baselines and differential debugging.
DEFAULT_ENGINE = os.environ.get("REPRO_HOM_ENGINE", "compiled")

_ENGINES = ("compiled", "legacy")


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an ``engine=`` argument (None means the process default)."""
    engine = engine if engine is not None else DEFAULT_ENGINE
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown homomorphism engine {engine!r} (use one of {_ENGINES})"
        )
    return engine


class HomPlan:
    """A compiled source structure: join order + slot count.

    Shared across every call whose source rows have the same shape
    (same first-occurrence pattern of terms, same prebound positions) —
    the terms themselves, and the values prebound into the registers,
    are per-call.
    """

    __slots__ = ("steps", "n_slots")

    def __init__(self, steps: tuple[AtomStep, ...], n_slots: int):
        self.steps = steps
        self.n_slots = n_slots


#: Structural plan memo: key -> HomPlan (see :func:`_prepare`).
_HOM_PLAN_CACHE: dict = {}
_HOM_PLAN_CACHE_MAX = 4096


def _prepare(
    rows: Sequence[tuple],
    flexible: Flexibility,
    partial: Mapping,
) -> tuple[HomPlan, list[tuple[int, object]], list[tuple[object, int]]]:
    """Compile ``rows`` into ``(plan, prebound, out_pairs)``.

    Slots are assigned to terms in first-seen order — flexible and
    rigid alike (a rigid term, or a flexible term bound by ``partial``,
    is a *prebound* slot: its value is interned into the registers
    before the walk). ``out_pairs`` lists the flexible terms the walk
    must decode from the registers afterwards (``partial``-bound terms
    are already known to the caller).

    The plan itself is memoized on the structure only: the per-atom
    slot pattern plus the prebound slot set. Calls over differently
    named variables or different constants share one compiled order.
    """
    slot_of: dict = {}
    prebound: list[tuple[int, object]] = []
    out_pairs: list[tuple[object, int]] = []
    bound: set[int] = set()
    atom_slots: list[tuple[int, ...]] = []
    for row in rows:
        slots = []
        for term in row:
            slot = slot_of.get(term)
            if slot is None:
                slot = slot_of[term] = len(slot_of)
                if flexible(term):
                    if term in partial:
                        prebound.append((slot, partial[term]))
                        bound.add(slot)
                    else:
                        out_pairs.append((term, slot))
                else:
                    prebound.append((slot, term))
                    bound.add(slot)
            slots.append(slot)
        atom_slots.append(tuple(slots))
    key = (tuple(atom_slots), frozenset(bound))
    plan = memoized(
        _HOM_PLAN_CACHE,
        key,
        lambda __: HomPlan(compile_steps(atom_slots, bound), len(slot_of)),
        _HOM_PLAN_CACHE_MAX,
    )
    return plan, prebound, out_pairs


def _load_registers(
    plan: HomPlan, prebound: list[tuple[int, object]], state: KernelState
) -> list[int]:
    """Fresh registers with the prebound values interned.

    Interning a value the target has never seen simply mints a fresh id
    with empty index buckets — the walk then fails its probes naturally,
    exactly like the generic engine's empty ``matching_rows`` scan.
    """
    regs = [0] * plan.n_slots
    intern = state.intern
    for slot, value in prebound:
        regs[slot] = intern(value)
    return regs


def _iter_walk(
    state: KernelState,
    steps: tuple[AtomStep, ...],
    depth: int,
    regs: list[int],
) -> Iterator[None]:
    """Backtracking join over ``steps``, yielding once per complete match.

    At each yield the registers hold the complete assignment; the
    consumer must decode them before advancing the generator (the walk
    reuses the register list). Kept in lockstep with the kernel walkers
    (see the module NOTE).
    """
    if depth == len(steps):
        yield None
        return
    step = steps[depth]
    probes = step.probes
    if step.membership:
        if tuple(regs[slot] for slot in step.probe_slots) in state.irows:
            yield from _iter_walk(state, steps, depth + 1, regs)
        return
    if probes:
        index = state.index
        best = None
        for column, slot in probes:
            bucket = index.get((column, regs[slot]))
            if not bucket:
                return
            if best is None or len(bucket) < len(best):
                best = bucket
    else:
        best = state.rows_list
    verify = step.verify_probes
    binds = step.binds
    checks = step.checks
    next_depth = depth + 1
    for irow in best:
        ok = True
        for column, slot in verify:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        for column, slot in binds:
            regs[slot] = irow[column]
        for column, slot in checks:
            if irow[column] != regs[slot]:
                ok = False
                break
        if ok:
            yield from _iter_walk(state, steps, next_depth, regs)


def _decode(
    base: dict,
    out_pairs: list[tuple[object, int]],
    regs: list[int],
    state: KernelState,
) -> Assignment:
    values = state.values
    result = dict(base)
    for term, slot in out_pairs:
        result[term] = values[regs[slot]]
    return result


# ---------------------------------------------------------------------------
# Public entry points (engine-dispatching counterparts of
# repro.relational.homomorphism)
# ---------------------------------------------------------------------------


def iter_homomorphisms(
    source_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    partial: Optional[Mapping] = None,
    flexible: Flexibility = is_null,
    engine: Optional[str] = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism of ``source_rows`` into ``target``.

    Same contract as
    :func:`repro.relational.homomorphism.iter_homomorphisms` — the two
    engines enumerate the *same set* of assignments (order may differ).
    The compiled engine yields a fresh dict per match.
    """
    if resolve_engine(engine) == "legacy":
        yield from _legacy.iter_homomorphisms(
            source_rows, target, partial=partial, flexible=flexible
        )
        return
    rows = [tuple(row) for row in source_rows]
    base: dict = dict(partial) if partial else {}
    plan, prebound, out_pairs = _prepare(rows, flexible, base)
    state = target.kernel_view()
    regs = _load_registers(plan, prebound, state)
    for __ in _iter_walk(state, plan.steps, 0, regs):
        yield _decode(base, out_pairs, regs, state)


def find_homomorphism(
    source_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    partial: Optional[Mapping] = None,
    flexible: Flexibility = is_null,
    engine: Optional[str] = None,
) -> Optional[Assignment]:
    """Return one homomorphism (as a fresh dict) or None."""
    if resolve_engine(engine) == "legacy":
        return _legacy.find_homomorphism(
            source_rows, target, partial=partial, flexible=flexible
        )
    rows = [tuple(row) for row in source_rows]
    base: dict = dict(partial) if partial else {}
    plan, prebound, out_pairs = _prepare(rows, flexible, base)
    state = target.kernel_view()
    regs = _load_registers(plan, prebound, state)
    if has_extension(state, plan.steps, 0, regs):
        return _decode(base, out_pairs, regs, state)
    return None


def count_homomorphisms(
    source_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    partial: Optional[Mapping] = None,
    flexible: Flexibility = is_null,
    limit: Optional[int] = None,
    engine: Optional[str] = None,
) -> int:
    """Count homomorphisms, optionally stopping at ``limit``."""
    if resolve_engine(engine) == "legacy":
        return _legacy.count_homomorphisms(
            source_rows, target, partial=partial, flexible=flexible, limit=limit
        )
    if limit is not None and limit <= 0:
        return 0
    rows = [tuple(row) for row in source_rows]
    base: dict = dict(partial) if partial else {}
    plan, prebound, out_pairs = _prepare(rows, flexible, base)
    state = target.kernel_view()
    regs = _load_registers(plan, prebound, state)
    count = 0
    for __ in _iter_walk(state, plan.steps, 0, regs):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def extend_homomorphism(
    assignment: Mapping,
    extra_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    flexible: Flexibility = is_null,
    engine: Optional[str] = None,
) -> Optional[Assignment]:
    """Extend ``assignment`` so that ``extra_rows`` also embed into ``target``."""
    return find_homomorphism(
        extra_rows, target, partial=assignment, flexible=flexible, engine=engine
    )


def find_retraction_assignment(
    source_rows: Iterable[Sequence[object]],
    target: Instance,
    *,
    partial: Optional[Mapping] = None,
    flexible: Flexibility = is_null,
    engine: Optional[str] = None,
) -> Optional[Assignment]:
    """A homomorphism whose image has fewer rows than the source, or None.

    The endomorphism mode: with ``source_rows`` = the rows of ``target``
    this is exactly :func:`repro.relational.core.find_retraction` (a
    proper retraction exists iff two source rows collapse onto one
    image row); with a CQ body and its head identity as ``partial`` it
    is one step of query minimization. ``source_rows`` must be distinct
    (instance row sets and deduplicated CQ bodies are).
    """
    rows = [tuple(row) for row in source_rows]
    base: dict = dict(partial) if partial else {}
    if resolve_engine(engine) == "legacy":
        for candidate in _legacy.iter_homomorphisms(
            rows, target, partial=base, flexible=flexible
        ):
            image = {
                apply_assignment(row, candidate, flexible=flexible)
                for row in rows
            }
            if len(image) < len(rows):
                return dict(candidate)
        return None
    plan, prebound, out_pairs = _prepare(rows, flexible, base)
    state = target.kernel_view()
    regs = _load_registers(plan, prebound, state)
    used: set[IntRow] = set()
    if retraction_walk(state, plan.steps, 0, regs, used):
        return _decode(base, out_pairs, regs, state)
    return None

"""The paper's running example: garments, suppliers, styles and sizes.

"suppose the relation R represents the availability of garments of
various styles and sizes from various suppliers. Then R has three
attributes: SUPPLIER, STYLE, and SIZE, and typical members of the R
relation might be (St. Laurent, Evening Dress, 10) and (BVD, Brief, 36)."

This module reproduces that database, the Figure 1 template dependency

    R(a, b, c) & R(a, b', c')  =>  (for some a*) R(a*, b, c')

("if a supplier supplies both garments of some style b and garments of
some size c', then there is a supplier — not necessarily the same one —
of style b garments in size c'"), and the example EID from the Chandra
et al. comparison.
"""

from __future__ import annotations

from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.template import TemplateDependency, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.values import Const


def garment_schema() -> Schema:
    """The three-attribute garment schema."""
    return Schema(["SUPPLIER", "STYLE", "SIZE"])


def garment_database() -> Instance:
    """A small garment catalogue including the paper's two sample tuples."""
    rows = [
        ("St. Laurent", "Evening Dress", "size-10"),
        ("BVD", "Brief", "size-36"),
        ("St. Laurent", "Evening Dress", "size-12"),
        ("St. Laurent", "Blazer", "size-10"),
        ("BVD", "Brief", "size-32"),
        ("Hanes", "Brief", "size-36"),
        ("Hanes", "T-Shirt", "size-36"),
    ]
    return Instance(
        garment_schema(),
        (tuple(Const(value) for value in row) for row in rows),
    )


def figure1_dependency() -> TemplateDependency:
    """The Figure 1 dependency, exactly as written in the paper."""
    a, b, c = Variable("a"), Variable("b"), Variable("c")
    b_prime, c_prime = Variable("b'"), Variable("c'")
    a_star = Variable("a*")
    return TemplateDependency(
        garment_schema(),
        antecedents=[(a, b, c), (a, b_prime, c_prime)],
        conclusion=(a_star, b, c_prime),
        name="figure-1",
    )


def garment_eid() -> EmbeddedImplicationalDependency:
    """The paper's example EID (conclusion is a two-atom conjunction).

        R(a, b, c) & R(a, b', c')  =>  R(a*, b, c) & R(a*, b, c')

    "if one supplier supplies a garment b in a size c and also supplies
    some garment in size c', then there is a supplier of garment b in
    both sizes c and c'."
    """
    a, b, c = Variable("a"), Variable("b"), Variable("c")
    b_prime, c_prime = Variable("b'"), Variable("c'")
    a_star = Variable("a*")
    return EmbeddedImplicationalDependency(
        garment_schema(),
        antecedents=[(a, b, c), (a, b_prime, c_prime)],
        conclusions=[(a_star, b, c), (a_star, b, c_prime)],
        name="garment-eid",
    )

"""Workloads (system S7): canonical examples, families and generators.

* :mod:`repro.workloads.garment` — the paper's running garment-supply
  example (the Figure 1 dependency and the example EID);
* :mod:`repro.workloads.instances` — the canonical word-problem
  instances and scalable families used by the experiments;
* :mod:`repro.workloads.generators` — seeded random dependencies and
  databases for property tests and chase-scaling benchmarks.
"""

from repro.workloads.garment import (
    figure1_dependency,
    garment_database,
    garment_eid,
    garment_schema,
)
from repro.workloads.generators import (
    disguise,
    inference_workload,
    random_instance,
    random_full_td,
    random_td,
    transitivity_family,
)
from repro.workloads.instances import (
    gap_instance,
    negative_instance,
    negative_family,
    positive_chain_family,
    positive_instance,
)

__all__ = [
    "garment_schema",
    "garment_database",
    "figure1_dependency",
    "garment_eid",
    "positive_instance",
    "negative_instance",
    "gap_instance",
    "positive_chain_family",
    "negative_family",
    "random_td",
    "random_full_td",
    "random_instance",
    "transitivity_family",
    "disguise",
    "inference_workload",
]

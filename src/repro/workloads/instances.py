"""Canonical word-problem instances and scalable families.

Three canonical instances drive the experiments:

* :func:`positive_instance` — ``A0·A0 = A0`` and ``A0·A0 = 0`` force
  ``A0 = A0·A0 = 0`` in every semigroup: ``φ`` is valid, direction (A)
  applies and ``D ⊨ D0``.
* :func:`negative_instance` — the zero equations alone force nothing:
  the 2-element nilpotent semigroup (``a² = 0``) is an identity-free
  cancellation counter-model, direction (B) applies and a finite database
  separates ``D`` from ``D0``.
* :func:`gap_instance` — ``A0·A0 = A0`` alone. ``A0 = 0`` is *not* valid
  (a semilattice refutes it), but condition (ii) rules out any
  cancellation counter-model (``a·a = a`` with ``a ≠ 0`` is exactly what
  (ii) forbids). The instance lies in **neither** of the Main Lemma's two
  inseparable sets — a bounded classifier must answer UNKNOWN, which is
  the honest behaviour experiment E6 demonstrates.

The families scale these shapes for the benchmarks.
"""

from __future__ import annotations

from repro.semigroups.presentation import Equation, Presentation


def positive_instance() -> Presentation:
    """The canonical positive instance (``φ`` valid)."""
    return Presentation.with_zero_equations(
        ["A0", "0"],
        [
            Equation.make(["A0", "A0"], ["A0"]),
            Equation.make(["A0", "A0"], ["0"]),
        ],
    )


def negative_instance(extra_letters: int = 0) -> Presentation:
    """The canonical negative instance: zero equations only.

    ``extra_letters`` adds unconstrained letters ``X1..Xk``, scaling the
    alphabet (and hence the ``2n+2`` attribute count) without changing
    the answer.
    """
    letters = ["A0", "0"] + [f"X{index + 1}" for index in range(extra_letters)]
    return Presentation.with_zero_equations(letters)


def gap_instance() -> Presentation:
    """An instance in neither of the Main Lemma's inseparable sets."""
    return Presentation.with_zero_equations(
        ["A0", "0"],
        [Equation.make(["A0", "A0"], ["A0"])],
    )


def positive_chain_family(chain_length: int) -> Presentation:
    """Positive instances with derivations of length ``Θ(chain_length)``.

    Letters ``A0, B1..Bn, 0`` with equations

        A0·A0 = A0        (pump A0 to any power)
        A0·A0 = B1        (start the chain)
        Bᵢ·A0 = Bᵢ₊₁      (consume one A0 per link)
        Bₙ·A0 = 0         (finish)

    ``A0 = 0`` holds in every model (``A0 = A0^{n+2} = B1·A0^n = ... = 0``)
    and the shortest derivation grows linearly with ``n``, so the family
    scales direction (A) end to end: word-problem search, encoding size
    and guided-proof length.
    """
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    letters = ["A0"] + [f"B{index + 1}" for index in range(chain_length)] + ["0"]
    equations = [
        Equation.make(["A0", "A0"], ["A0"]),
        Equation.make(["A0", "A0"], ["B1"]),
    ]
    for index in range(1, chain_length):
        equations.append(Equation.make([f"B{index}", "A0"], [f"B{index + 1}"]))
    equations.append(Equation.make([f"B{chain_length}", "A0"], ["0"]))
    return Presentation.with_zero_equations(letters, equations)


def negative_family(extra_letters: int, *, squares_to_zero: bool = True) -> Presentation:
    """Negative instances with growing alphabets.

    Letters ``A0, X1..Xk, 0``; with ``squares_to_zero`` each extra letter
    carries the equation ``Xᵢ·Xᵢ = 0``, all satisfied by the 3-element
    nilpotent semigroup (``Xᵢ ↦ a²``) — so direction (B) still has its
    counter-model while the encoding grows.
    """
    letters = ["A0"] + [f"X{index + 1}" for index in range(extra_letters)] + ["0"]
    equations = []
    if squares_to_zero:
        for index in range(extra_letters):
            name = f"X{index + 1}"
            equations.append(Equation.make([name, name], ["0"]))
    return Presentation.with_zero_equations(letters, equations)

"""Seeded random generators for property tests and scaling benchmarks.

Everything here is deterministic in its ``seed`` argument, so failures
reproduce and benchmarks are stable run to run.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.template import TemplateDependency, Variable
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Schema
from repro.relational.values import Const


def _default_schema(arity: int) -> Schema:
    return Schema([f"A{index + 1}" for index in range(arity)])


def random_td(
    *,
    arity: int = 3,
    antecedents: int = 3,
    variables_per_column: int = 2,
    existential_probability: float = 0.5,
    seed: int = 0,
    schema: Optional[Schema] = None,
) -> TemplateDependency:
    """A random typed template dependency.

    Each column ``c`` owns a pool of ``variables_per_column`` variables
    (typing restriction by construction). Antecedent atoms draw uniformly
    from the pools; each conclusion component is, with
    ``existential_probability``, a fresh existential variable, else a pool
    variable that occurred in some antecedent.
    """
    rng = random.Random(seed)
    schema = schema if schema is not None else _default_schema(arity)
    pools = [
        [Variable(f"c{column}v{index}") for index in range(variables_per_column)]
        for column in range(schema.arity)
    ]
    antecedent_atoms = [
        tuple(rng.choice(pools[column]) for column in range(schema.arity))
        for __ in range(antecedents)
    ]
    used_per_column: list[list[Variable]] = [
        sorted(
            {atom[column] for atom in antecedent_atoms},
            key=lambda variable: variable.name,
        )
        for column in range(schema.arity)
    ]
    conclusion = []
    for column in range(schema.arity):
        if rng.random() < existential_probability or not used_per_column[column]:
            conclusion.append(Variable(f"c{column}star"))
        else:
            conclusion.append(rng.choice(used_per_column[column]))
    return TemplateDependency(
        schema, antecedent_atoms, tuple(conclusion), name=f"random-td-{seed}"
    )


def random_full_td(
    *,
    arity: int = 3,
    antecedents: int = 3,
    variables_per_column: int = 2,
    seed: int = 0,
    schema: Optional[Schema] = None,
) -> TemplateDependency:
    """A random *full* TD (no existential variables, chase terminates)."""
    return random_td(
        arity=arity,
        antecedents=antecedents,
        variables_per_column=variables_per_column,
        existential_probability=0.0,
        seed=seed,
        schema=schema,
    )


def random_eid(
    *,
    arity: int = 3,
    antecedents: int = 2,
    conclusions: int = 2,
    variables_per_column: int = 2,
    existential_probability: float = 0.4,
    seed: int = 0,
    schema: Optional[Schema] = None,
) -> EmbeddedImplicationalDependency:
    """A random typed EID whose conclusion atoms share existentials.

    Column pools enforce the typing restriction as in :func:`random_td`.
    Each column owns one existential variable; a conclusion cell is,
    with ``existential_probability``, that shared existential (the same
    variable across all conclusion atoms — the witness-sharing that
    makes an EID conjunction stronger than its TD split), else an
    antecedent variable of the column.
    """
    rng = random.Random(seed)
    schema = schema if schema is not None else _default_schema(arity)
    pools = [
        [Variable(f"c{column}v{index}") for index in range(variables_per_column)]
        for column in range(schema.arity)
    ]
    antecedent_atoms = [
        tuple(rng.choice(pools[column]) for column in range(schema.arity))
        for __ in range(antecedents)
    ]
    used_per_column = [
        sorted(
            {atom[column] for atom in antecedent_atoms},
            key=lambda variable: variable.name,
        )
        for column in range(schema.arity)
    ]
    existential_per_column = [
        Variable(f"c{column}star") for column in range(schema.arity)
    ]
    conclusion_atoms = []
    for __ in range(conclusions):
        atom = []
        for column in range(schema.arity):
            if rng.random() < existential_probability or not used_per_column[column]:
                atom.append(existential_per_column[column])
            else:
                atom.append(rng.choice(used_per_column[column]))
        conclusion_atoms.append(tuple(atom))
    return EmbeddedImplicationalDependency(
        schema, antecedent_atoms, conclusion_atoms, name=f"random-eid-{seed}"
    )


def weakly_acyclic_dependencies(
    *,
    count: int = 2,
    arity: int = 3,
    include_eids: bool = False,
    seed: int = 0,
    schema: Optional[Schema] = None,
    max_attempts: int = 200,
) -> list:
    """A random *weakly acyclic* dependency set (every chase terminates).

    Draws candidate sets of embedded :func:`random_td` (plus one
    :func:`random_eid` when ``include_eids``) and keeps the first that
    passes :func:`repro.chase.termination.is_weakly_acyclic` — the
    standard sufficient criterion under which **all** chase orders
    terminate polynomially, which is what makes these sets safe ground
    truth for kernel-differential testing. Deterministic in ``seed``.
    """
    from repro.chase.termination import is_weakly_acyclic

    schema = schema if schema is not None else _default_schema(arity)
    for attempt in range(max_attempts):
        base = seed * 1_000_003 + attempt * 7_919
        dependencies: list = [
            random_td(
                arity=schema.arity,
                antecedents=2 + (base + index) % 2,
                existential_probability=0.35,
                seed=base + index,
                schema=schema,
            )
            for index in range(count)
        ]
        if include_eids:
            dependencies.append(
                random_eid(arity=schema.arity, seed=base + count, schema=schema)
            )
        if is_weakly_acyclic(dependencies):
            return dependencies
    raise RuntimeError(
        f"no weakly acyclic set found in {max_attempts} attempts (seed {seed})"
    )


def random_instance(
    *,
    arity: int = 3,
    rows: int = 10,
    constants_per_column: int = 3,
    seed: int = 0,
    schema: Optional[Schema] = None,
) -> Instance:
    """A random typed database instance.

    Column ``c`` draws from its own pool of ``constants_per_column``
    constants, so the typing restriction holds by construction.
    """
    rng = random.Random(seed)
    schema = schema if schema is not None else _default_schema(arity)
    instance = Instance(schema)
    for __ in range(rows):
        instance.add(
            tuple(
                Const((f"col{column}", rng.randrange(constants_per_column)))
                for column in range(schema.arity)
            )
        )
    return instance


def random_cq(
    *,
    arity: int = 3,
    body_atoms: int = 3,
    variables_per_column: int = 2,
    head_size: int = 2,
    redundant_atoms: int = 0,
    seed: int = 0,
    schema: Optional[Schema] = None,
) -> ConjunctiveQuery:
    """A random typed conjunctive query, optionally with foldable padding.

    The core body draws from per-column variable pools (typed by
    construction); the head is a random sample of variables that occur
    in the body (safety by construction). ``redundant_atoms`` appends
    partially alpha-renamed copies of core atoms — each renamed cell
    gets a fresh variable occurring nowhere else, so the copy folds
    back onto its original and :meth:`ConjunctiveQuery.minimized` has
    genuine work to do. Deterministic in ``seed``.
    """
    rng = random.Random(seed)
    schema = schema if schema is not None else _default_schema(arity)
    pools = [
        [Variable(f"c{column}v{index}") for index in range(variables_per_column)]
        for column in range(schema.arity)
    ]
    body = [
        tuple(rng.choice(pools[column]) for column in range(schema.arity))
        for __ in range(body_atoms)
    ]
    used = sorted(
        {variable for atom in body for variable in atom},
        key=lambda variable: variable.name,
    )
    head = tuple(rng.sample(used, min(head_size, len(used))))
    head_set = set(head)
    for number in range(redundant_atoms):
        original = body[rng.randrange(body_atoms)]
        copy = []
        for column, variable in enumerate(original):
            if variable not in head_set and rng.random() < 0.7:
                copy.append(Variable(f"c{column}pad{number}"))
            else:
                copy.append(variable)
        body.append(tuple(copy))
    return ConjunctiveQuery(schema, head, body, name=f"random-cq-{seed}")


def disguise(
    dependency: TemplateDependency, *, seed: int = 0, tag: str = "d"
) -> TemplateDependency:
    """A structurally identical but syntactically different copy.

    Alpha-renames every variable (suffixing ``tag``) and shuffles the
    antecedent order — the two transformations the batch service's
    canonical hashing must see through. The result is
    ``structurally_equal`` to the input but rarely ``==`` to it.
    """
    rng = random.Random(seed)
    mapping = {
        variable: Variable(f"{variable.name}_{tag}{seed}")
        for variable in dependency.variables()
    }
    renamed = dependency.rename(mapping)
    atoms = list(renamed.antecedents)
    rng.shuffle(atoms)
    return TemplateDependency(
        renamed.schema, atoms, renamed.conclusion, name=dependency.name
    )


def inference_workload(
    *,
    queries: int = 100,
    duplicate_fraction: float = 0.3,
    seed: int = 0,
) -> tuple[list[TemplateDependency], list[TemplateDependency]]:
    """A batch-service workload: one dependency set, many targets.

    The premise set is binary transitivity (full, so every chase
    terminates and each query is decided). Targets mix provable path
    closures of varying length with random full TDs (mostly refutable);
    with probability ``duplicate_fraction`` a target is instead a
    *disguised* copy (alpha-renamed, antecedents shuffled) of an earlier
    one, exercising canonical deduplication and the result cache the way
    real repeated traffic would. Deterministic in ``seed``.
    """
    if queries < 1:
        raise ValueError("queries must be positive")
    rng = random.Random(seed)
    schema = Schema(["FROM", "TO"])
    dependencies, _ = transitivity_family(2)
    targets: list[TemplateDependency] = []
    for number in range(queries):
        if targets and rng.random() < duplicate_fraction:
            original = rng.choice(targets)
            targets.append(disguise(original, seed=number, tag="q"))
            continue
        if rng.random() < 0.5:
            _, path_target = transitivity_family(rng.randrange(3, 9))
            targets.append(disguise(path_target, seed=number, tag="p"))
        else:
            targets.append(
                random_full_td(
                    arity=2,
                    antecedents=rng.randrange(3, 6),
                    variables_per_column=3,
                    seed=seed * 100_003 + number,
                    schema=schema,
                )
            )
    return list(dependencies), targets


def transitivity_family(path_length: int) -> tuple[list[TemplateDependency], TemplateDependency]:
    """Full-TD implication instances of growing difficulty.

    Returns (``{transitivity}``, ``path_length``-step transitivity): the
    single binary transitivity TD provably implies its ``k``-step
    closure, with chase work growing in ``k``. Untyped on purpose (the
    classic relational shape); used by the chase-scaling benchmark E9.
    """
    if path_length < 2:
        raise ValueError("path_length must be >= 2")
    schema = Schema(["FROM", "TO"])
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    transitivity = TemplateDependency(
        schema, [(x, y), (y, z)], (x, z), name="transitivity"
    )
    chain_variables = [Variable(f"p{index}") for index in range(path_length + 1)]
    target = TemplateDependency(
        schema,
        [
            (chain_variables[index], chain_variables[index + 1])
            for index in range(path_length)
        ],
        (chain_variables[0], chain_variables[path_length]),
        name=f"path-{path_length}",
    )
    return [transitivity], target

"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``infer`` — the paper's inference problem on dependency files:
  does the set imply the target? Exit code 0 = proved, 1 = disproved,
  2 = unknown (the honest third value).
* ``batch`` — the batch inference service: a file of targets in, a
  per-target verdict table plus cache/dedup statistics out, with an
  optional worker pool and on-disk result cache.
* ``serve`` — the long-lived asyncio HTTP server over the same service:
  concurrent clients are micro-batched into shared runs, so dedup and
  the result cache work across clients.
* ``stats`` — poll a running server's ``/v1/stats`` and render the
  counters and per-stage latency histograms as tables (``--watch`` for
  a live view).
* ``models`` — drive a running server's maintained universal models:
  register a dependency program with base facts, stream inserts and
  deletes (incremental re-chase server-side), check implications
  against the maintained fixpoint, list/inspect/drop.
* ``classify`` — run the Main-Theorem classifier on a presentation file
  (direction (A), then direction (B), else UNKNOWN).
* ``encode`` — show the ``φ ↦ (D, D0)`` encoding for a presentation
  (sizes, and optionally every dependency).
* ``diagram`` — render a dependency's Figure-1-style diagram (ASCII or
  Graphviz DOT).
* ``demo`` — a one-screen tour: both directions of the Reduction
  Theorem on the canonical instances.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.core.inference import Semantics, infer
from repro.dependencies.diagram import diagram_of
from repro.dependencies.parser import parse_dependency
from repro.dependencies.render import render_ascii, render_dot
from repro.errors import ReproError
from repro.io.textfmt import parse_dependency_file, parse_presentation_text
from repro.reduction.encode import encode
from repro.reduction.theorem import InstanceClass, classify_instance

#: Exit codes for the three-valued commands.
EXIT_PROVED = 0
EXIT_DISPROVED = 1
EXIT_UNKNOWN = 2
EXIT_USAGE = 64


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gurevich & Lewis (1982): template-dependency inference, runnable.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    infer_cmd = commands.add_parser(
        "infer", help="does a dependency file imply a target dependency?"
    )
    infer_cmd.add_argument("--deps", required=True, help="dependency file (one per line)")
    infer_cmd.add_argument("target", help="target dependency, e.g. 'R(x,y)->R(y,x)'")
    infer_cmd.add_argument(
        "--semantics", choices=["unrestricted", "finite"], default="unrestricted"
    )
    infer_cmd.add_argument("--max-steps", type=int, default=10_000)
    infer_cmd.add_argument("--max-seconds", type=float, default=30.0)
    infer_cmd.add_argument(
        "--dump-certificate",
        metavar="FILE",
        help="write the proof trace (PROVED) or counterexample database "
        "(DISPROVED) as JSON",
    )

    batch_cmd = commands.add_parser(
        "batch",
        help="batch inference: dedup, result cache and a parallel chase pool",
    )
    batch_cmd.add_argument("--deps", required=True, help="dependency file (one per line)")
    batch_cmd.add_argument(
        "--targets", required=True, help="target dependency file (one per line)"
    )
    batch_cmd.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for cache misses (0 = in-process serial)",
    )
    batch_cmd.add_argument(
        "--cache",
        metavar="FILE",
        help="JSON-lines result cache; read on start, appended on new verdicts",
    )
    batch_cmd.add_argument(
        "--race",
        action="store_true",
        help="race the STANDARD and SEMI_NAIVE chase per query",
    )
    batch_cmd.add_argument("--max-steps", type=int, default=10_000)
    batch_cmd.add_argument("--max-seconds", type=float, default=30.0)
    batch_cmd.add_argument(
        "--share-budget",
        action="store_true",
        help="treat --max-steps/--max-seconds as a whole-batch budget, "
        "divided across the queries actually executed",
    )

    serve_cmd = commands.add_parser(
        "serve",
        help="long-lived HTTP inference server (asyncio, micro-batching)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8765, help="0 binds an ephemeral port"
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for cache misses (0 = in-process serial)",
    )
    serve_cmd.add_argument(
        "--cache-path",
        metavar="FILE",
        help="JSON-lines disk cache tier; verdicts survive restarts",
    )
    serve_cmd.add_argument(
        "--race",
        action="store_true",
        help="race the STANDARD and SEMI_NAIVE chase per query",
    )
    serve_cmd.add_argument(
        "--window-ms",
        type=float,
        default=10.0,
        help="micro-batch coalescing window (milliseconds; 0 disables)",
    )
    serve_cmd.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="cap on queries coalesced into one run",
    )
    serve_cmd.add_argument(
        "--max-steps",
        type=int,
        default=10_000,
        help="per-query budget ceiling (chase steps)",
    )
    serve_cmd.add_argument(
        "--max-rows",
        type=int,
        default=50_000,
        help="per-query budget ceiling (instance rows)",
    )
    serve_cmd.add_argument(
        "--max-seconds",
        type=float,
        default=30.0,
        help="per-query budget ceiling (wall-clock seconds)",
    )
    serve_cmd.add_argument(
        "--max-models",
        type=int,
        default=32,
        help="maintained universal models held before LRU eviction",
    )
    serve_cmd.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="admission-queue depth; requests past it are shed with "
        "429 + Retry-After",
    )
    serve_cmd.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds to finish in-flight queries on shutdown "
        "(/readyz answers 503 while draining)",
    )
    serve_cmd.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="worker-pool rebuilds one batch may consume after worker "
        "crashes before undecided queries are answered FAILED",
    )

    stats_cmd = commands.add_parser(
        "stats",
        help="render a running server's /v1/stats as tables",
    )
    stats_cmd.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="server base URL (default: http://127.0.0.1:8765)",
    )
    stats_cmd.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        help="re-poll and re-render every SECONDS until interrupted",
    )

    models_cmd = commands.add_parser(
        "models",
        help="maintained universal models on a running server (/v1/models)",
    )
    url_parent = argparse.ArgumentParser(add_help=False)
    url_parent.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="server base URL (default: http://127.0.0.1:8765)",
    )
    models_actions = models_cmd.add_subparsers(dest="action", required=True)
    models_actions.add_parser(
        "list", parents=[url_parent], help="summaries of registered models"
    )
    register_cmd = models_actions.add_parser(
        "register",
        parents=[url_parent],
        help="register a dependency program + base facts as a model",
    )
    register_cmd.add_argument(
        "--deps", required=True, help="dependency file (one per line)"
    )
    register_cmd.add_argument(
        "--facts",
        help="base-fact file: one row per line, space- or comma-separated "
        "constant names (# comments ignored)",
    )
    info_cmd = models_actions.add_parser(
        "info", parents=[url_parent], help="one model's summary"
    )
    info_cmd.add_argument("model_id")
    drop_cmd = models_actions.add_parser(
        "drop", parents=[url_parent], help="forget a model"
    )
    drop_cmd.add_argument("model_id")
    facts_cmd = models_actions.add_parser(
        "facts",
        parents=[url_parent],
        help="insert/delete base facts (incremental re-chase server-side)",
    )
    facts_cmd.add_argument("model_id")
    facts_cmd.add_argument("--insert", help="fact file of rows to insert")
    facts_cmd.add_argument("--delete", help="fact file of rows to delete")
    implies_cmd = models_actions.add_parser(
        "implies",
        parents=[url_parent],
        help="does a dependency hold in the maintained model's core?",
    )
    implies_cmd.add_argument("model_id")
    implies_cmd.add_argument(
        "target", help="target dependency, e.g. 'R(x,y)->R(y,x)'"
    )

    analyze_cmd = commands.add_parser(
        "analyze",
        help="static analysis of a dependency file: fragment, termination "
        "certificate, strata, goal-directed pruning",
    )
    analyze_cmd.add_argument(
        "--deps", required=True, help="dependency file (one per line)"
    )
    analyze_cmd.add_argument(
        "--target",
        help="optional target dependency; also reports the pruned program "
        "an implication query against it would chase",
    )
    analyze_cmd.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    classify_cmd = commands.add_parser(
        "classify", help="Main-Theorem classification of a presentation file"
    )
    classify_cmd.add_argument("presentation", help="presentation file")
    classify_cmd.add_argument("--max-word-length", type=int, default=8)
    classify_cmd.add_argument("--max-semigroup-size", type=int, default=5)

    encode_cmd = commands.add_parser(
        "encode", help="show the (D, D0) encoding of a presentation file"
    )
    encode_cmd.add_argument("presentation", help="presentation file")
    encode_cmd.add_argument(
        "--full", action="store_true", help="print every dependency"
    )

    diagram_cmd = commands.add_parser(
        "diagram", help="render a typed dependency's diagram"
    )
    diagram_cmd.add_argument("dependency", help="dependency text")
    diagram_cmd.add_argument("--dot", action="store_true", help="emit Graphviz DOT")

    commands.add_parser("demo", help="one-screen tour of the reduction")
    return parser


def _cmd_infer(args: argparse.Namespace) -> int:
    dependencies = parse_dependency_file(Path(args.deps).read_text())
    schema = dependencies[0].schema if dependencies else None
    target = parse_dependency(args.target, schema)
    report = infer(
        dependencies,
        target,
        semantics=Semantics(args.semantics),
        budget=Budget(max_steps=args.max_steps, max_seconds=args.max_seconds),
    )
    print(report.describe())
    if report.finite_counterexample is not None:
        print("counterexample database:")
        print(report.finite_counterexample.pretty())
    if args.dump_certificate:
        _dump_certificate(report, Path(args.dump_certificate))
        print(f"certificate written to {args.dump_certificate}")
    if report.status is InferenceStatus.PROVED:
        return EXIT_PROVED
    if report.status is InferenceStatus.DISPROVED:
        return EXIT_DISPROVED
    return EXIT_UNKNOWN


def _dump_certificate(report, path: Path) -> None:
    """Serialize whichever certificate the report carries."""
    import json

    from repro.io.json_codec import instance_to_json, trace_to_json

    payload: dict = {"status": report.status.value}
    if report.status is InferenceStatus.PROVED:
        payload["kind"] = "chase-proof"
        payload["trace"] = trace_to_json(report.chase_outcome.chase_result.steps)
    elif report.status is InferenceStatus.DISPROVED:
        payload["kind"] = "finite-counterexample"
        payload["database"] = instance_to_json(report.finite_counterexample)
    else:
        payload["kind"] = "none"
    path.write_text(json.dumps(payload, indent=2))


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.service import InferenceService, JsonLinesStore, ResultCache

    dependencies = parse_dependency_file(Path(args.deps).read_text())
    schema = dependencies[0].schema if dependencies else None
    targets = parse_dependency_file(Path(args.targets).read_text(), schema)
    if not targets:
        # Exit 0 must mean "every target proved", never "nothing checked".
        print(f"error: no targets found in {args.targets}", file=sys.stderr)
        return EXIT_USAGE
    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    store = JsonLinesStore(Path(args.cache)) if args.cache else None
    with InferenceService(
        cache=ResultCache(store=store),
        workers=args.workers,
        race_variants=args.race,
        share_budget=args.share_budget,
    ) as service:
        report = service.run_batch(
            dependencies,
            targets,
            budget=Budget(max_steps=args.max_steps, max_seconds=args.max_seconds),
        )
    print(f"{'#':>4}  {'status':<10} {'source':<6} target")
    for item in report.items:
        source = "cache" if item.from_cache else ("dedup" if item.deduplicated else "chase")
        print(f"{item.index:>4}  {item.outcome.status.value:<10} {source:<6} {targets[item.index]}")
    print()
    print(report.stats.describe())
    print("cache:", service.cache.stats.describe())
    statuses = {item.outcome.status for item in report.items}
    if InferenceStatus.UNKNOWN in statuses:
        return EXIT_UNKNOWN
    if InferenceStatus.DISPROVED in statuses:
        return EXIT_DISPROVED
    return EXIT_PROVED


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import InferenceService, JsonLinesStore, ResultCache
    from repro.service.server import InferenceServer

    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.window_ms < 0 or args.max_batch < 1:
        print(
            "error: --window-ms must be >= 0 and --max-batch >= 1",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.max_models < 1:
        print("error: --max-models must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.max_queue < 1 or args.drain_timeout < 0 or args.max_restarts < 0:
        print(
            "error: need --max-queue >= 1, --drain-timeout >= 0 and "
            "--max-restarts >= 0",
            file=sys.stderr,
        )
        return EXIT_USAGE
    store = JsonLinesStore(Path(args.cache_path)) if args.cache_path else None
    service = InferenceService(
        cache=ResultCache(store=store),
        workers=args.workers,
        race_variants=args.race,
        max_restarts=args.max_restarts,
    )
    server = InferenceServer(
        service,
        host=args.host,
        port=args.port,
        batch_window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        default_budget=Budget(
            max_steps=args.max_steps,
            max_rows=args.max_rows,
            max_seconds=args.max_seconds,
        ),
        max_models=args.max_models,
        max_queue=args.max_queue,
        drain_timeout=args.drain_timeout,
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"repro serve: listening on http://{server.host}:{server.port} "
            f"(workers={args.workers}, window={args.window_ms:g}ms, "
            f"cache={'disk:' + args.cache_path if args.cache_path else 'memory'})",
            flush=True,
        )
        await server.serve_forever()

    try:
        service.warm_up()  # fork workers before the event loop exists
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        service.close()
    return EXIT_PROVED


def _fmt_number(value: object) -> str:
    """Counters print as ints, seconds-ish floats with fixed precision."""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6f}" if abs(value) < 1 else f"{value:.3f}"
    if isinstance(value, (int, float)):
        return str(int(value))
    return str(value)


def _histogram_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> str:
    """Estimate the ``q``-quantile of a snapshot histogram sample.

    ``counts`` is the non-cumulative per-bucket form with the +Inf slot
    last (the snapshot JSON shape). The estimate is the upper bound of
    the bucket the quantile falls in — the same resolution Prometheus'
    ``histogram_quantile`` has, minus the interpolation.
    """
    total = sum(counts)
    if total == 0:
        return "-"
    rank = q * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= rank:
            return f"{bound:g}"
    return f">{bounds[-1]:g}" if bounds else "-"


def _render_stats(payload: dict) -> str:
    """The ``repro stats`` tables for one ``/v1/stats`` payload."""
    lines: list[str] = []

    def section(title: str, mapping: dict) -> None:
        lines.append(f"{title}:")
        for key, value in mapping.items():
            if isinstance(value, dict):
                rendered = ", ".join(
                    f"{k}={_fmt_number(v)}" for k, v in value.items()
                )
                lines.append(f"  {key:<24} {rendered}")
            else:
                lines.append(f"  {key:<24} {_fmt_number(value)}")
        lines.append("")

    section("server", dict(payload.get("server", {})))
    section("cache", dict(payload.get("cache", {})))
    section("batching", dict(payload.get("batching", {})))

    families = payload.get("metrics", {}).get("families", [])
    scalars: list[tuple[str, str]] = []
    histograms: list[tuple[str, int, str, str, str, str]] = []
    for family in families:
        label_names = family.get("labels", [])
        for sample in family.get("samples", []):
            labels = ",".join(
                f'{name}="{value}"'
                for name, value in zip(label_names, sample.get("labels", []))
            )
            series = family["name"] + (f"{{{labels}}}" if labels else "")
            if family.get("kind") == "histogram":
                count = int(sample.get("count", 0))
                mean = (
                    f"{sample.get('value', 0.0) / count:.6f}"
                    if count
                    else "-"
                )
                bounds = family.get("buckets", [])
                counts = sample.get("bucket_counts", [])
                histograms.append(
                    (
                        series,
                        count,
                        mean,
                        _histogram_quantile(bounds, counts, 0.5),
                        _histogram_quantile(bounds, counts, 0.9),
                        _histogram_quantile(bounds, counts, 0.99),
                    )
                )
            else:
                scalars.append((series, _fmt_number(sample.get("value", 0))))
    if scalars:
        width = max(len(name) for name, _ in scalars)
        lines.append("counters & gauges:")
        for name, value in scalars:
            lines.append(f"  {name:<{width}}  {value}")
        lines.append("")
    if histograms:
        width = max(len(name) for name, *_ in histograms)
        lines.append("histograms (bucket-resolution quantiles):")
        header = (
            f"  {'series':<{width}}  {'count':>7} {'mean':>10} "
            f"{'p50':>8} {'p90':>8} {'p99':>8}"
        )
        lines.append(header)
        for name, count, mean, p50, p90, p99 in histograms:
            lines.append(
                f"  {name:<{width}}  {count:>7} {mean:>10} "
                f"{p50:>8} {p90:>8} {p99:>8}"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _cmd_stats(args: argparse.Namespace) -> int:
    import time

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.watch:
        if args.watch <= 0:
            print("error: --watch must be positive", file=sys.stderr)
            return EXIT_USAGE
        try:
            while True:
                rendered = _render_stats(client.stats())
                # Clear screen + home, like watch(1).
                print("\033[2J\033[H" + rendered, end="", flush=True)
                time.sleep(args.watch)
        except KeyboardInterrupt:
            print()
        return EXIT_PROVED
    print(_render_stats(client.stats()), end="")
    return EXIT_PROVED


def _parse_fact_rows(text: str) -> list[tuple]:
    """Parse a fact file: one row per line, constant names separated by
    spaces or commas; blank lines and ``#`` comments ignored."""
    from repro.relational.values import Const

    rows: list[tuple] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        rows.append(tuple(Const(token) for token in line.replace(",", " ").split()))
    return rows


def _print_model_summary(info: dict) -> None:
    print(
        f"{info.get('model_id', '?'):<12} rows={info.get('rows', 0):<6} "
        f"base={info.get('base_rows', 0):<6} "
        f"deps={info.get('dependencies', 0):<4} "
        f"status={info.get('status', '?')}"
    )


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.action == "list":
        answer = client.models()
        models = answer.get("models", [])
        if not models:
            print("no models registered")
        for info in models:
            _print_model_summary(info)
        print(
            f"({len(models)}/{answer.get('max_models', '?')} slots, "
            f"{answer.get('evictions', 0)} evictions)"
        )
        return EXIT_PROVED
    if args.action == "register":
        dependencies = parse_dependency_file(Path(args.deps).read_text())
        if not dependencies:
            print(f"error: no dependencies in {args.deps}", file=sys.stderr)
            return EXIT_USAGE
        rows = (
            _parse_fact_rows(Path(args.facts).read_text())
            if args.facts
            else []
        )
        answer = client.register_model(
            dependencies[0].schema, dependencies, rows
        )
        report = answer.get("report", {})
        print(
            f"registered {answer.get('model_id')}: "
            f"{report.get('applied', 0)} base facts, "
            f"{report.get('derived', 0)} derived rows, "
            f"status {report.get('status', '?')}"
        )
        return EXIT_PROVED
    if args.action == "info":
        _print_model_summary(client.model_info(args.model_id))
        return EXIT_PROVED
    if args.action == "drop":
        client.drop_model(args.model_id)
        print(f"dropped {args.model_id}")
        return EXIT_PROVED
    if args.action == "facts":
        insert = (
            _parse_fact_rows(Path(args.insert).read_text())
            if args.insert
            else []
        )
        delete = (
            _parse_fact_rows(Path(args.delete).read_text())
            if args.delete
            else []
        )
        if not insert and not delete:
            print("error: give --insert and/or --delete", file=sys.stderr)
            return EXIT_USAGE
        answer = client.model_facts(args.model_id, insert=insert, delete=delete)
        for report in answer.get("reports", []):
            print(
                f"{report.get('op')}: applied={report.get('applied', 0)} "
                f"derived={report.get('derived', 0)} "
                f"overdeleted={report.get('overdeleted', 0)} "
                f"status={report.get('status', '?')}"
            )
        _print_model_summary(answer.get("model", {}))
        return EXIT_PROVED
    # implies: three-valued exit code discipline like `infer` (the
    # maintained-model check is two-valued — the model is materialized).
    target = parse_dependency(args.target)
    implied = client.model_implies(args.model_id, target)
    print(f"{'implied' if implied else 'not implied'}: {target}")
    return EXIT_PROVED if implied else EXIT_DISPROVED


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import analyze, prune_for_target
    from repro.chase.implication import FrozenStart

    dependencies = parse_dependency_file(Path(args.deps).read_text())
    schema = dependencies[0].schema if dependencies else None
    target = (
        parse_dependency(args.target, schema)
        if args.target is not None
        else None
    )
    report = analyze(tuple(dependencies))
    program = prune_for_target(tuple(dependencies), target)
    derived = None
    if program.certificate is not None and target is not None:
        start = FrozenStart(target)
        derived = program.certificate.derived_budget(
            len(start.instance.active_domain()), len(start.instance)
        )
    if args.json:
        payload = program.provenance(
            applied=derived is not None, derived=derived
        )
        payload["position_count"] = report.position_count
        payload["regular_edges"] = report.regular_edge_count
        payload["special_edges"] = report.special_edge_count
        payload["weakly_acyclic"] = report.weakly_acyclic
        payload["jointly_acyclic"] = report.jointly_acyclic
        print(json.dumps(payload, indent=2))
    else:
        attributes = list(schema.attributes) if schema is not None else None
        print(report.describe(attributes))
        if program.dropped:
            print("pruned for implication queries:")
            for entry in program.dropped:
                print(f"  - {entry.name}: {entry.reason}")
        if derived is not None:
            print(
                "derived budget vs "
                f"{args.target!r}: max_steps={derived.max_steps} "
                f"max_rows={derived.max_rows} (decisive verdict guaranteed)"
            )
    return EXIT_PROVED if report.certified else EXIT_UNKNOWN


def _cmd_classify(args: argparse.Namespace) -> int:
    presentation = parse_presentation_text(Path(args.presentation).read_text())
    outcome = classify_instance(
        presentation,
        max_word_length=args.max_word_length,
        max_semigroup_size=args.max_semigroup_size,
    )
    print(outcome.describe())
    if outcome.instance_class is InstanceClass.A0_COLLAPSES:
        print("derivation:", outcome.direction_a.derivation.describe())
        return EXIT_PROVED
    if outcome.instance_class is InstanceClass.FINITELY_REFUTABLE:
        print("counter-model:", outcome.direction_b.counter_model.describe())
        return EXIT_DISPROVED
    return EXIT_UNKNOWN


def _cmd_encode(args: argparse.Namespace) -> int:
    presentation = parse_presentation_text(Path(args.presentation).read_text())
    encoding = encode(presentation)
    print(encoding.describe())
    if args.full:
        print()
        for dependency in encoding.dependencies:
            print(f"{dependency.name}: {dependency}")
        print(f"{encoding.d0.name}: {encoding.d0}")
    return EXIT_PROVED


def _cmd_diagram(args: argparse.Namespace) -> int:
    dependency = parse_dependency(args.dependency)
    diagram = diagram_of(dependency)  # raises TypingError when untyped
    if args.dot:
        print(render_dot(diagram, dependency.name or "dependency"))
    else:
        print(render_ascii(diagram, str(dependency)))
    return EXIT_PROVED


def _cmd_demo(__args: argparse.Namespace) -> int:
    from repro.reduction.theorem import prove_direction_a, prove_direction_b
    from repro.workloads.instances import (
        gap_instance,
        negative_instance,
        positive_instance,
    )

    print("Gurevich & Lewis (1982), both directions, machine-verified:")
    print()
    report_a = prove_direction_a(positive_instance())
    print("positive instance:", report_a.describe())
    report_b = prove_direction_b(negative_instance())
    print("negative instance:", report_b.describe())
    outcome = classify_instance(gap_instance(), max_semigroup_size=4)
    print("gap instance:     ", outcome.describe())
    return EXIT_PROVED


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "infer": _cmd_infer,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "stats": _cmd_stats,
        "models": _cmd_models,
        "analyze": _cmd_analyze,
        "classify": _cmd_classify,
        "encode": _cmd_encode,
        "diagram": _cmd_diagram,
        "demo": _cmd_demo,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

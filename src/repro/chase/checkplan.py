"""Compiled model checking: ``holds_in``/``find_violation`` on join plans.

PR 3's compiled chase kernel (:mod:`repro.chase.plan`) made PROVED
verdicts fast but left *model checking* — "does this database satisfy
this dependency?" — on the generic backtracking search of
:func:`repro.relational.homomorphism.iter_homomorphisms`. That search is
the dominant cost of DISPROVED verdicts: verifying a counterexample
re-model-checks every dependency, the reduction's direction (B) checks a
candidate database against every ``Di(r)``, and the bounded
finite-counterexample search calls ``find_violation`` inside its repair
loop thousands of times.

This module compiles the check onto the same machinery the chase kernel
already uses, sharing its structural plan cache:

* the dependency's :class:`~repro.chase.plan.JoinPlan` supplies the
  name-sorted integer variable slots, the interned-row layout, and the
  precompiled conclusion-extension steps (``activity_steps`` — exactly
  the trigger-activity probe, which *is* the conclusion-extension check
  of model checking);
* a :class:`CheckPlan` adds the one thing model checking needs that the
  chase does not: a *cold* most-constrained-first join order over the
  antecedent atoms starting from no bound slots (the chase always seeds
  from a pivot row; the checker enumerates from scratch);
* the kernel-owned :func:`repro.kernel.joins.violation_walk` backtracks
  over that order against a :class:`~repro.chase.plan.KernelState`'s
  int-row inverted index and **early-exits** at the first antecedent
  match with no conclusion extension — `holds_in` never enumerates more
  matches than it must (and runs natively when the compiled join
  backend is active);
* a :class:`ModelChecker` shares one ``KernelState`` across many checks
  of the same instance (one interning pass per database, not one per
  dependency), which is the shape of every hot caller: verify a
  counterexample against a whole dependency set, model-check one
  finite-search candidate against ``D`` and the target, direction (B)'s
  database against every ``Di(r)``.

The generic search stays available as ``checker="legacy"`` (or
``REPRO_MODEL_CHECKER=legacy`` process-wide) and is held to identical
verdicts by the seeded differential suite
(``tests/chase/test_checker_differential.py``). The legacy body also
lives here, once — :func:`find_violation_legacy` is shared by
:class:`~repro.dependencies.template.TemplateDependency` and
:class:`~repro.dependencies.eid.EmbeddedImplicationalDependency` (a TD
is the EID special case with a one-atom conclusion conjunction), so the
two semantics cannot drift.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence

from repro.chase.plan import JoinPlan, compile_plan
from repro.kernel.joins import (
    AtomStep,
    KernelState,
    compile_steps,
    memoized,
    violation_walk,
)
from repro.dependencies.template import Variable, is_variable
from repro.relational.homomorphism import (
    extend_homomorphism,
    iter_homomorphisms,
)
from repro.relational.instance import Instance, Row

#: Which checker dependency methods use when the caller does not say.
#: Mirrors ``REPRO_CHASE_KERNEL``: flip a whole process back to the
#: generic homomorphism search for baselines and differential debugging.
DEFAULT_CHECKER = os.environ.get("REPRO_MODEL_CHECKER", "compiled")

_CHECKERS = ("compiled", "legacy")


def resolve_checker(checker: Optional[str]) -> str:
    """Normalize a ``checker=`` argument (None means the process default)."""
    checker = checker if checker is not None else DEFAULT_CHECKER
    if checker not in _CHECKERS:
        raise ValueError(
            f"unknown model checker {checker!r} (use one of {_CHECKERS})"
        )
    return checker


class CheckPlan:
    """A dependency's compiled model-check: cold join + extension probe.

    Wraps the structurally cached :class:`~repro.chase.plan.JoinPlan`
    (slot layout, conclusion-extension ``activity_steps``) and adds the
    cold antecedent join order. Compiled once per dependency structure.
    """

    __slots__ = ("plan", "antecedent_steps", "universal_variables")

    def __init__(self, dependency):
        plan = compile_plan(dependency)
        self.plan: JoinPlan = plan
        #: Full join over the antecedents with nothing pre-bound — the
        #: model checker has no pivot row to seed from.
        self.antecedent_steps: tuple[AtomStep, ...] = compile_steps(
            list(plan.antecedent_atom_slots), set()
        )
        #: Universal variables in slot order (0..n_universal-1): the
        #: witness dict layout, matching the legacy checker's assignment.
        self.universal_variables: tuple[Variable, ...] = tuple(
            sorted(dependency.universal_variables(), key=lambda v: v.name)
        )


#: Compiled-check memo, keyed structurally like the kernel's plan cache
#: (the inner :class:`JoinPlan` is shared with the chase through
#: :func:`repro.chase.plan.compile_plan`).
_CHECK_CACHE: dict = {}
_CHECK_CACHE_MAX = 2048


def compile_check(dependency) -> CheckPlan:
    """The memoized :class:`CheckPlan` for ``dependency``."""
    return memoized(_CHECK_CACHE, dependency, CheckPlan, _CHECK_CACHE_MAX)


def _find_violation_in_state(dependency, state: KernelState) -> Optional[dict]:
    """Compiled ``find_violation`` against an existing kernel state.

    The walk itself (first antecedent match with no conclusion
    extension, witness left in the registers) is kernel-owned —
    :func:`repro.kernel.joins.violation_walk` — so it runs on whichever
    join backend the process resolved.
    """
    check = compile_check(dependency)
    plan = check.plan
    regs = [0] * plan.n_slots
    if violation_walk(
        state, check.antecedent_steps, 0, regs, plan.activity_steps
    ):
        values = state.values
        return {
            variable: values[regs[slot]]
            for slot, variable in enumerate(check.universal_variables)
        }
    return None


def find_violation_legacy(dependency, instance: Instance) -> Optional[dict]:
    """The generic-search ``find_violation`` (the reference semantics).

    One body for TDs and EIDs: both expose ``antecedents`` and
    ``conclusions`` (a TD's ``conclusions`` is its single conclusion atom
    as a one-element conjunction), so the TD path *is* the EID path and
    the two cannot drift.
    """
    conclusions = list(dependency.conclusions)
    for assignment in iter_homomorphisms(
        dependency.antecedents, instance, flexible=is_variable
    ):
        extension = extend_homomorphism(
            assignment, conclusions, instance, flexible=is_variable
        )
        if extension is None:
            return dict(assignment)
    return None


def find_violation(
    dependency, instance: Instance, *, checker: Optional[str] = None
) -> Optional[dict]:
    """One-shot ``find_violation`` dispatch (compiled by default).

    The compiled path runs on the instance's cached kernel view
    (:meth:`~repro.relational.instance.Instance.kernel_view`), so
    repeated one-shot calls on one database pay the interning pass
    once; :class:`ModelChecker` remains the batch-of-dependencies
    convenience wrapper.
    """
    if resolve_checker(checker) == "legacy":
        return find_violation_legacy(dependency, instance)
    return _find_violation_in_state(dependency, instance.kernel_view())


def holds_in(
    dependency, instance: Instance, *, checker: Optional[str] = None
) -> bool:
    """One-shot ``holds_in`` dispatch (compiled by default)."""
    return find_violation(dependency, instance, checker=checker) is None


class ModelChecker:
    """Model-check many dependencies against one instance, sharing state.

    The compiled path interns the instance's rows into a
    :class:`KernelState` **once** (lazily, on the first query) and
    reuses it for every subsequent check — the shape of every hot
    caller: :func:`repro.chase.modelcheck.satisfies_all`, counterexample
    verification, direction (B)'s database-vs-every-``Di(r)`` sweep, and
    the finite-model search's repair loop.

    Mutating the instance between queries — through :meth:`add` or any
    out-of-band ``instance.add``/``instance.discard`` — is fully
    supported: the compiled path runs on the instance's *subscribed*
    kernel view (:meth:`~repro.relational.instance.Instance.kernel_view`),
    which the instance's own mutation hooks keep synchronized, so
    staleness is structurally impossible. (The previous design cached a
    detached :class:`KernelState` and detected out-of-band mutation by
    row *count*, which an equal-count discard+add defeats — the
    mutation epoch, ``instance.epoch``, now changes on every mutation
    and the differential suite pins the discard+add case.)
    """

    __slots__ = ("instance", "checker")

    def __init__(self, instance: Instance, *, checker: Optional[str] = None):
        self.instance = instance
        self.checker = resolve_checker(checker)

    def _kernel_state(self) -> KernelState:
        return self.instance.kernel_view()

    def add(self, row: Row) -> bool:
        """Insert ``row``; return True when it was genuinely new.

        Plain :meth:`Instance.add` — the arity check runs on every
        path, and the instance's mutation hook keeps the kernel view
        (if one exists yet) synchronized.
        """
        return self.instance.add(row)

    def find_violation(self, dependency) -> Optional[dict]:
        """A violating antecedent assignment of ``dependency``, or None."""
        if self.checker == "legacy":
            return find_violation_legacy(dependency, self.instance)
        return _find_violation_in_state(dependency, self._kernel_state())

    def holds_in(self, dependency) -> bool:
        """Does the instance satisfy ``dependency``?"""
        return self.find_violation(dependency) is None

    def satisfies_all(self, dependencies: Iterable) -> bool:
        """Does the instance satisfy every dependency? (early exit)"""
        return all(
            self.find_violation(dependency) is None
            for dependency in dependencies
        )

    def all_violations(
        self, dependencies: Sequence
    ) -> list[tuple[object, dict]]:
        """Every violated dependency with one witnessing assignment."""
        violations: list[tuple[object, dict]] = []
        for dependency in dependencies:
            witness = self.find_violation(dependency)
            if witness is not None:
                violations.append((dependency, witness))
        return violations

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ModelChecker checker={self.checker!r} "
            f"rows={len(self.instance)}>"
        )

"""Finite counterexample search.

Under the *finite* ("true database") semantics, ``D ⊭ d`` is witnessed by a
finite database satisfying ``D`` and violating ``d``. When the chase
diverges, such a witness may still exist — Fagin et al. (1981) showed the
finite and unrestricted semantics genuinely differ for TDs, and the paper
proves both versions undecidable. This module provides two bounded,
incomplete searchers for such witnesses:

* :func:`search_exhaustive` — enumerate every instance over small typed
  domains, smallest first (complete up to its size bound, exponential);
* :func:`search_random` — a randomized bounded-domain chase: repair
  violations by choosing existential witnesses among *existing* domain
  values (folding the instance back on itself) or occasionally minting a
  fresh value, restarting on failure.

Either search returning an instance is a **proof** of non-implication (the
witness is model-checked before being returned); returning ``None`` means
nothing was found within bounds — consistent with undecidability.
"""

from __future__ import annotations

import itertools
import random
import time
from typing import Optional, Sequence

from repro.chase.checkplan import ModelChecker
from repro.dependencies.classify import Dependency
from repro.dependencies.template import Variable
from repro.relational.instance import Instance
from repro.relational.values import Const, Value


def search_exhaustive(
    dependencies: Sequence[Dependency],
    target: Dependency,
    *,
    domain_size: int = 2,
    max_candidates: int = 100_000,
    checker: Optional[str] = None,
) -> Optional[Instance]:
    """Enumerate all instances over ``domain_size`` values per column.

    Candidate row spaces larger than ``max_candidates`` subsets are
    refused (returns None) rather than attempted. Instances are tried
    smallest-first, so the returned counterexample is minimum-size for the
    given domains. Each candidate is model-checked through one shared
    :class:`~repro.chase.checkplan.ModelChecker` (the target filter and
    the full dependency sweep reuse a single interned kernel state).
    """
    schema = target.schema
    row_space_size = domain_size ** schema.arity
    if row_space_size > 60 or 2 ** row_space_size > max_candidates:
        return None  # enumeration would be astronomically large
    typed = target.is_typed() and all(
        dependency.is_typed() for dependency in dependencies
    )
    if typed:
        # Disjoint per-column domains (the paper's typing restriction).
        domains = [
            [Const(("dom", column, index)) for index in range(domain_size)]
            for column in range(schema.arity)
        ]
    else:
        # Untyped dependencies move values between columns, so every
        # column must draw from one shared domain.
        shared = [Const(("dom", index)) for index in range(domain_size)]
        domains = [shared for __ in range(schema.arity)]
    row_space = [tuple(row) for row in itertools.product(*domains)]
    for size in range(1, len(row_space) + 1):
        for rows in itertools.combinations(row_space, size):
            candidate = Instance(schema, rows)
            model = ModelChecker(candidate, checker=checker)
            if model.find_violation(target) is None:
                continue
            if model.satisfies_all(dependencies):
                return candidate
    return None


def _existential_candidates(
    instance: Instance,
    column: int,
    fresh_budget: dict[int, int],
    max_fresh_per_column: int,
) -> list[Value]:
    """Values an existential variable in ``column`` may take."""
    candidates: list[Value] = sorted(
        instance.column_values(column), key=repr
    )
    used = fresh_budget.get(column, 0)
    if used < max_fresh_per_column:
        candidates.append(Const(("fm-fresh", column, used)))
    return candidates


def search_random(
    dependencies: Sequence[Dependency],
    target: Dependency,
    *,
    seed: int = 0,
    restarts: int = 50,
    max_repairs: int = 200,
    max_rows: int = 60,
    max_fresh_per_column: int = 3,
    max_seconds: float = 10.0,
    checker: Optional[str] = None,
) -> Optional[Instance]:
    """Randomized bounded-domain chase for a finite counterexample.

    Each attempt starts from the frozen antecedents of ``target`` and
    repeatedly repairs a violated dependency, choosing existential
    witnesses among the values already present in the right column (which
    is what lets infinite chase runs *fold* into finite models) or, with
    low probability, a fresh value. An attempt succeeds when every
    dependency holds and ``target`` is still violated. The search stops
    after ``restarts`` attempts or ``max_seconds`` of wall-clock time,
    whichever comes first.
    """
    rng = random.Random(seed)
    deadline = time.monotonic() + max_seconds
    for __ in range(restarts):
        if time.monotonic() >= deadline:
            return None
        start, __frozen = _frozen_start(target)
        witness = _attempt(
            start,
            dependencies,
            target,
            rng,
            max_repairs=max_repairs,
            max_rows=max_rows,
            max_fresh_per_column=max_fresh_per_column,
            deadline=deadline,
            checker=checker,
        )
        if witness is not None:
            return witness
    return None


def _frozen_start(target: Dependency) -> tuple[Instance, dict[Variable, Value]]:
    assignment: dict[Variable, Value] = {}
    for variable in sorted(target.universal_variables(), key=lambda v: v.name):
        assignment[variable] = Const(("frozen", variable.name))
    instance = Instance(
        target.schema,
        (
            tuple(assignment[variable] for variable in atom)
            for atom in target.antecedents
        ),
    )
    return instance, assignment


def _attempt(
    instance: Instance,
    dependencies: Sequence[Dependency],
    target: Dependency,
    rng: random.Random,
    *,
    max_repairs: int,
    max_rows: int,
    max_fresh_per_column: int,
    deadline: float,
    checker: Optional[str] = None,
) -> Optional[Instance]:
    fresh_budget: dict[int, int] = {}
    # One checker for the whole attempt: conclusion rows are added
    # through it, so the compiled kernel state stays synchronized
    # incrementally instead of being rebuilt per find_violation call.
    model = ModelChecker(instance, checker=checker)
    for __ in range(max_repairs):
        if time.monotonic() >= deadline:
            return None
        # Scan dependencies in a random order and repair the FIRST
        # violation found; scanning all of them per repair is wasted work.
        order = list(dependencies)
        rng.shuffle(order)
        dependency = None
        witness = None
        for candidate in order:
            witness = model.find_violation(candidate)
            if witness is not None:
                dependency = candidate
                break
        if dependency is None:
            if model.find_violation(target) is not None:
                return instance  # model-checked: deps hold, target fails
            return None  # every repair path satisfied the target too
        assignment: dict[Variable, Value] = dict(witness)
        for variable in sorted(
            dependency.existential_variables(), key=lambda v: v.name
        ):
            column = _column_of(dependency, variable)
            candidates = _existential_candidates(
                instance, column, fresh_budget, max_fresh_per_column
            )
            if not candidates:
                candidates = [Const(("fm-fresh", column, 0))]
            choice = rng.choice(candidates)
            if isinstance(choice, Const) and isinstance(choice.name, tuple):
                if choice.name[:1] == ("fm-fresh",) and choice not in instance.column_values(column):
                    fresh_budget[column] = fresh_budget.get(column, 0) + 1
            assignment[variable] = choice
        for atom in dependency.conclusions:
            model.add(tuple(assignment[variable] for variable in atom))
        if len(instance) > max_rows:
            return None
    return None


def _column_of(dependency: Dependency, variable: Variable) -> int:
    """First column the variable occupies in the dependency's conclusions."""
    for atom in dependency.conclusions:
        for column, term in enumerate(atom):
            if term == variable:
                return column
    raise ValueError(f"{variable!r} not in conclusions")


def search_finite_counterexample(
    dependencies: Sequence[Dependency],
    target: Dependency,
    *,
    seed: int = 0,
    exhaustive_domain_size: int = 2,
    restarts: int = 50,
    max_seconds: float = 10.0,
    checker: Optional[str] = None,
) -> Optional[Instance]:
    """Try the exhaustive search on tiny domains, then the randomized one.

    Any returned instance is a genuine finite counterexample (it has been
    model-checked against every dependency and the target).
    """
    witness = search_exhaustive(
        dependencies, target, domain_size=exhaustive_domain_size, checker=checker
    )
    if witness is not None:
        return witness
    return search_random(
        dependencies,
        target,
        seed=seed,
        restarts=restarts,
        max_seconds=max_seconds,
        checker=checker,
    )

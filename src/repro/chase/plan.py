"""Compiled join plans and the compiled chase kernel.

The generic engine re-derives its join strategy on every backtracking
node: :func:`repro.relational.homomorphism.iter_homomorphisms` recounts
bound cells to pick the next atom, rebuilds column probe patterns per
candidate, and keys assignments on :class:`Variable` objects through
dict hashing. A dependency's antecedent structure never changes, so all
of that can be decided **once**:

* a :class:`JoinPlan` fixes, per dependency, an atom join order chosen
  by static analysis (shared-variable connectivity), flat integer
  *slots* for the variables, and per-atom precomputed probe/bind/check
  column lists — plus one such order per *pivot* atom for semi-naive
  delta seeding, and a precompiled extension plan for the conclusion
  atoms (the trigger-activity check);
* rows are *interned* through the instance's
  :class:`~repro.relational.values.InternTable` to tuples of dense
  ints, so row hashing, equality and index keys are integer operations
  (:class:`~repro.kernel.joins.KernelState` keeps the int-row inverted
  index in sync as the chase fires);
* a :class:`Dispatcher` routes each delta row straight to the
  ``(dependency, pivot)`` pairs whose within-atom equality pattern the
  row satisfies, instead of unifying every row against every atom of
  every dependency, and a per-dependency *evaluated* memo never
  re-checks a match across rounds (activity is monotone: a trigger once
  fired or found inactive stays inactive forever);
* the compiled chase loop is delta-driven for both ``STANDARD`` and
  ``SEMI_NAIVE`` (round one's delta is the whole instance, which *is*
  the standard restricted chase with semi-naive bookkeeping).

The row/step/walker primitives live in :mod:`repro.kernel.joins` — the
engine layer this module shares with the compiled model checker
(:mod:`repro.chase.checkplan`) and the compiled homomorphism engine
(:mod:`repro.relational.homplan`). ``KernelState``,
``atom_equality_pattern`` and ``memoized`` are re-exported here for
their existing importers.

The kernel is differentially equal to the generic engine: same
:class:`~repro.chase.result.ChaseStatus`, replay-valid traces, and
final instances that agree up to null renaming (exactly, for full
dependency sets). Firing *order* inside a round may differ — as it
already does between hash-seed runs of the generic engine — which is
why the differential suite compares semantics, not step sequences.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.chase.result import ChaseResult, ChaseStatus, ChaseStep
from repro.dependencies.classify import Dependency
from repro.dependencies.template import Variable
from repro.kernel.joins import (
    AtomStep,
    IntRow,
    KernelState,
    atom_equality_pattern,
    compile_steps,
    extend_matches,
    has_extension,
    memoized,
)
from repro.relational.instance import Instance, Row
from repro.relational.values import NullFactory

class PivotPlan:
    """A join order for the remaining atoms, seeded from one pivot atom.

    ``pattern`` is the pivot atom's within-atom equality pattern: column
    pairs a delta row must agree on to unify with the pivot at all —
    this is the delta-dispatch filter. ``binds`` loads the pivot row
    into the registers; ``steps`` joins the remaining antecedents.
    """

    __slots__ = ("pattern", "binds", "steps")

    def __init__(
        self,
        pattern: tuple[tuple[int, int], ...],
        binds: tuple[tuple[int, int], ...],
        steps: tuple[AtomStep, ...],
    ):
        self.pattern = pattern
        self.binds = binds
        self.steps = steps


class JoinPlan:
    """Everything about a dependency the chase needs, compiled once."""

    __slots__ = (
        "dependency",
        "n_slots",
        "n_universal",
        "binding_pairs",
        "existential_slots",
        "existential_variables",
        "antecedent_atom_slots",
        "conclusion_atom_slots",
        "activity_steps",
        "pivots",
    )

    def __init__(self, dependency: Dependency):
        self.dependency = dependency
        universals = sorted(dependency.universal_variables(), key=lambda v: v.name)
        existentials = sorted(
            dependency.existential_variables(), key=lambda v: v.name
        )
        slot_of = {variable: slot for slot, variable in enumerate(universals)}
        self.n_universal = len(universals)
        for variable in existentials:
            slot_of[variable] = len(slot_of)
        self.n_slots = len(slot_of)
        #: (name, universal slot) pairs in name order — the trace binding
        #: layout, matching ``Trigger.make``'s sorted tuples.
        self.binding_pairs = tuple(
            (variable.name, slot_of[variable]) for variable in universals
        )
        self.existential_slots = tuple(
            slot_of[variable] for variable in existentials
        )
        self.existential_variables = tuple(existentials)

        antecedent_slots = [
            tuple(slot_of[variable] for variable in atom)
            for atom in dependency.antecedents
        ]
        #: Slot view of the antecedents in declaration order — the
        #: compiled model checker (:mod:`repro.chase.checkplan`) compiles
        #: its cold full-join order from these, sharing this plan's slot
        #: layout and conclusion-extension steps.
        self.antecedent_atom_slots = tuple(antecedent_slots)
        self.conclusion_atom_slots = tuple(
            tuple(slot_of[variable] for variable in atom)
            for atom in dependency.conclusions
        )

        # One compiled order per pivot atom (semi-naive seeding). Round
        # one seeds every pivot with the whole instance, so no separate
        # "cold" order is needed.
        self.pivots = tuple(
            _compile_pivot(antecedent_slots, pivot)
            for pivot in range(len(antecedent_slots))
        )

        # The trigger-activity extension: join the conclusion atoms with
        # every universal slot already bound.
        self.activity_steps = compile_steps(
            list(self.conclusion_atom_slots),
            set(range(self.n_universal)),
        )


def _compile_pivot(
    antecedent_slots: list[tuple[int, ...]], pivot: int
) -> PivotPlan:
    slots = antecedent_slots[pivot]
    binds = []
    seen: set[int] = set()
    for column, slot in enumerate(slots):
        if slot not in seen:
            binds.append((column, slot))
            seen.add(slot)
    rest = antecedent_slots[:pivot] + antecedent_slots[pivot + 1 :]
    return PivotPlan(
        pattern=atom_equality_pattern(slots),
        binds=tuple(binds),
        steps=compile_steps(rest, seen),
    )


#: Compiled-plan memo. Keyed structurally (Dependency hashes by
#: structure), so worker processes that decode the same premises for
#: every payload of a batch still compile each dependency's plan once.
_PLAN_CACHE: dict[Dependency, JoinPlan] = {}
_PLAN_CACHE_MAX = 2048


def compile_plan(dependency: Dependency) -> JoinPlan:
    """The memoized :class:`JoinPlan` for ``dependency``."""
    return memoized(_PLAN_CACHE, dependency, JoinPlan, _PLAN_CACHE_MAX)


#: Per dependency *set*: the compiled plans plus their dispatcher.
#: Batch services chase hundreds of targets against one premise tuple;
#: this makes the per-``chase()`` setup a single dict hit.
_PROGRAM_CACHE: dict[tuple[Dependency, ...], tuple[tuple[JoinPlan, ...], "Dispatcher"]] = {}
_PROGRAM_CACHE_MAX = 512


def _build_program(
    key: tuple[Dependency, ...],
) -> tuple[tuple[JoinPlan, ...], "Dispatcher"]:
    plans = tuple(compile_plan(dependency) for dependency in key)
    return (plans, Dispatcher(plans))


def compile_program(
    dependencies: Sequence[Dependency],
) -> tuple[tuple[JoinPlan, ...], "Dispatcher"]:
    """Memoized ``(plans, dispatcher)`` for a dependency sequence."""
    return memoized(
        _PROGRAM_CACHE, tuple(dependencies), _build_program, _PROGRAM_CACHE_MAX
    )


class GoalPlan:
    """A compiled existence check: do ``atoms`` embed, extending ``partial``?

    Used for the implication goal ("has the frozen conclusion image
    appeared?") which the engine evaluates after *every* firing — the
    compiled kernel probes the int-row index instead of running the
    generic homomorphism search each time. Built from any goal object
    exposing ``goal_atoms`` and ``goal_partial`` (see
    :class:`repro.chase.implication.ConclusionGoal`).
    """

    __slots__ = ("steps", "prebound", "n_slots")

    def __init__(self, atoms: Sequence[tuple], partial: dict):
        slot_of: dict = {}
        prebound: list[tuple[int, object]] = []
        for variable in sorted(partial, key=lambda v: v.name):
            slot_of[variable] = len(slot_of)
            prebound.append((slot_of[variable], partial[variable]))
        bound = set(range(len(slot_of)))
        for atom in atoms:
            for variable in atom:
                if variable not in slot_of:
                    slot_of[variable] = len(slot_of)
        self.n_slots = len(slot_of)
        self.prebound = tuple(prebound)
        self.steps = compile_steps(
            [tuple(slot_of[variable] for variable in atom) for atom in atoms],
            bound,
        )

    def registers(self, state: KernelState) -> list[int]:
        """Fresh registers with the partial assignment interned."""
        regs = [0] * self.n_slots
        intern = state.intern
        for slot, value in self.prebound:
            regs[slot] = intern(value)
        return regs

    def satisfied(self, state: KernelState, regs: list[int]) -> bool:
        return has_extension(state, self.steps, 0, regs)


class Dispatcher:
    """Routes delta rows to the ``(plan, pivot)`` pairs they can wake.

    With a single relation and all-variable atoms, the only row-level
    discriminator is the pivot atom's within-atom equality ``pattern``
    (e.g. ``R(x, x, y)`` only unifies with rows whose first two cells
    agree). Distinct patterns are evaluated once per delta row and fan
    out to every subscribed pivot, instead of unifying the row against
    all dependencies x all pivot atoms.
    """

    __slots__ = ("patterns", "subscribers", "n_plans", "trivial")

    def __init__(self, plans: Sequence[JoinPlan]):
        pattern_ids: dict[tuple[tuple[int, int], ...], int] = {}
        self.patterns: list[tuple[tuple[int, int], ...]] = []
        #: pattern id -> [(plan index, pivot plan), ...]
        self.subscribers: list[list[tuple[int, PivotPlan]]] = []
        self.n_plans = len(plans)
        for plan_index, plan in enumerate(plans):
            for pivot_plan in plan.pivots:
                pattern = pivot_plan.pattern
                pattern_id = pattern_ids.get(pattern)
                if pattern_id is None:
                    pattern_id = len(self.patterns)
                    pattern_ids[pattern] = pattern_id
                    self.patterns.append(pattern)
                    self.subscribers.append([])
                self.subscribers[pattern_id].append((plan_index, pivot_plan))
        #: With no discriminating pattern anywhere, dispatch is a no-op:
        #: every delta row reaches every pivot, so the chase loop skips
        #: the per-row routing entirely.
        self.trivial = all(pattern == () for pattern in self.patterns)

    def seeds(
        self, delta: Sequence[IntRow]
    ) -> list[list[tuple[PivotPlan, IntRow]]]:
        """Per plan, the ``(pivot, delta row)`` seeds the round must join.

        Each distinct equality pattern is evaluated once per delta row;
        rows failing a pattern never reach its subscribed pivots.
        """
        per_plan: list[list[tuple[PivotPlan, IntRow]]] = [
            [] for __ in range(self.n_plans)
        ]
        patterns = self.patterns
        subscribers = self.subscribers
        for irow in delta:
            for pattern_id, pattern in enumerate(patterns):
                ok = True
                for left, right in pattern:
                    if irow[left] != irow[right]:
                        ok = False
                        break
                if not ok:
                    continue
                for plan_index, pivot_plan in subscribers[pattern_id]:
                    per_plan[plan_index].append((pivot_plan, irow))
        return per_plan

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Dispatcher patterns={len(self.patterns)} plans={self.n_plans}>"


def _collect_matches(
    state: KernelState,
    plan: JoinPlan,
    seeds: Sequence[tuple[PivotPlan, IntRow]],
    evaluated: set[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """All new matches of ``plan`` over its dispatched seeds.

    Enumerated against the live instance *before* any firing, like the
    generic engine's trigger snapshot; deduplicated within the round
    (several pivots can land on one match) and against the cross-round
    ``evaluated`` memo (activity monotonicity makes old matches dead).
    """
    out: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    regs = [0] * plan.n_slots
    n_universal = plan.n_universal
    for pivot_plan, irow in seeds:
        for column, slot in pivot_plan.binds:
            regs[slot] = irow[column]
        extend_matches(state, pivot_plan.steps, 0, regs, n_universal, seen, out)
    if evaluated:
        return [key for key in out if key not in evaluated]
    return out


def _collect_matches_all(
    state: KernelState,
    plan: JoinPlan,
    delta: Sequence[IntRow],
    evaluated: set[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """:func:`_collect_matches` without the dispatch layer.

    Used when the dispatcher is trivial (no pivot has a discriminating
    equality pattern): every delta row reaches every pivot anyway, so
    seed tuples are never materialized.
    """
    out: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    regs = [0] * plan.n_slots
    n_universal = plan.n_universal
    for pivot_plan in plan.pivots:
        binds = pivot_plan.binds
        steps = pivot_plan.steps
        for irow in delta:
            for column, slot in binds:
                regs[slot] = irow[column]
            extend_matches(state, steps, 0, regs, n_universal, seen, out)
    if evaluated:
        return [key for key in out if key not in evaluated]
    return out


class ChaseSession:
    """A suspendable compiled chase over one live instance.

    Owns the compiled program, the instance's cached kernel view and
    the per-dependency ``evaluated`` memos, so the chase can *resume*:
    :meth:`run` takes an explicit delta frontier instead of assuming
    "the whole instance is new". After a run terminates, seeding a
    later run with just-inserted rows continues the same semi-naive
    computation — the memos make every previously evaluated trigger a
    set hit, and surviving derived rows keep their triggers inactive.

    The memos encode activity monotonicity, which holds only under
    insertion. A deletion can re-activate triggers (their conclusion
    witness may be gone), so deleting callers must call
    :meth:`clear_memos` before re-running — see
    :class:`repro.chase.maintain.MaintainedModel` for the DRed-style
    delete protocol built on top.

    With ``record_derivations`` the session logs, per firing,
    ``(plan index, universal-slot key, added int rows)``. Antecedent
    atoms bind only universal slots, so each record's *support* rows
    are recoverable from the key alone via the plan's
    ``antecedent_atom_slots`` — enough to trace the derivation cone of
    any deleted row without storing it eagerly.
    """

    __slots__ = (
        "instance",
        "dependencies",
        "plans",
        "dispatcher",
        "state",
        "fresh",
        "evaluated",
        "record_derivations",
        "derivations",
        "pending_delta",
    )

    def __init__(
        self,
        working: Instance,
        dependencies: Sequence[Dependency],
        *,
        fresh: NullFactory,
        record_derivations: bool = False,
    ):
        self.instance = working
        self.dependencies = tuple(dependencies)
        self.plans, self.dispatcher = compile_program(self.dependencies)
        self.state = working.kernel_view()
        self.fresh = fresh
        # Per-dependency memo of universal-slot keys already fired or
        # rejected: activity is monotone under insertion, so neither
        # can ever fire again while only inserts happen.
        self.evaluated: list[set[tuple[int, ...]]] = [
            set() for __ in self.plans
        ]
        self.record_derivations = record_derivations
        #: ``(plan index, universal-slot key) -> added int rows`` in
        #: firing order (dict order); keyed so a trigger re-fired after
        #: a deletion replaces its old record instead of duplicating it.
        self.derivations: dict[
            tuple[int, tuple[int, ...]], tuple[IntRow, ...]
        ] = {}
        #: The unprocessed delta frontier at the moment the last run
        #: stopped on BUDGET_EXHAUSTED (None otherwise). Re-seeding a
        #: later run with exactly these rows continues the computation:
        #: the ``evaluated`` memos hold exactly the matches already
        #: processed, so re-collecting over this frontier re-finds the
        #: matches the interrupted round never reached and nothing else.
        self.pending_delta: Optional[list[IntRow]] = None

    def clear_memos(self) -> None:
        """Forget trigger evaluations (required after any deletion)."""
        for memo in self.evaluated:
            memo.clear()

    def run(
        self,
        delta: Sequence[IntRow],
        *,
        stats,
        trace: list[ChaseStep],
        goal: Optional[Callable[[Instance], bool]],
        record_trace: bool,
        finish: Callable[[ChaseStatus], ChaseResult],
    ) -> ChaseResult:
        """Chase to a fixpoint from the given delta frontier."""
        state = self.state
        working = self.instance
        values = state.values
        fresh = self.fresh
        dependencies = self.dependencies
        plans = self.plans
        # The implication goal exposes its conclusion atoms; compile it
        # so the after-every-firing check probes the int index instead
        # of running the generic homomorphism search.
        goal_atoms = getattr(goal, "goal_atoms", None)
        goal_plan: Optional[GoalPlan] = None
        goal_regs: list[int] = []
        if goal is not None and goal_atoms is not None:
            goal_plan = getattr(goal, "goal_plan_cache", None)
            if goal_plan is None:
                goal_plan = GoalPlan(goal_atoms, goal.goal_partial)
                try:
                    goal.goal_plan_cache = goal_plan
                except AttributeError:  # goal object without the cache slot
                    pass
            goal_regs = goal_plan.registers(state)
        # Initial goal check (the engine defers it to the kernel so it
        # can run on the compiled plan instead of the generic search).
        if goal_plan is not None:
            if goal_plan.satisfied(state, goal_regs):
                return finish(ChaseStatus.GOAL_REACHED)
        elif goal is not None and goal(working):
            return finish(ChaseStatus.GOAL_REACHED)
        evaluated = self.evaluated
        record_derivations = self.record_derivations
        derivations = self.derivations

        trivial_dispatch = self.dispatcher.trivial
        self.pending_delta = None
        delta = list(delta)
        while delta:
            added_this_round: list[IntRow] = []
            seeds_per_plan = (
                None if trivial_dispatch else self.dispatcher.seeds(delta)
            )
            for plan_index, (dependency, plan, memo) in enumerate(
                zip(dependencies, plans, evaluated)
            ):
                if seeds_per_plan is None:
                    matches = _collect_matches_all(state, plan, delta, memo)
                else:
                    seeds = seeds_per_plan[plan_index]
                    if not seeds:
                        continue
                    matches = _collect_matches(state, plan, seeds, memo)
                if not matches:
                    continue
                activity_steps = plan.activity_steps
                n_slots = plan.n_slots
                binding_pairs = plan.binding_pairs
                existential_slots = plan.existential_slots
                conclusion_atom_slots = plan.conclusion_atom_slots
                regs = [0] * n_slots
                for key in matches:
                    # ``matches`` is already deduplicated within the
                    # round and filtered against the memo by
                    # _collect_matches*, so every key here is new.
                    memo.add(key)
                    regs[: len(key)] = key
                    # Live activity re-check: an earlier firing this
                    # round may have satisfied the conclusion already.
                    if has_extension(state, activity_steps, 0, regs):
                        continue
                    # Fire: one fresh null per existential variable,
                    # shared across all conclusion atoms.
                    for slot in existential_slots:
                        null = fresh()
                        regs[slot] = state.intern(null)
                    added_rows = []
                    fired_irows: list[IntRow] = []
                    for atom_slots in conclusion_atom_slots:
                        irow = tuple(regs[slot] for slot in atom_slots)
                        row = state.add_interned(irow)
                        if row is not None:
                            added_rows.append(row)
                            added_this_round.append(irow)
                            fired_irows.append(irow)
                    if record_derivations and fired_irows:
                        derivations[(plan_index, key)] = tuple(fired_irows)
                    stats.note_step()
                    for __ in added_rows:
                        stats.note_row()
                    if record_trace:
                        trace.append(
                            ChaseStep(
                                dependency=dependency,
                                bindings=tuple(
                                    (name, values[regs[slot]])
                                    for name, slot in binding_pairs
                                ),
                                added_rows=tuple(added_rows),
                            )
                        )
                    if goal_plan is not None:
                        if goal_plan.satisfied(state, goal_regs):
                            return finish(ChaseStatus.GOAL_REACHED)
                    elif goal is not None and goal(working):
                        return finish(ChaseStatus.GOAL_REACHED)
                    if stats.exhausted(len(working)):
                        # Capture the frontier a resumed run must
                        # re-seed from: the current round's delta (its
                        # unprocessed matches are exactly those not yet
                        # in the memos) plus everything added this
                        # round (the next round's delta).
                        self.pending_delta = list(delta) + added_this_round
                        return finish(ChaseStatus.BUDGET_EXHAUSTED)
            delta = added_this_round
        return finish(ChaseStatus.TERMINATED)


def run_compiled_chase(
    working: Instance,
    dependencies: Sequence[Dependency],
    *,
    stats,
    fresh: NullFactory,
    trace: list[ChaseStep],
    goal: Optional[Callable[[Instance], bool]],
    record_trace: bool,
    finish: Callable[[ChaseStatus], ChaseResult],
    checkpoint: bool = False,
) -> ChaseResult:
    """The compiled restricted chase (STANDARD and SEMI_NAIVE fold here).

    Delta-driven rounds: round one's delta is the whole instance, later
    rounds only the rows added in the previous round. Per dependency,
    matches touching the delta are enumerated through the compiled
    pivot plans, deduplicated against the cross-round ``evaluated``
    memo, then fired in order with a live activity re-check — the same
    discipline (snapshot, then re-check activity right before firing)
    as the generic engine, so traces replay identically.

    One-shot wrapper over :class:`ChaseSession`: seeds the delta with
    the whole instance and discards the session afterwards. Long-lived
    callers (:mod:`repro.chase.maintain`) hold the session instead.

    With ``checkpoint`` a BUDGET_EXHAUSTED result carries a
    :class:`repro.chase.checkpoint.ChaseCheckpoint` of the suspended
    session, so a covering-budget retry can resume instead of
    re-chasing from row zero.
    """
    session = ChaseSession(working, dependencies, fresh=fresh)
    run_finish = finish
    if checkpoint:

        def run_finish(status: ChaseStatus) -> ChaseResult:
            result = finish(status)
            if status is ChaseStatus.BUDGET_EXHAUSTED:
                from repro.chase.checkpoint import capture_checkpoint

                result.checkpoint = capture_checkpoint(
                    session,
                    stats=stats,
                    trace=trace if record_trace else None,
                    target=getattr(goal, "target", None),
                )
            return result

    return session.run(
        session.state.rows_list,
        stats=stats,
        trace=trace,
        goal=goal,
        record_trace=record_trace,
        finish=run_finish,
    )


def run_stratified_chase(
    working: Instance,
    strata: Sequence[Sequence[Dependency]],
    *,
    stats,
    fresh: NullFactory,
    trace: list[ChaseStep],
    goal: Optional[Callable[[Instance], bool]],
    record_trace: bool,
    finish: Callable[[ChaseStatus], ChaseResult],
) -> ChaseResult:
    """Chase stratum-by-stratum along the firing-graph condensation.

    ``strata`` comes from :meth:`repro.analysis.report.QueryProgram.strata`
    in topological order of the firing-graph condensation: no dependency
    in an earlier stratum can acquire a new active trigger from a later
    stratum's firings, so chasing each stratum to its own fixpoint and
    never revisiting it reaches the same fixpoint as the joint chase —
    while each stratum's session compiles and dispatches only its own
    dependencies. Intermediate ``TERMINATED`` results are discarded;
    ``GOAL_REACHED`` / ``BUDGET_EXHAUSTED`` return immediately. Not
    checkpointable (callers use this only on certified, derived-budget
    runs where exhaustion is impossible).
    """
    result: Optional[ChaseResult] = None
    for stratum in strata:
        session = ChaseSession(working, stratum, fresh=fresh)
        result = session.run(
            session.state.rows_list,
            stats=stats,
            trace=trace,
            goal=goal,
            record_trace=record_trace,
            finish=finish,
        )
        if result.status is not ChaseStatus.TERMINATED:
            return result
    if result is not None:
        return result
    # Empty program: only the initial goal check remains.
    if goal is not None and goal(working):
        return finish(ChaseStatus.GOAL_REACHED)
    return finish(ChaseStatus.TERMINATED)

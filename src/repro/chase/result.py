"""Chase run results: status, trace and the chased instance.

A :class:`ChaseResult` is the complete record of a run. Its trace (a list
of :class:`ChaseStep`) is a *replayable certificate*: feeding the steps
back through :func:`repro.chase.engine.apply_step` on the original input
must reproduce the final instance, which is how the reduction's direction
(A) proofs are machine-verified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.chase.checkpoint import ChaseCheckpoint

from repro.chase.budget import ChaseStats
from repro.dependencies.classify import Dependency
from repro.relational.instance import Instance, Row
from repro.relational.values import Value


class ChaseStatus(enum.Enum):
    """How a chase run ended."""

    #: Fixpoint reached: no active trigger remains. The result is a
    #: universal model of (input + dependencies).
    TERMINATED = "terminated"

    #: The caller's goal predicate became true; the chase stopped early.
    GOAL_REACHED = "goal_reached"

    #: The budget ran out before a fixpoint or goal. Nothing is decided.
    BUDGET_EXHAUSTED = "budget_exhausted"


@dataclass(frozen=True)
class ChaseStep:
    """One trigger firing: which dependency, at which match, adding what.

    ``bindings`` covers the dependency's universal variables (by name);
    ``added_rows`` are the conclusion rows actually inserted (existential
    variables already replaced by fresh nulls).
    """

    dependency: Dependency
    bindings: tuple[tuple[str, Value], ...]
    added_rows: tuple[Row, ...]

    def describe(self) -> str:
        """Human-readable one-liner for traces and logs."""
        name = getattr(self.dependency, "name", None) or "dependency"
        pairs = ", ".join(f"{var}={value}" for var, value in self.bindings)
        return f"fire {name} at [{pairs}] adding {len(self.added_rows)} row(s)"


@dataclass
class ChaseResult:
    """Everything a chase run produced."""

    status: ChaseStatus
    instance: Instance
    steps: list[ChaseStep] = field(default_factory=list)
    stats: Optional[ChaseStats] = None
    #: Suspended kernel state, captured only when the run ended
    #: BUDGET_EXHAUSTED *and* the caller asked for it (``checkpoint=True``
    #: on :func:`repro.chase.engine.chase`). A covering-budget retry can
    #: resume from here instead of re-chasing from row zero.
    checkpoint: Optional["ChaseCheckpoint"] = None

    @property
    def terminated(self) -> bool:
        """True when the run reached a fixpoint."""
        return self.status is ChaseStatus.TERMINATED

    @property
    def step_count(self) -> int:
        """Number of trigger firings (0 when tracing was disabled)."""
        if self.stats is not None:
            return self.stats.steps
        return len(self.steps)

    def describe(self) -> str:
        """A short summary suitable for experiment logs."""
        summary = (
            f"{self.status.value}: {len(self.instance)} rows after "
            f"{self.step_count} steps"
        )
        if self.stats is not None:
            summary += f" ({self.stats.describe()})"
        return summary

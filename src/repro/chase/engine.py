"""The chase proper: standard (restricted) and oblivious variants.

The engine is round-based and fair: each round scans every dependency and
fires the triggers found. A fixpoint (a round that adds nothing) means the
instance satisfies every dependency — for the standard chase the result is
then a *universal model* of the input under the dependencies, which is what
makes chase-based implication testing sound and complete on terminating
runs.

Two kernels execute the restricted chase:

* the **compiled** kernel (:mod:`repro.chase.plan`, the default) runs
  per-dependency join plans over interned integer rows with
  delta-indexed trigger dispatch — ``STANDARD`` and ``SEMI_NAIVE`` both
  fold onto it (round one's delta is the whole instance);
* the **legacy** kernel is the original generic-homomorphism loop, kept
  for the ``OBLIVIOUS`` variant, for differential testing, and as the
  reference semantics (select it with ``kernel="legacy"`` or
  ``REPRO_CHASE_KERNEL=legacy``).

Both kernels produce the same statuses and replay-valid traces; firing
order inside a round (and hence trace step order and null labels) may
differ, exactly as it already does between hash-seed runs of the legacy
kernel.

The engine never raises on divergence: it stops when the
:class:`~repro.chase.budget.Budget` is spent and says so in the result
status.
"""

from __future__ import annotations

import enum
import os
from typing import Callable, Iterable, Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.result import ChaseResult, ChaseStatus, ChaseStep
from repro.chase.trigger import Trigger, iter_triggers
from repro.dependencies.classify import Dependency
from repro.dependencies.template import Variable, is_variable
from repro.errors import VerificationError
from repro.relational.homomorphism import apply_assignment
from repro.relational.instance import Instance, Row
from repro.relational.values import LabeledNull, NullFactory, Value


class ChaseVariant(enum.Enum):
    """Which trigger discipline to use."""

    #: Fire only *active* triggers (the restricted chase). Terminates more
    #: often and produces smaller instances; this is the default.
    STANDARD = "standard"

    #: Fire every trigger exactly once, active or not. Simpler theory,
    #: bigger instances; kept for the redundancy ablation benchmarks.
    OBLIVIOUS = "oblivious"

    #: The restricted chase with semi-naive (delta-driven) trigger
    #: enumeration: each round only examines matches touching a row added
    #: in the previous round. Same results as STANDARD (activity is
    #: monotone: adding rows never re-activates a trigger), less rescanning.
    SEMI_NAIVE = "semi_naive"


#: A predicate the caller wants to become true; the chase stops when it does.
Goal = Callable[[Instance], bool]

#: Which kernel ``chase`` uses when the caller does not say. The
#: compiled kernel is the production default; set
#: ``REPRO_CHASE_KERNEL=legacy`` to flip a whole process back to the
#: generic-homomorphism engine (benchmark baselines, differential
#: debugging).
DEFAULT_KERNEL = os.environ.get("REPRO_CHASE_KERNEL", "compiled")

_KERNELS = ("compiled", "legacy")


def chase(
    instance: Instance,
    dependencies: Sequence[Dependency],
    *,
    budget: Optional[Budget] = None,
    variant: ChaseVariant = ChaseVariant.STANDARD,
    goal: Optional[Goal] = None,
    inplace: bool = False,
    record_trace: bool = True,
    null_factory: Optional[NullFactory] = None,
    kernel: Optional[str] = None,
    checkpoint: bool = False,
    strata: Optional[Sequence[Sequence[Dependency]]] = None,
) -> ChaseResult:
    """Chase ``instance`` with ``dependencies``.

    Returns a :class:`~repro.chase.result.ChaseResult` whose status is
    ``TERMINATED`` (fixpoint), ``GOAL_REACHED`` (the ``goal`` predicate
    became true) or ``BUDGET_EXHAUSTED``. Unless ``inplace`` is set the
    input instance is left untouched.

    ``record_trace`` keeps the full list of fired steps (the replayable
    certificate); disable it for large benchmark runs.

    ``kernel`` selects ``"compiled"`` (default, see
    :mod:`repro.chase.plan`) or ``"legacy"``; the ``OBLIVIOUS`` variant
    always runs on the legacy kernel (its fire-once discipline keys on
    :class:`Trigger` identity, not activity).

    ``checkpoint`` asks the compiled kernel to attach a
    :class:`repro.chase.checkpoint.ChaseCheckpoint` of the suspended
    run to a BUDGET_EXHAUSTED result, so a covering-budget retry can
    resume instead of restarting. Ignored on the legacy kernel (its
    loop keeps no resumable frontier) — callers must treat a missing
    ``result.checkpoint`` as "restart from scratch".

    ``strata`` (from :func:`repro.analysis.report.prune_for_target`)
    asks the compiled kernel to dispatch stratum-by-stratum along the
    firing-graph condensation; each stratum's session compiles only its
    own dependencies. The strata must jointly equal ``dependencies``.
    Ignored on the legacy kernel and when ``checkpoint`` is requested
    (the stratified runner is not checkpointable).
    """
    kernel = kernel if kernel is not None else DEFAULT_KERNEL
    if kernel not in _KERNELS:
        raise ValueError(f"unknown chase kernel {kernel!r} (use one of {_KERNELS})")
    working = instance if inplace else instance.copy()
    budget = budget if budget is not None else Budget()
    stats = budget.start()
    fresh = null_factory if null_factory is not None else NullFactory()
    trace: list[ChaseStep] = []
    fired: set[Trigger] = set()

    def finish(status: ChaseStatus) -> ChaseResult:
        return ChaseResult(status=status, instance=working, steps=trace, stats=stats)

    if kernel == "compiled" and variant is not ChaseVariant.OBLIVIOUS:
        from repro.chase.plan import run_compiled_chase, run_stratified_chase

        # The kernel performs the initial goal check itself (through the
        # compiled goal plan when the goal exposes one), so the pre-check
        # here would be redundant generic-homomorphism work.
        if strata is not None and len(strata) > 1 and not checkpoint:
            return run_stratified_chase(
                working,
                strata,
                stats=stats,
                fresh=fresh,
                trace=trace,
                goal=goal,
                record_trace=record_trace,
                finish=finish,
            )
        return run_compiled_chase(
            working,
            dependencies,
            stats=stats,
            fresh=fresh,
            trace=trace,
            goal=goal,
            record_trace=record_trace,
            finish=finish,
            checkpoint=checkpoint,
        )

    if goal is not None and goal(working):
        return finish(ChaseStatus.GOAL_REACHED)

    if variant is ChaseVariant.SEMI_NAIVE:
        return _chase_semi_naive(
            working, dependencies, stats, fresh, trace, goal, record_trace, finish
        )

    while True:
        progress = False
        for dependency in dependencies:
            # Snapshot the triggers for this dependency: firing mutates the
            # instance, and iterating homomorphisms over a moving target is
            # not safe. Activity is re-checked against the live instance
            # right before each firing.
            for trigger in list(iter_triggers(working, dependency)):
                if variant is ChaseVariant.STANDARD:
                    if not trigger.is_active(working):
                        continue
                else:
                    if trigger in fired:
                        continue
                    fired.add(trigger)
                step = fire_trigger(working, trigger, fresh)
                stats.note_step()
                for __ in step.added_rows:
                    stats.note_row()
                progress = True
                if record_trace:
                    trace.append(step)
                if goal is not None and goal(working):
                    return finish(ChaseStatus.GOAL_REACHED)
                if stats.exhausted(len(working)):
                    return finish(ChaseStatus.BUDGET_EXHAUSTED)
        if not progress:
            return finish(ChaseStatus.TERMINATED)


def _chase_semi_naive(
    working: Instance,
    dependencies: Sequence[Dependency],
    stats,
    fresh: NullFactory,
    trace: list[ChaseStep],
    goal: Optional[Goal],
    record_trace: bool,
    finish,
) -> ChaseResult:
    """Round-based restricted chase, enumerating only delta-touching triggers.

    Correctness rests on two monotonicity facts: (1) every match is first
    possible in the round its newest row was added, so scanning matches
    touching the previous round's delta covers all new triggers; (2) a
    trigger found inactive stays inactive forever (adding rows only adds
    conclusion extensions), so never revisiting old matches loses nothing.
    """
    from repro.chase.trigger import iter_triggers_touching

    delta: set = set(working.rows)
    while delta:
        added_this_round: set = set()
        for dependency in dependencies:
            for trigger in list(
                iter_triggers_touching(working, dependency, delta)
            ):
                if not trigger.is_active(working):
                    continue
                step = fire_trigger(working, trigger, fresh)
                added_this_round.update(step.added_rows)
                stats.note_step()
                for __ in step.added_rows:
                    stats.note_row()
                if record_trace:
                    trace.append(step)
                if goal is not None and goal(working):
                    return finish(ChaseStatus.GOAL_REACHED)
                if stats.exhausted(len(working)):
                    return finish(ChaseStatus.BUDGET_EXHAUSTED)
        delta = added_this_round
    return finish(ChaseStatus.TERMINATED)


def fire_trigger(
    instance: Instance, trigger: Trigger, fresh: NullFactory
) -> ChaseStep:
    """Fire ``trigger`` on ``instance`` (in place) and return the step.

    Every existential variable of the dependency receives one fresh
    labelled null, shared across all conclusion atoms — this sharing is
    what distinguishes a genuine EID conclusion conjunction from the weaker
    split into independent TDs.
    """
    dependency = trigger.dependency
    existential_values: dict[Variable, Value] = {
        variable: fresh() for variable in dependency.existential_variables()
    }
    rows = trigger.conclusion_rows(existential_values)
    added = tuple(row for row in rows if instance.add(row))
    return ChaseStep(
        dependency=dependency,
        bindings=trigger.bindings,
        added_rows=added,
    )


def apply_step(instance: Instance, step: ChaseStep, *, verify: bool = True) -> None:
    """Replay a recorded chase step onto ``instance`` (in place).

    With ``verify`` (the default) the step is checked before being applied:

    * the bindings must send every antecedent atom to a row already present
      in the instance (i.e. they are a genuine trigger), and
    * the added rows must match the conclusion atoms under the bindings,
      with a consistent choice for each existential variable. Conclusion
      images already present in the instance need not (but may) be listed,
      so ``added_rows`` can honestly record only the genuinely new rows.

    Raises :class:`~repro.errors.VerificationError` on any mismatch. This
    is the checker behind the reduction's machine-verified direction (A)
    proofs.
    """
    dependency = step.dependency
    assignment: dict[Variable, Value] = {
        Variable(name): value for name, value in step.bindings
    }
    if verify:
        for atom in dependency.antecedents:
            row = apply_assignment(atom, assignment, flexible=is_variable)
            if any(is_variable(term) for term in row):
                raise VerificationError(
                    f"step bindings leave antecedent {atom} partially unbound"
                )
            if row not in instance:
                raise VerificationError(
                    f"step is not a trigger: antecedent image {row} missing"
                )
        _verify_added_rows(instance, dependency, assignment, step.added_rows)
    instance.add_all(step.added_rows)


def match_conclusion_rows(
    dependency: Dependency,
    assignment: dict[Variable, Value],
    added_rows: Sequence[Row],
    *,
    strict: bool = False,
) -> tuple[set[Row], set[Row], dict[Variable, Value]]:
    """Match ``added_rows`` against the conclusion atoms under ``assignment``.

    Walks the conclusion atoms in firing order, consuming added rows as it
    goes: an atom with unbound existential variables must be witnessed by
    the next added row (which fixes those existentials, consistently across
    atoms); a fully bound atom either consumes the next added row (when it
    matches) or was satisfied before the firing. Returns
    ``(produced, required, witnesses)``: the rows this step introduced,
    the conclusion images it relied on already being present, and the
    values the added rows assigned to the existential variables.

    This single walk backs both the replay verifier (``strict=True``:
    raise :class:`~repro.errors.VerificationError` on any malformed step)
    and the certificate slicer (``strict=False``: best effort, malformed
    steps fail later at replay) — keeping their notions of "what a step
    needs" identical by construction.
    """
    extended = dict(assignment)
    produced: set[Row] = set()
    required: set[Row] = set()
    witnesses: dict[Variable, Value] = {}
    pointer = 0
    for atom in dependency.conclusions:
        if any(variable not in extended for variable in atom):
            # Unbound existentials: their values come from the added row.
            if pointer >= len(added_rows):
                if strict:
                    raise VerificationError(
                        f"no added row witnesses the existential conclusion {atom}"
                    )
                continue
            row = added_rows[pointer]
            if len(row) != len(atom):
                if strict:
                    raise VerificationError("conclusion row has the wrong arity")
                continue
            for variable, value in zip(atom, row):
                bound = extended.setdefault(variable, value)
                if bound != value:
                    if strict:
                        raise VerificationError(
                            f"inconsistent value for {variable} in added rows"
                        )
                    break
                if variable not in assignment:
                    witnesses.setdefault(variable, value)
            else:
                produced.add(row)
                pointer += 1
            continue
        row = apply_assignment(atom, extended, flexible=is_variable)
        if pointer < len(added_rows) and added_rows[pointer] == row:
            produced.add(row)
            pointer += 1
        elif row not in produced:
            # Not listed as added: the firing relied on it being present.
            required.add(row)
    if pointer != len(added_rows) and strict:
        raise VerificationError(
            "step lists added rows that no conclusion atom produces"
        )
    return produced, required, witnesses


def _verify_added_rows(
    instance: Instance,
    dependency: Dependency,
    assignment: dict[Variable, Value],
    added_rows: Sequence[Row],
) -> None:
    """Check ``added_rows`` against the conclusions; raise on mismatch.

    Beyond the structural walk of :func:`match_conclusion_rows`:

    * every conclusion image the step did not list must already be in the
      instance — ``added_rows`` may honestly omit only already-present
      rows;
    * every existential witness must be a *fresh* labelled null: pairwise
      distinct and absent from the pre-step instance. Without this a
      forged step could bind an existential to an existing value (or
      identify two existentials) and "derive" facts the dependency does
      not entail — certificates from untrusted sources (a shared result
      cache, a file on disk) must not verify in that case. The bindings
      are restricted to the dependency's universal variables first, so a
      forged step cannot smuggle an existential binding past the witness
      checks through ``step.bindings``.
    """
    universals = dependency.universal_variables()
    restricted = {
        variable: value
        for variable, value in assignment.items()
        if variable in universals
    }
    produced, required, witnesses = match_conclusion_rows(
        dependency, restricted, added_rows, strict=True
    )
    del produced
    for row in required:
        if row not in instance:
            raise VerificationError(
                f"conclusion image {row} is missing from the added rows"
            )
    if len(set(witnesses.values())) != len(witnesses):
        raise VerificationError(
            "distinct existential variables share a witness value"
        )
    arity = instance.schema.arity
    for variable, value in witnesses.items():
        if not isinstance(value, LabeledNull):
            raise VerificationError(
                f"existential witness for {variable} is {value!r}, "
                "not a fresh labelled null"
            )
        if any(instance.rows_with(column, value) for column in range(arity)):
            raise VerificationError(
                f"existential witness {value!r} already occurs in the instance"
            )


def replay(
    start: Instance, steps: Iterable[ChaseStep], *, verify: bool = True
) -> Instance:
    """Replay a whole trace from ``start``, returning the final instance."""
    working = start.copy()
    for step in steps:
        apply_step(working, step, verify=verify)
    return working

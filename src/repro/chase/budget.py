"""Resource budgets for chase runs and other semi-decision procedures.

Because the paper proves the inference problem undecidable, any chase-based
solver must be prepared to give up. A :class:`Budget` bounds the work a run
may do (trigger firings, instance size, wall-clock time); a
:class:`ChaseStats` accumulates what a run actually did. Exhaustion is a
*reported outcome*, not an exception, so callers can distinguish "refuted"
from "ran out of budget" — exactly the distinction the undecidability
theorem says cannot always be eliminated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Budget:
    """Limits for one chase (or search) run.

    ``None`` means unlimited for that axis. The default budget is generous
    enough for every experiment in this repository while still finite, so
    accidental divergence surfaces as an ``UNKNOWN`` rather than a hang.
    """

    max_steps: Optional[int] = 10_000
    max_rows: Optional[int] = 50_000
    max_seconds: Optional[float] = 60.0

    @staticmethod
    def unlimited() -> "Budget":
        """No limits at all. Use only where termination is guaranteed."""
        return Budget(max_steps=None, max_rows=None, max_seconds=None)

    @staticmethod
    def small() -> "Budget":
        """A tight budget for tests that probe exhaustion behaviour."""
        return Budget(max_steps=25, max_rows=100, max_seconds=5.0)

    def start(self) -> "ChaseStats":
        """Create a stats tracker whose clock starts now."""
        return ChaseStats(budget=self)


@dataclass
class ChaseStats:
    """Mutable counters for a run, checked against a :class:`Budget`."""

    budget: Budget
    steps: int = 0
    rows_added: int = 0
    started_at: float = field(default_factory=time.monotonic)
    #: When set, the clock is pinned (a deserialized record of a finished
    #: run); ``elapsed_seconds`` reports this instead of live wall-clock.
    frozen_elapsed: Optional[float] = None

    def note_step(self) -> None:
        """Record one trigger firing."""
        self.steps += 1

    def note_row(self) -> None:
        """Record one new row added to the instance."""
        self.rows_added += 1

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since the run started (or the pinned value)."""
        if self.frozen_elapsed is not None:
            return self.frozen_elapsed
        return time.monotonic() - self.started_at

    def exhausted(self, current_rows: Optional[int] = None) -> bool:
        """True when any budget axis has been used up."""
        limits = self.budget
        if limits.max_steps is not None and self.steps >= limits.max_steps:
            return True
        if limits.max_rows is not None:
            size = current_rows if current_rows is not None else self.rows_added
            if size >= limits.max_rows:
                return True
        if limits.max_seconds is not None and self.elapsed_seconds >= limits.max_seconds:
            return True
        return False

    def describe(self) -> str:
        """A one-line human-readable usage summary."""
        return (
            f"steps={self.steps} rows_added={self.rows_added} "
            f"elapsed={self.elapsed_seconds:.3f}s"
        )

"""Maintained universal models: the chase as a persistent, updatable object.

Every consumer so far treats the chase as a *function*: hand it a
database and a dependency program, get a universal model back, throw the
model away. The compiled kernel is already delta-driven, so almost all
of that work can be kept: a :class:`MaintainedModel` owns a dependency
program, a live chased :class:`~repro.relational.instance.Instance` and
a suspended :class:`~repro.chase.plan.ChaseSession`, and keeps the
instance a universal model of its *base facts* across a stream of
:meth:`insert` / :meth:`delete` calls — re-chasing only what changed.

**Insert** is the cheap direction. Inserting constant rows Δ into a
chased fixpoint ``U = chase(D, Σ)`` and resuming the chase computes
``chase(U ∪ Δ, Σ)``, which is again a universal model of ``(D ∪ Δ, Σ)``:
every row of ``U`` has a valid derivation from ``D``, so the combined
firing history is a valid chase of ``D ∪ Δ``. The resumed session seeds
its delta frontier with just the new rows; the cross-round ``evaluated``
memos make every old trigger a set hit and the interned view is reused
as-is, so the cost scales with the *consequences* of Δ, not with ``U``.

**Delete** is DRed-style over-delete / re-derive. The session records,
per firing, the universal-slot key and the rows it added; the support
rows of each firing are recoverable from the key (antecedent atoms bind
only universal slots). Deleting base rows walks the derivation records
forward once, over-deleting exactly the derivation cone of the deleted
rows (rows that are themselves base facts are never over-deleted), then
discards the cone and re-chases. Activity is *not* monotone under
deletion — removing a conclusion witness can re-activate a trigger
anywhere — so the re-derive pass clears the trigger memos and seeds the
frontier with every surviving row. That pass is still far cheaper than
a from-scratch chase: no re-interning, no view rebuild, and almost all
triggers are immediately inactive against the surviving derived rows.

**Reads** follow the certain-answer discipline of data exchange, which
is what makes them independent of *which* universal model the
maintenance happened to produce (chase results are unique only up to
homomorphic equivalence):

* :meth:`answer` evaluates a conjunctive query on the maintained model
  through the compiled homomorphism engine and keeps the null-free
  tuples — the certain answers, identical for every universal model of
  the same base facts;
* :meth:`implies` model-checks a dependency against the model's *core*
  (cached, invalidated by the instance's mutation epoch). Cores of
  homomorphically equivalent instances are isomorphic, so the verdict
  is canonical — "does the dependency hold in the certain structure" —
  where checking the raw fixpoint would depend on firing order.

The differential suite (``tests/chase/test_maintain.py``) pins all of
this: after any interleaving of inserts and deletes the maintained
model is homomorphically equivalent to a from-scratch chase of the
final base facts, with equal cores, equal certain answers and equal
implication verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.checkplan import find_violation, resolve_checker
from repro.chase.plan import ChaseSession
from repro.chase.result import ChaseResult, ChaseStatus
from repro.dependencies.classify import Dependency
from repro.kernel.joins import IntRow
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    Stopwatch,
)
from repro.relational.core import core_of
from repro.relational.instance import Instance, Row
from repro.relational.queries import ConjunctiveQuery
from repro.relational.schema import Schema
from repro.relational.values import NullFactory, Value, is_null

#: The maintenance operations reported into ``repro_model_maintain_seconds``.
MAINTAIN_OPS = ("register", "insert", "delete", "query", "implies")


class MaintainInstruments:
    """The maintained-model metric families, on one shared registry.

    Same idempotent-registration discipline as
    :class:`repro.service.instruments.ServiceInstruments`: every layer
    constructs its own view over the shared registry and lands on the
    same families, so the README's metric table and ``GET /metrics``
    agree by construction.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.maintain_seconds = registry.histogram(
            "repro_model_maintain_seconds",
            "Wall seconds per maintained-model operation",
            labels=("op",),
            buckets=LATENCY_BUCKETS,
        )
        for op in MAINTAIN_OPS:
            self.maintain_seconds.labels(op=op)
        self.inserts = registry.counter(
            "repro_model_inserts_total",
            "insert() calls against maintained models",
        )
        self.deletes = registry.counter(
            "repro_model_deletes_total",
            "delete() calls against maintained models",
        )
        self.queries = registry.counter(
            "repro_model_queries_total",
            "Read operations against maintained models, by kind",
            labels=("kind",),
        )
        for kind in ("cq", "implies"):
            self.queries.labels(kind=kind)
        self.rows_base = registry.gauge(
            "repro_model_base_rows",
            "Base facts currently held across maintained models",
        )
        self.rows_derived = registry.counter(
            "repro_model_derived_rows_total",
            "Rows derived by incremental maintenance chases",
        )
        self.rows_overdeleted = registry.counter(
            "repro_model_overdeleted_rows_total",
            "Derived rows removed by the DRed over-delete pass",
        )
        self.active_models = registry.gauge(
            "repro_models_active",
            "Maintained models currently registered with the service",
        )


@dataclass(frozen=True)
class MaintenanceReport:
    """What one :meth:`MaintainedModel.insert` / ``delete`` actually did.

    ``applied`` counts base facts genuinely added or removed (requests
    for already-present / already-absent rows are no-ops); ``derived``
    counts rows the maintenance chase added beyond the base facts, and
    ``overdeleted`` the derivation-cone rows removed before the
    re-derive pass (always 0 for inserts). ``status`` is the chase
    status of the maintenance run — ``BUDGET_EXHAUSTED`` means the
    model is *not* currently a universal model and
    :attr:`MaintainedModel.saturated` is False.
    """

    op: str
    requested: int
    applied: int
    derived: int
    overdeleted: int
    status: ChaseStatus
    steps: int
    elapsed_seconds: float

    def to_json(self) -> dict:
        return {
            "op": self.op,
            "requested": self.requested,
            "applied": self.applied,
            "derived": self.derived,
            "overdeleted": self.overdeleted,
            "status": self.status.value,
            "steps": self.steps,
            "elapsed_seconds": self.elapsed_seconds,
        }


class MaintainedModel:
    """A chased universal model kept incrementally up to date.

    Owns the dependency program, the live instance, the suspended
    :class:`~repro.chase.plan.ChaseSession` (kernel view, trigger
    memos, derivation records) and the set of *base facts* — the
    extensional rows the model is a universal model *of*. All mutation
    goes through :meth:`insert` / :meth:`delete`; reads go through
    :meth:`answer` / :meth:`implies`.

    ``budget`` bounds each maintenance run (the dependency program may
    be non-terminating — the paper's subject is exactly that
    undecidability). A run that exhausts its budget leaves the model in
    a consistent-but-unsaturated state, reported via
    :attr:`saturated` and the returned
    :class:`MaintenanceReport`; reads still work but answer against the
    partial model.
    """

    def __init__(
        self,
        schema: Schema,
        dependencies: Sequence[Dependency],
        rows: Iterable[Row] = (),
        *,
        budget: Optional[Budget] = None,
        checker: Optional[str] = None,
        instruments: Optional[MaintainInstruments] = None,
    ):
        self.schema = schema
        self.dependencies = tuple(dependencies)
        self.budget = budget if budget is not None else Budget()
        self.checker = resolve_checker(checker)
        self.instruments = instruments
        self.instance = Instance(schema)
        #: The extensional rows: what the model is a universal model of.
        self.base: set[Row] = set()
        self._fresh = NullFactory()
        self.session = ChaseSession(
            self.instance,
            self.dependencies,
            fresh=self._fresh,
            record_derivations=True,
        )
        self.status: ChaseStatus = ChaseStatus.TERMINATED
        self._core: Optional[Instance] = None
        self._core_epoch: int = -1
        rows = list(rows)
        if rows:
            self.insert(rows)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def saturated(self) -> bool:
        """True when the last maintenance run reached a fixpoint."""
        return self.status is ChaseStatus.TERMINATED

    def __len__(self) -> int:
        return len(self.instance)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MaintainedModel base={len(self.base)} "
            f"rows={len(self.instance)} deps={len(self.dependencies)} "
            f"status={self.status.value}>"
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, rows: Iterable[Row]) -> MaintenanceReport:
        """Add base facts; resume the chase from just the new rows."""
        watch = Stopwatch()
        rows = [tuple(row) for row in rows]
        state = self.session.state
        delta: list[IntRow] = []
        before = len(self.instance)
        for row in rows:
            if self.instance.add(row):
                delta.append(state.intern_row(row))
            # Already-derived rows become base facts too: from now on
            # they survive any deletion cone.
            self.base.add(row)
        applied = len(delta)
        steps = 0
        if delta or not self.saturated:
            # A previously exhausted run may resume: seed with the new
            # rows plus (if unsaturated) the whole surviving frontier.
            frontier = delta if self.saturated else list(state.rows_list)
            result = self._run(frontier)
            steps = result.stats.steps
        derived = len(self.instance) - before - applied
        report = MaintenanceReport(
            op="insert",
            requested=len(rows),
            applied=applied,
            derived=derived,
            overdeleted=0,
            status=self.status,
            steps=steps,
            elapsed_seconds=watch.elapsed(),
        )
        instruments = self.instruments
        if instruments is not None:
            instruments.inserts.inc()
            instruments.rows_base.inc(applied)
            instruments.rows_derived.inc(derived)
            instruments.maintain_seconds.labels(op="insert").observe(
                report.elapsed_seconds
            )
        return report

    def delete(self, rows: Iterable[Row]) -> MaintenanceReport:
        """Remove base facts; over-delete their derivation cone, re-derive.

        Rows that are not base facts are ignored — derived rows cannot
        be deleted directly (they are consequences, not assertions).
        """
        watch = Stopwatch()
        rows = [tuple(row) for row in rows]
        removed_base = []
        for row in rows:
            if row in self.base:
                self.base.discard(row)
                removed_base.append(row)
        if not removed_base:
            report = MaintenanceReport(
                op="delete",
                requested=len(rows),
                applied=0,
                derived=0,
                overdeleted=0,
                status=self.status,
                steps=0,
                elapsed_seconds=watch.elapsed(),
            )
            self._note_delete(report)
            return report
        session = self.session
        state = session.state
        plans = session.plans
        doomed: set[IntRow] = {state.intern_row(row) for row in removed_base}
        base_irows: set[IntRow] = {
            state.intern_row(row) for row in self.base
        }
        # One forward pass over the derivation records suffices: every
        # record's support rows are base facts or rows derived by an
        # earlier record, so the cone closes in record order.
        overdeleted: set[IntRow] = set(doomed)
        survivors: dict[tuple[int, tuple[int, ...]], tuple[IntRow, ...]] = {}
        for (plan_index, key), derived_irows in session.derivations.items():
            support_hit = False
            for atom_slots in plans[plan_index].antecedent_atom_slots:
                if tuple(key[slot] for slot in atom_slots) in overdeleted:
                    support_hit = True
                    break
            if support_hit:
                for irow in derived_irows:
                    if irow not in base_irows:
                        overdeleted.add(irow)
            else:
                survivors[(plan_index, key)] = derived_irows
        session.derivations = survivors
        values = state.values
        removed = 0
        for irow in overdeleted:
            if self.instance.discard(tuple(values[vid] for vid in irow)):
                removed += 1
        before = len(self.instance)
        # Deletion can re-activate triggers anywhere (their conclusion
        # witness may be gone), so the memos must go; the re-derive pass
        # seeds from every surviving row but reuses the interned view.
        session.clear_memos()
        result = self._run(state.rows_list)
        report = MaintenanceReport(
            op="delete",
            requested=len(rows),
            applied=len(removed_base),
            derived=len(self.instance) - before,
            overdeleted=removed - len(removed_base),
            status=self.status,
            steps=result.stats.steps,
            elapsed_seconds=watch.elapsed(),
        )
        self._note_delete(report)
        return report

    def _note_delete(self, report: MaintenanceReport) -> None:
        instruments = self.instruments
        if instruments is not None:
            instruments.deletes.inc()
            instruments.rows_base.inc(-report.applied)
            instruments.rows_derived.inc(report.derived)
            instruments.rows_overdeleted.inc(max(report.overdeleted, 0))
            instruments.maintain_seconds.labels(op="delete").observe(
                report.elapsed_seconds
            )

    def _run(self, delta: Sequence[IntRow]) -> ChaseResult:
        stats = self.budget.start()

        def finish(status: ChaseStatus) -> ChaseResult:
            return ChaseResult(
                status=status, instance=self.instance, steps=[], stats=stats
            )

        result = self.session.run(
            delta,
            stats=stats,
            trace=[],
            goal=None,
            record_trace=False,
            finish=finish,
        )
        self.status = result.status
        return result

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def answer(self, query: ConjunctiveQuery) -> set[tuple[Value, ...]]:
        """The certain answers of ``query`` over the base facts.

        Evaluates on the maintained model through the compiled
        homomorphism engine (the instance's cached kernel view makes
        repeated small queries cheap) and keeps the null-free tuples —
        the tuples true in *every* model of the base facts under the
        program, independent of which universal model maintenance
        produced. A boolean query answers ``{()}`` (certainly true) or
        ``set()``.
        """
        watch = Stopwatch()
        certain = {
            answer
            for answer in query.answers(self.instance)
            if not any(is_null(value) for value in answer)
        }
        instruments = self.instruments
        if instruments is not None:
            instruments.queries.labels(kind="cq").inc()
            instruments.maintain_seconds.labels(op="query").observe(
                watch.elapsed()
            )
        return certain

    def implies(self, dependency: Dependency) -> bool:
        """Does ``dependency`` hold in the model's core?

        The core is the canonical universal model (unique up to
        isomorphism across chase orders), so this verdict — unlike a
        check against the raw fixpoint, which can see order-dependent
        redundant null rows — is a property of the base facts and the
        program alone. The core is cached and invalidated by the
        instance's mutation epoch.
        """
        watch = Stopwatch()
        verdict = (
            find_violation(dependency, self.core(), checker=self.checker)
            is None
        )
        instruments = self.instruments
        if instruments is not None:
            instruments.queries.labels(kind="implies").inc()
            instruments.maintain_seconds.labels(op="implies").observe(
                watch.elapsed()
            )
        return verdict

    def core(self) -> Instance:
        """The core of the maintained model (cached until mutation)."""
        if self._core is None or self._core_epoch != self.instance.epoch:
            epoch = self.instance.epoch
            self._core = core_of(self.instance)
            self._core_epoch = epoch
        return self._core

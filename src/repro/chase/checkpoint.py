"""Checkpoint and resume for budget-exhausted compiled chases.

A budget-exhausted chase used to throw away all its work: a retry under
a bigger budget re-chased from row zero, and the UNKNOWN cache entry's
budget antichain existed precisely to track that waste. This module
captures the suspended :class:`~repro.chase.plan.ChaseSession` state —
interned rows, the unprocessed delta frontier, the per-dependency
``evaluated`` memos, the null counter and the cumulative stats — into a
plain :class:`ChaseCheckpoint` value, and rebuilds an equivalent
session later so the retry *resumes*.

Soundness of the capture point (the BUDGET_EXHAUSTED return inside
:meth:`ChaseSession.run`): the memos contain exactly the universal-slot
keys already processed (``memo.add`` happens per key, before firing),
so re-collecting matches over the interrupted round's delta re-finds
precisely the matches the run never reached; rows added during the
interrupted round are appended to the frontier and seed the next round
as usual. Earlier rounds are fully memoized. Intern ids survive
serialization because :class:`~repro.relational.values.InternTable`
assigns ids in first-seen order and never reclaims them — re-interning
the captured value list in order reproduces identical ids, so the
captured int rows, frontier and memo keys stay valid verbatim.

Resume equivalence: the resumed run seeds *cumulative* stats (prior
steps, prior rows, prior elapsed), so resuming under budget ``B``
decides and exhausts exactly where one uninterrupted run under ``B``
would on the step and row axes (the wall-clock axis is inherently
non-deterministic either way). The differential tests in
``tests/chaos/test_checkpoint_resume.py`` assert resumed verdict ≡
from-scratch verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chase.budget import Budget, ChaseStats
from repro.chase.implication import (
    ConclusionGoal,
    InferenceOutcome,
    InferenceStatus,
    _freeze_target,
)
from repro.chase.plan import ChaseSession
from repro.chase.result import ChaseResult, ChaseStatus, ChaseStep
from repro.dependencies.classify import Dependency
from repro.kernel.backend import resolve_join_backend
from repro.kernel.joins import IntRow
from repro.relational.instance import Instance
from repro.relational.values import NullFactory, Value

#: Bump when the captured shape changes; decoders reject other versions.
CHECKPOINT_VERSION = 1


@dataclass
class ChaseCheckpoint:
    """A suspended compiled chase, self-contained enough to resume.

    ``values`` is the intern table in id order; ``rows``, ``frontier``
    and the ``evaluated`` memo keys are expressed in those ids.
    ``target`` is the implication target whose frozen antecedents the
    captured instance embeds (None for plain goal-less chases, which
    currently have no resume caller).
    """

    dependencies: tuple[Dependency, ...]
    target: Optional[Dependency]
    values: tuple[Value, ...]
    rows: tuple[IntRow, ...]
    frontier: tuple[IntRow, ...]
    #: Per dependency (in ``dependencies`` order): the universal-slot
    #: keys already fired or rejected.
    evaluated: tuple[tuple[tuple[int, ...], ...], ...]
    next_null: int
    steps: int
    rows_added: int
    elapsed: float
    #: The prior run's trace steps when it recorded them (so a resumed
    #: PROVED outcome still carries a full replayable certificate);
    #: None when tracing was off — resuming then keeps tracing off, a
    #: partial trace would not replay.
    trace: Optional[tuple[ChaseStep, ...]] = None

    @property
    def row_count(self) -> int:
        """Captured instance size (serialization guards key on this)."""
        return len(self.rows)

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"checkpoint: {len(self.rows)} rows, "
            f"{len(self.frontier)} frontier, {self.steps} steps, "
            f"{self.elapsed:.3f}s spent"
        )


def capture_checkpoint(
    session: ChaseSession,
    *,
    stats: ChaseStats,
    trace: Optional[Sequence[ChaseStep]] = None,
    target: Optional[Dependency] = None,
) -> ChaseCheckpoint:
    """Snapshot a session that just stopped on BUDGET_EXHAUSTED."""
    state = session.state
    frontier = session.pending_delta
    if frontier is None:
        # Defensive: without a captured frontier, resuming must re-seed
        # from every row (correct, just slower — the memos still skip
        # all processed matches).
        frontier = list(state.rows_list)
    return ChaseCheckpoint(
        dependencies=session.dependencies,
        target=target,
        values=tuple(state.values),
        rows=tuple(state.rows_list),
        frontier=tuple(frontier),
        evaluated=tuple(
            tuple(sorted(memo)) for memo in session.evaluated
        ),
        next_null=session.fresh.next_label,
        steps=stats.steps,
        rows_added=stats.rows_added,
        elapsed=stats.elapsed_seconds,
        trace=tuple(trace) if trace is not None else None,
    )


def rebuild_session(
    checkpoint: ChaseCheckpoint, schema
) -> tuple[Instance, ChaseSession]:
    """Reconstruct the working instance and session from a checkpoint.

    Values are re-interned in captured id order, so every captured int
    row and memo key refers to the same value it did at capture time.
    """
    working = Instance(schema)
    table = working.intern_table
    for value in checkpoint.values:
        table.intern(value)
    state = working.kernel_view()
    for irow in checkpoint.rows:
        state.add_interned(irow)
    session = ChaseSession(
        working,
        checkpoint.dependencies,
        fresh=NullFactory(checkpoint.next_null),
    )
    if len(checkpoint.evaluated) != len(session.plans):
        raise ValueError(
            "checkpoint memo count does not match its dependency count"
        )
    session.evaluated = [set(keys) for keys in checkpoint.evaluated]
    return working, session


def resume_implies(
    checkpoint: ChaseCheckpoint,
    *,
    budget: Optional[Budget] = None,
    record_trace: bool = True,
    recheckpoint: bool = True,
) -> InferenceOutcome:
    """Continue a suspended implication test under a (bigger) budget.

    The resumed run charges the checkpoint's spent steps, rows and
    elapsed time against the new budget, so its verdict matches one
    uninterrupted run under that budget. If the new budget also runs
    out, the UNKNOWN outcome carries a fresh checkpoint
    (``recheckpoint``), so retries chain.
    """
    target = checkpoint.target
    if target is None:
        raise ValueError("checkpoint carries no implication target")
    __, frozen = _freeze_target(target)
    goal = ConclusionGoal(target, frozen)
    working, session = rebuild_session(checkpoint, target.schema)
    budget = budget if budget is not None else Budget()
    stats = ChaseStats(
        budget=budget,
        steps=checkpoint.steps,
        rows_added=checkpoint.rows_added,
        started_at=time.monotonic() - checkpoint.elapsed,
    )
    tracing = record_trace and checkpoint.trace is not None
    trace: list[ChaseStep] = list(checkpoint.trace) if tracing else []

    def finish(status: ChaseStatus) -> ChaseResult:
        result = ChaseResult(
            status=status, instance=working, steps=trace, stats=stats
        )
        if recheckpoint and status is ChaseStatus.BUDGET_EXHAUSTED:
            result.checkpoint = capture_checkpoint(
                session,
                stats=stats,
                trace=trace if tracing else None,
                target=target,
            )
        return result

    result = session.run(
        list(checkpoint.frontier),
        stats=stats,
        trace=trace,
        goal=goal,
        record_trace=tracing,
        finish=finish,
    )
    backend = resolve_join_backend()
    if result.status is ChaseStatus.GOAL_REACHED:
        return InferenceOutcome(
            status=InferenceStatus.PROVED,
            target=target,
            chase_result=result,
            frozen_assignment=frozen,
            join_backend=backend,
        )
    if result.status is ChaseStatus.TERMINATED:
        return InferenceOutcome(
            status=InferenceStatus.DISPROVED,
            target=target,
            chase_result=result,
            counterexample=result.instance,
            frozen_assignment=frozen,
            join_backend=backend,
        )
    return InferenceOutcome(
        status=InferenceStatus.UNKNOWN,
        target=target,
        chase_result=result,
        frozen_assignment=frozen,
        join_backend=backend,
    )

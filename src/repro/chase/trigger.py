"""Triggers: matches of a dependency's antecedents in an instance.

A *trigger* for dependency ``d`` in instance ``I`` is a homomorphism ``h``
of ``d``'s antecedents into ``I``. The trigger is *active* when ``h`` has
no extension mapping the conclusion atoms into ``I`` — i.e. the dependency
is violated at ``h``. The restricted (standard) chase fires only active
triggers; the oblivious chase fires every trigger once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.dependencies.classify import Dependency
from repro.dependencies.template import Variable, is_variable
from repro.relational.homomorphism import (
    apply_assignment,
    extend_homomorphism,
    iter_homomorphisms,
)
from repro.relational.instance import Instance, Row
from repro.relational.values import Value


@dataclass(frozen=True)
class Trigger:
    """A dependency together with an antecedent homomorphism.

    The assignment is stored as a sorted tuple of (variable name, value)
    pairs so triggers are hashable — the oblivious chase keys its
    fired-set on them.
    """

    dependency: Dependency
    bindings: tuple[tuple[str, Value], ...]

    @staticmethod
    def make(dependency: Dependency, assignment: Mapping[Variable, Value]) -> "Trigger":
        """Build a trigger from an assignment dict."""
        bindings = tuple(
            sorted(
                ((variable.name, value) for variable, value in assignment.items()),
                key=lambda pair: pair[0],
            )
        )
        trigger = Trigger(dependency, bindings)
        # Seed the assignment cache from the dict we already have (copied:
        # homomorphism enumeration reuses its dict between yields). The
        # cache is not a dataclass field, so equality and hashing still key
        # on (dependency, bindings) alone.
        object.__setattr__(trigger, "_cached_assignment", dict(assignment))
        return trigger

    def _shared_assignment(self) -> dict[Variable, Value]:
        """The cached variable -> value dict; callers must not mutate it.

        ``is_active`` and ``conclusion_rows`` sit inside the innermost
        chase loop, so the dict is built once per trigger instead of on
        every call.
        """
        cached = getattr(self, "_cached_assignment", None)
        if cached is None:
            cached = {Variable(name): value for name, value in self.bindings}
            object.__setattr__(self, "_cached_assignment", cached)
        return cached

    def assignment(self) -> dict[Variable, Value]:
        """The bindings as a fresh variable -> value dict."""
        return dict(self._shared_assignment())

    def is_active(self, instance: Instance) -> bool:
        """True when no extension covers the conclusion atoms."""
        extension = extend_homomorphism(
            self._shared_assignment(),
            self.dependency.conclusions,
            instance,
            flexible=is_variable,
        )
        return extension is None

    def conclusion_rows(
        self, existential_values: Mapping[Variable, Value]
    ) -> list[Row]:
        """The rows this trigger produces, given values for existentials."""
        assignment = {**self._shared_assignment(), **existential_values}
        return [
            apply_assignment(atom, assignment, flexible=is_variable)
            for atom in self.dependency.conclusions
        ]


def iter_triggers(instance: Instance, dependency: Dependency) -> Iterator[Trigger]:
    """All triggers (active or not) of ``dependency`` in ``instance``."""
    for assignment in iter_homomorphisms(
        dependency.antecedents, instance, flexible=is_variable
    ):
        yield Trigger.make(dependency, assignment)


def iter_active_triggers(
    instance: Instance, dependency: Dependency
) -> Iterator[Trigger]:
    """Only the active (violated) triggers of ``dependency`` in ``instance``."""
    for trigger in iter_triggers(instance, dependency):
        if trigger.is_active(instance):
            yield trigger


def _unify_atom(atom: tuple, row: Row) -> Mapping[Variable, Value] | None:
    """Match one antecedent atom against one concrete row."""
    assignment: dict[Variable, Value] = {}
    for variable, value in zip(atom, row):
        bound = assignment.setdefault(variable, value)
        if bound != value:
            return None
    return assignment




def iter_triggers_touching(
    instance: Instance,
    dependency: Dependency,
    delta: frozenset[Row] | set[Row],
) -> Iterator[Trigger]:
    """Triggers whose antecedent image uses at least one row of ``delta``.

    This is the semi-naive enumeration: at a chase round it suffices to
    consider matches that touch a row added in the previous round, because
    any other match was already examined (and activity only decreases as
    the instance grows). Each trigger is yielded once even when several of
    its atoms land in the delta.
    """
    from repro.chase.plan import atom_equality_pattern

    seen: set[tuple[tuple[str, Value], ...]] = set()
    atoms = list(dependency.antecedents)
    for pivot_index, pivot_atom in enumerate(atoms):
        rest = atoms[:pivot_index] + atoms[pivot_index + 1 :]
        # Repeated-variable prefilter: skip rows that cannot unify with
        # the pivot before building any assignment dict.
        pattern = atom_equality_pattern(pivot_atom)
        for row in delta:
            if any(row[left] != row[right] for left, right in pattern):
                continue
            partial = _unify_atom(pivot_atom, row)
            if partial is None:
                continue
            for assignment in iter_homomorphisms(
                rest, instance, partial=partial, flexible=is_variable
            ):
                trigger = Trigger.make(dependency, assignment)
                if trigger.bindings in seen:
                    continue
                seen.add(trigger.bindings)
                yield trigger

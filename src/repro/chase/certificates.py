"""Certificate tooling: slicing chase proofs and rendering them.

A goal-directed chase records every step it fired, but only some of those
steps feed the goal. :func:`minimize_trace` slices a trace backward from
the rows the goal actually uses, keeping exactly the steps on the
provenance path — certificates shrink, sometimes drastically, and remain
verifiable. :func:`explain_trace` renders a trace as numbered,
human-readable derivation lines (what a referee would want to read);
:func:`explain_outcome` does the same for a whole implication outcome.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.chase.implication import InferenceOutcome, InferenceStatus
from repro.chase.result import ChaseStep
from repro.dependencies.classify import Dependency
from repro.dependencies.template import Variable, is_variable
from repro.relational.homomorphism import apply_assignment
from repro.relational.homplan import find_homomorphism
from repro.relational.instance import Instance, Row
from repro.relational.values import Value


def _consumed_rows(step: ChaseStep) -> set[Row]:
    """The antecedent images a step matched (its provenance inputs)."""
    assignment: dict[Variable, Value] = {
        Variable(name): value for name, value in step.bindings
    }
    return {
        apply_assignment(atom, assignment, flexible=is_variable)
        for atom in step.dependency.antecedents
    }


def _required_conclusion_rows(step: ChaseStep) -> set[Row]:
    """Conclusion images the step relied on being *already present*.

    ``added_rows`` honestly lists only the genuinely new rows, so a
    conclusion atom whose image was satisfied before the firing (an EID
    conjunct another step already produced) appears nowhere in the step —
    yet verified replay requires that image to exist. These rows are
    provenance inputs exactly like the antecedent images. The walk is the
    replay verifier's own (:func:`repro.chase.engine.match_conclusion_rows`),
    so slicer and verifier cannot drift apart.
    """
    from repro.chase.engine import match_conclusion_rows

    universals = step.dependency.universal_variables()
    assignment: dict[Variable, Value] = {}
    for name, value in step.bindings:
        variable = Variable(name)
        if variable in universals:
            assignment[variable] = value
    __, required, __ = match_conclusion_rows(
        step.dependency, assignment, step.added_rows, strict=False
    )
    return required


def minimize_trace(
    steps: Sequence[ChaseStep], required_rows: set[Row]
) -> list[ChaseStep]:
    """Backward-slice a trace to the steps the required rows depend on.

    Walking the trace backward: a step is kept when it produced a row
    currently needed; its own antecedent images then become needed. Rows
    needed but produced by no kept step must come from the start instance
    (the replay verifier will confirm). The result preserves order and
    replays to an instance containing ``required_rows``.
    """
    needed = set(required_rows)
    kept_reversed: list[ChaseStep] = []
    for step in reversed(list(steps)):
        produced = set(step.added_rows)
        if produced & needed:
            kept_reversed.append(step)
            needed -= produced
            needed |= _consumed_rows(step)
            needed |= _required_conclusion_rows(step)
    return list(reversed(kept_reversed))


def goal_rows_of_outcome(outcome: InferenceOutcome) -> Optional[set[Row]]:
    """The target-conclusion rows a PROVED outcome's final instance uses."""
    if outcome.status is not InferenceStatus.PROVED:
        return None
    if outcome.chase_result is None or outcome.frozen_assignment is None:
        return None
    final = outcome.chase_result.instance
    witness = find_homomorphism(
        outcome.target.conclusions,
        final,
        partial=outcome.frozen_assignment,
        flexible=is_variable,
    )
    if witness is None:
        return None
    return {
        apply_assignment(atom, witness, flexible=is_variable)
        for atom in outcome.target.conclusions
    }


def minimize_proof(outcome: InferenceOutcome) -> Optional[list[ChaseStep]]:
    """Slice a PROVED outcome's trace down to the steps the goal needs.

    Returns None when the outcome is not a proof (or carries no trace).
    The sliced trace still replays (each step's premises come from the
    start instance or an earlier kept step) and still derives the goal.
    """
    goal = goal_rows_of_outcome(outcome)
    if goal is None or outcome.chase_result is None:
        return None
    return minimize_trace(outcome.chase_result.steps, goal)


def _show_row(row: Row) -> str:
    return "(" + ", ".join(str(value) for value in row) + ")"


def explain_trace(steps: Sequence[ChaseStep]) -> str:
    """Render a trace as numbered derivation lines."""
    if not steps:
        return "(empty trace: the goal holds in the start instance)"
    lines = []
    for number, step in enumerate(steps, start=1):
        name = getattr(step.dependency, "name", None) or "dependency"
        bindings = ", ".join(f"{var}={value}" for var, value in step.bindings)
        added = "; ".join(_show_row(row) for row in step.added_rows)
        lines.append(f"{number:>3}. by {name} at [{bindings}]")
        lines.append(f"     add {added}")
    return "\n".join(lines)


def explain_outcome(outcome: InferenceOutcome) -> str:
    """A human-readable account of an implication outcome."""
    header = f"target: {outcome.target}"
    if outcome.status is InferenceStatus.PROVED:
        trace = minimize_proof(outcome)
        full = list(outcome.chase_result.steps) if outcome.chase_result else []
        if trace is None:
            # The outcome carries no usable certificate: trace or frozen
            # assignment missing, or the goal homomorphism is not
            # re-findable in the recorded final instance. Degrade to the
            # full trace (or an explanatory note) instead of crashing —
            # rendering must never be the thing that fails.
            note = (
                "PROVED -- certificate could not be minimized (missing "
                "trace or goal assignment); showing the full trace"
            )
            body = (
                explain_trace(full)
                if full
                else "(no replayable chase trace was recorded for this outcome)"
            )
            return "\n".join([header, note, body])
        body = explain_trace(trace)
        note = (
            f"PROVED -- {len(trace)} essential step(s) "
            f"(sliced from {len(full)} fired)"
        )
        return "\n".join([header, note, body])
    if outcome.status is InferenceStatus.DISPROVED:
        counterexample = outcome.counterexample
        size = len(counterexample) if counterexample is not None else 0
        lines = [header, f"DISPROVED -- finite counterexample with {size} rows"]
        if counterexample is not None:
            lines.append(counterexample.pretty())
        return "\n".join(lines)
    return "\n".join([header, "UNKNOWN -- budget exhausted, no counterexample found"])

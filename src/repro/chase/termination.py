"""Chase termination analysis: weak acyclicity.

The paper proves no algorithm decides TD inference, so no syntactic
criterion can guarantee chase termination for *all* dependency sets — but
sufficient criteria exist, and the standard one is **weak acyclicity**
(Fagin, Kolaitis, Miller & Popa): build the *dependency graph* over the
relation's positions (columns, in our single-relation setting) with

* a **regular** edge ``p → q`` whenever some dependency has a universal
  variable occurring in antecedent position ``p`` and conclusion position
  ``q`` (values may be copied from ``p`` to ``q``), and
* a **special** edge ``p ⇒ q`` whenever a universal variable occurring in
  antecedent position ``p`` also occurs in the conclusion, and some
  *existential* variable occurs in conclusion position ``q`` (a fresh
  value in ``q`` can be created from a value in ``p``);

the set is weakly acyclic when no cycle goes through a special edge, and
then every chase sequence terminates in polynomially many steps.

The punchline for this reproduction: the Gurevich–Lewis encodings are
**never** weakly acyclic. They cannot be — a weakly acyclic encoding
would let the chase decide ``D ⊨ D0`` and hence the word problem,
contradicting the Main Theorem. The test suite checks this on every
generated encoding (experiment E3's companion observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx

from repro.dependencies.classify import Dependency


@dataclass(frozen=True)
class PositionEdge:
    """One dependency-graph edge, with provenance."""

    source: int
    target: int
    special: bool
    dependency_name: str

    def describe(self, attributes) -> str:
        arrow = "=>" if self.special else "->"
        return (
            f"{attributes[self.source]} {arrow} {attributes[self.target]}"
            f"  [{self.dependency_name}]"
        )


def dependency_graph(dependencies: Sequence[Dependency]) -> nx.MultiDiGraph:
    """The Fagin-et-al dependency graph over column positions."""
    graph = nx.MultiDiGraph()
    if not dependencies:
        return graph
    arity = dependencies[0].schema.arity
    graph.add_nodes_from(range(arity))
    for dependency in dependencies:
        name = getattr(dependency, "name", None) or "dependency"
        universal = dependency.universal_variables()
        existential = dependency.existential_variables()
        conclusion_variables = {
            variable
            for atom in dependency.conclusions
            for variable in atom
        }
        existential_positions = sorted(
            {
                position
                for atom in dependency.conclusions
                for position, variable in enumerate(atom)
                if variable in existential
            }
        )
        for atom in dependency.antecedents:
            for position, variable in enumerate(atom):
                if variable not in universal:
                    continue
                occurs_in_conclusion = variable in conclusion_variables
                if occurs_in_conclusion:
                    for conclusion_atom in dependency.conclusions:
                        for target, target_variable in enumerate(conclusion_atom):
                            if target_variable == variable:
                                graph.add_edge(
                                    position,
                                    target,
                                    special=False,
                                    dependency_name=name,
                                )
                    for target in existential_positions:
                        graph.add_edge(
                            position, target, special=True, dependency_name=name
                        )
    return graph


def find_special_cycle(
    dependencies: Sequence[Dependency],
) -> Optional[list[PositionEdge]]:
    """A cycle through a special edge, or None when weakly acyclic.

    A special edge lies on a cycle exactly when its endpoints share a
    strongly connected component; the witness returned is that edge plus
    a shortest path closing the loop.
    """
    graph = dependency_graph(dependencies)
    if graph.number_of_nodes() == 0:
        return None
    component_of: dict[int, int] = {}
    for index, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = index
    for source, target, data in graph.edges(data=True):
        if not data.get("special"):
            continue
        if component_of[source] != component_of[target]:
            continue
        witness = [
            PositionEdge(
                source=source,
                target=target,
                special=True,
                dependency_name=data.get("dependency_name", "dependency"),
            )
        ]
        if source != target:
            path = nx.shortest_path(graph, target, source)
            for step_source, step_target in zip(path, path[1:]):
                edge_data = min(
                    graph.get_edge_data(step_source, step_target).values(),
                    key=lambda d: d.get("special", False),
                )
                witness.append(
                    PositionEdge(
                        source=step_source,
                        target=step_target,
                        special=bool(edge_data.get("special")),
                        dependency_name=edge_data.get(
                            "dependency_name", "dependency"
                        ),
                    )
                )
        return witness
    return None


def is_weakly_acyclic(dependencies: Sequence[Dependency]) -> bool:
    """True when no cycle of the dependency graph uses a special edge.

    Weak acyclicity guarantees chase termination (in polynomially many
    steps in the instance size); the converse fails, so False means only
    "no syntactic guarantee".
    """
    return find_special_cycle(dependencies) is None


@dataclass
class TerminationReport:
    """Outcome of the termination analysis, with a witness when negative."""

    weakly_acyclic: bool
    special_cycle: Optional[list[PositionEdge]]
    position_count: int
    regular_edge_count: int
    special_edge_count: int

    def describe(self, attributes=None) -> str:
        verdict = (
            "weakly acyclic: chase terminates on every instance"
            if self.weakly_acyclic
            else "NOT weakly acyclic: no syntactic termination guarantee"
        )
        summary = (
            f"{verdict} ({self.position_count} positions, "
            f"{self.regular_edge_count} regular / "
            f"{self.special_edge_count} special edges)"
        )
        if self.special_cycle and attributes is not None:
            loop = "; ".join(edge.describe(attributes) for edge in self.special_cycle)
            summary += f"; witness cycle: {loop}"
        return summary


def termination_report(dependencies: Sequence[Dependency]) -> TerminationReport:
    """Run the full analysis and package the counts and witness."""
    graph = dependency_graph(dependencies)
    special = sum(1 for *__, data in graph.edges(data=True) if data.get("special"))
    regular = graph.number_of_edges() - special
    cycle = find_special_cycle(dependencies)
    return TerminationReport(
        weakly_acyclic=cycle is None,
        special_cycle=cycle,
        position_count=graph.number_of_nodes(),
        regular_edge_count=regular,
        special_edge_count=special,
    )

"""Chase termination analysis: weak acyclicity.

The paper proves no algorithm decides TD inference, so no syntactic
criterion can guarantee chase termination for *all* dependency sets — but
sufficient criteria exist, and the standard one is **weak acyclicity**
(Fagin, Kolaitis, Miller & Popa). The analysis itself now lives in
:mod:`repro.analysis` (pure Python — the earlier ``networkx`` dependency
was never declared in ``setup.py``, so a clean install could import this
module and crash on first use); this module keeps the original public
surface as thin wrappers.

The punchline for this reproduction: the Gurevich–Lewis encodings are
**never** weakly acyclic. They cannot be — a weakly acyclic encoding
would let the chase decide ``D ⊨ D0`` and hence the word problem,
contradicting the Main Theorem. The test suite checks this on every
generated encoding (experiment E3's companion observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.graph import MultiDiGraph
from repro.analysis.positions import (
    PositionEdge,
    build_position_graph,
    find_special_cycle,
)
from repro.dependencies.classify import Dependency

__all__ = [
    "PositionEdge",
    "TerminationReport",
    "dependency_graph",
    "find_special_cycle",
    "is_weakly_acyclic",
    "termination_report",
]


def dependency_graph(dependencies: Sequence[Dependency]) -> MultiDiGraph:
    """The Fagin-et-al dependency graph over column positions."""
    return build_position_graph(dependencies)


def is_weakly_acyclic(dependencies: Sequence[Dependency]) -> bool:
    """True when no cycle of the dependency graph uses a special edge.

    Weak acyclicity guarantees chase termination (in polynomially many
    steps in the instance size); the converse fails, so False means only
    "no syntactic guarantee".
    """
    return find_special_cycle(dependencies) is None


@dataclass
class TerminationReport:
    """Outcome of the termination analysis, with a witness when negative."""

    weakly_acyclic: bool
    special_cycle: Optional[list[PositionEdge]]
    position_count: int
    regular_edge_count: int
    special_edge_count: int

    def describe(self, attributes=None) -> str:
        verdict = (
            "weakly acyclic: chase terminates on every instance"
            if self.weakly_acyclic
            else "NOT weakly acyclic: no syntactic termination guarantee"
        )
        summary = (
            f"{verdict} ({self.position_count} positions, "
            f"{self.regular_edge_count} regular / "
            f"{self.special_edge_count} special edges)"
        )
        if self.special_cycle and attributes is not None:
            loop = "; ".join(edge.describe(attributes) for edge in self.special_cycle)
            summary += f"; witness cycle: {loop}"
        return summary


def termination_report(dependencies: Sequence[Dependency]) -> TerminationReport:
    """Run the full analysis and package the counts and witness."""
    graph = dependency_graph(dependencies)
    special = sum(1 for *__, data in graph.edges(data=True) if data.get("special"))
    regular = graph.number_of_edges() - special
    cycle = find_special_cycle(dependencies)
    return TerminationReport(
        weakly_acyclic=cycle is None,
        special_cycle=cycle,
        position_count=graph.number_of_nodes(),
        regular_edge_count=regular,
        special_edge_count=special,
    )

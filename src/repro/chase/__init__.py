"""The chase engine (system S3).

The chase is the standard inference tool for tuple-generating dependencies:
repeatedly find an *active trigger* (a homomorphism of some dependency's
antecedents into the instance with no extension covering its conclusion)
and repair it by adding the conclusion with fresh labelled nulls for the
existential variables.

For **full** TDs the chase always terminates and decides implication. For
**embedded** TDs it may diverge — the paper proves no algorithm can decide
implication — so every entry point takes an explicit
:class:`~repro.chase.budget.Budget` and reports three-valued outcomes with
machine-checkable certificates (a chase trace for PROVED, a finite
counterexample database for DISPROVED).
"""

from repro.chase.budget import Budget, ChaseStats
from repro.chase.checkplan import DEFAULT_CHECKER, CheckPlan, ModelChecker, compile_check
from repro.chase.engine import DEFAULT_KERNEL, ChaseVariant, apply_step, chase
from repro.chase.plan import JoinPlan, KernelState, compile_plan, compile_program
from repro.chase.finite_models import (
    search_finite_counterexample,
    search_exhaustive,
    search_random,
)
from repro.chase.implication import (
    InferenceOutcome,
    InferenceStatus,
    implies,
    implies_all,
)
from repro.chase.modelcheck import all_violations, satisfies_all
from repro.chase.result import ChaseResult, ChaseStatus, ChaseStep
from repro.chase.termination import (
    TerminationReport,
    is_weakly_acyclic,
    termination_report,
)
from repro.chase.trigger import (
    Trigger,
    iter_active_triggers,
    iter_triggers,
    iter_triggers_touching,
)

__all__ = [
    "Budget",
    "ChaseStats",
    "ChaseVariant",
    "chase",
    "DEFAULT_KERNEL",
    "DEFAULT_CHECKER",
    "JoinPlan",
    "KernelState",
    "CheckPlan",
    "ModelChecker",
    "compile_plan",
    "compile_program",
    "compile_check",
    "apply_step",
    "ChaseResult",
    "ChaseStatus",
    "ChaseStep",
    "Trigger",
    "iter_triggers",
    "iter_active_triggers",
    "iter_triggers_touching",
    "is_weakly_acyclic",
    "termination_report",
    "TerminationReport",
    "InferenceOutcome",
    "InferenceStatus",
    "implies",
    "implies_all",
    "satisfies_all",
    "all_violations",
    "search_finite_counterexample",
    "search_random",
    "search_exhaustive",
]

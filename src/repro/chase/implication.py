"""Implication testing via the chase.

To decide whether a finite set ``D`` of dependencies logically implies a
dependency ``d`` (the paper's *inference problem*), freeze ``d``'s
antecedents into a canonical database, chase it with ``D``, and watch for
``d``'s conclusion:

* the conclusion becomes derivable  →  **PROVED** (sound for finite and
  unrestricted semantics alike; the chase trace is the certificate);
* the chase reaches a fixpoint without it  →  **DISPROVED** — the chased
  instance is a finite universal model satisfying ``D`` and violating
  ``d``, a counterexample under both semantics;
* the budget runs out first  →  **UNKNOWN** — which, by the paper's Main
  Theorem, no algorithm can always avoid.

For *full* dependencies the chase terminates, so the procedure is a
decision procedure there; undecidability lives entirely in the embedded
case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant, chase
from repro.chase.result import ChaseResult, ChaseStatus
from repro.dependencies.classify import Dependency
from repro.dependencies.template import Variable, is_variable
from repro.kernel.backend import resolve_join_backend
from repro.relational.homplan import find_homomorphism
from repro.relational.instance import Instance
from repro.relational.values import Value


class InferenceStatus(enum.Enum):
    """Three-valued outcome of an implication test.

    ``FAILED`` is an *operational* fourth value, never produced by the
    chase itself: the serving layer reports it for a query whose
    execution was quarantined after repeatedly crashing worker
    processes (see :mod:`repro.service.scheduler`). It asserts nothing
    about ``D |= d`` and is never cached.
    """

    PROVED = "proved"
    DISPROVED = "disproved"
    UNKNOWN = "unknown"
    FAILED = "failed"


@dataclass
class InferenceOutcome:
    """The result of one ``D ⊨ d`` test, with certificates.

    * ``chase_result`` — the full run; when PROVED its trace derives the
      frozen conclusion, replayable via :func:`repro.chase.engine.replay`.
    * ``counterexample`` — when DISPROVED, a finite database satisfying
      ``D`` but violating ``d``.
    * ``frozen_assignment`` — the universal-variable freezing used, so
      certificates can be checked independently.
    """

    status: InferenceStatus
    target: Dependency
    chase_result: Optional[ChaseResult] = None
    counterexample: Optional[Instance] = None
    frozen_assignment: Optional[dict[Variable, Value]] = None
    #: For FAILED outcomes only: what went wrong, operator-readable.
    error: Optional[str] = None
    #: Static-analysis provenance (JSON-safe dict from
    #: :meth:`repro.analysis.report.QueryProgram.provenance`): the
    #: fragment the premise set fell into, whether a termination
    #: certificate was issued, and whether pruning and the derived
    #: budget were actually applied to this run.
    analysis: Optional[dict] = None
    #: Which join backend (``"native"`` or ``"python"``) produced this
    #: outcome — provenance for mixed-backend caches and bug reports
    #: (the two backends are held to identical verdicts by the
    #: differential suites, so a disagreement is diagnostic gold).
    join_backend: Optional[str] = None

    @property
    def proved(self) -> bool:
        """True when the implication was established."""
        return self.status is InferenceStatus.PROVED

    @property
    def disproved(self) -> bool:
        """True when a counterexample was produced."""
        return self.status is InferenceStatus.DISPROVED

    def describe(self) -> str:
        """One-line summary for logs."""
        parts = [self.status.value]
        if self.chase_result is not None:
            parts.append(self.chase_result.describe())
        return " | ".join(parts)


def _freeze_target(target: Dependency) -> tuple[Instance, dict[Variable, Value]]:
    """Freeze the target's antecedents into a canonical instance."""
    from repro.relational.values import Const

    assignment: dict[Variable, Value] = {}
    for variable in sorted(target.universal_variables(), key=lambda v: v.name):
        assignment[variable] = Const(("frozen", variable.name))
    instance = Instance(
        target.schema,
        (
            tuple(assignment[variable] for variable in atom)
            for atom in target.antecedents
        ),
    )
    return instance, assignment


def conclusion_satisfied(
    instance: Instance,
    target: Dependency,
    frozen: dict[Variable, Value],
    *,
    engine: Optional[str] = None,
) -> bool:
    """Does ``instance`` contain the target's conclusion at the frozen match?

    One-shot calls (verifying a finished chase, the differential
    suites) run on the compiled homomorphism engine by default;
    ``engine`` / ``REPRO_HOM_ENGINE`` select the generic search.
    """
    witness = find_homomorphism(
        target.conclusions,
        instance,
        partial=frozen,
        flexible=is_variable,
        engine=engine,
    )
    return witness is not None


class ConclusionGoal:
    """The implication goal as an object the compiled kernel can compile.

    Calling it behaves exactly like ``conclusion_satisfied`` (the legacy
    kernel and ad-hoc callers use that path); the ``goal_atoms`` /
    ``goal_partial`` attributes let :mod:`repro.chase.plan` compile the
    same check into an int-index probe it evaluates after every firing.
    """

    __slots__ = ("target", "goal_atoms", "goal_partial", "goal_plan_cache")

    def __init__(self, target: Dependency, frozen: dict[Variable, Value]):
        self.target = target
        self.goal_atoms = target.conclusions
        self.goal_partial = frozen
        #: Slot for the kernel's compiled form of this goal (set on
        #: first compiled chase; reused by later chases of this goal).
        self.goal_plan_cache = None

    def __call__(self, instance: Instance) -> bool:
        # Pinned to the legacy homomorphism engine: the legacy chase
        # kernel evaluates the goal after *every* firing on a mutating
        # instance, where a compiled one-shot would rebuild its interned
        # view per call (the compiled kernel uses the incremental
        # GoalPlan path instead, so it never comes through here).
        return conclusion_satisfied(
            instance, self.target, self.goal_partial, engine="legacy"
        )


class FrozenStart:
    """A target's frozen start, shareable across repeated chases.

    The variant-racing scheduler chases the *same* frozen antecedent
    database once per race arm; without sharing, every arm re-freezes
    the target, re-interns the start rows into a fresh
    :class:`~repro.relational.values.InternTable`, and re-compiles the
    goal plan. A ``FrozenStart`` freezes once and hands each arm a
    fresh mutable copy that shares the original's intern table (ids
    only ever grow, so ids minted by one arm stay valid for the next —
    the kernel state built over the copy reuses them instead of
    re-interning from scratch) and the :class:`ConclusionGoal` object,
    whose ``goal_plan_cache`` then carries the compiled goal across
    arms. ``reuses`` counts the arms that avoided a rebuild.
    """

    __slots__ = ("target", "instance", "frozen", "goal", "reuses", "_handed")

    def __init__(self, target: Dependency):
        self.target = target
        self.instance, self.frozen = _freeze_target(target)
        self.goal = ConclusionGoal(target, self.frozen)
        self.reuses = 0
        self._handed = False

    def fresh_start(self) -> Instance:
        """A mutable copy of the frozen start for one chase arm."""
        if self._handed:
            self.reuses += 1
        self._handed = True
        return self.instance.copy(share_intern=True)


def implies(
    dependencies: Sequence[Dependency],
    target: Dependency,
    *,
    budget: Optional[Budget] = None,
    variant: ChaseVariant = ChaseVariant.STANDARD,
    record_trace: bool = True,
    kernel: Optional[str] = None,
    start: Optional[FrozenStart] = None,
    checkpoint: bool = False,
    analysis: str = "auto",
) -> InferenceOutcome:
    """Test whether ``dependencies ⊨ target`` by chasing the frozen target.

    ``kernel`` selects the chase kernel (compiled by default; see
    :func:`repro.chase.engine.chase`) — the benchmarks and differential
    tests use it to pin a side of the comparison. ``start`` passes a
    :class:`FrozenStart` built from the *same* target, so callers that
    chase one target repeatedly (the variant-racing scheduler) share
    its intern table and compiled goal plan across arms.

    ``checkpoint`` asks the compiled kernel to attach the suspended
    chase state to an UNKNOWN outcome's ``chase_result.checkpoint``; a
    covering-budget retry can then resume via
    :func:`repro.chase.checkpoint.resume_implies`.

    ``analysis`` controls the static analyzer (:mod:`repro.analysis`):

    * ``"auto"`` (default) — annotate the outcome with analysis
      provenance always; when the (pruned) premise set carries a
      termination certificate **and** the caller supplied no budget,
      chase the pruned program to fixpoint under the derived budget —
      UNKNOWN then becomes impossible. A caller-supplied budget is
      honored exactly as before (starvation tests, checkpoint flows).
    * ``"derive"`` — apply the certified path even over an explicit
      budget (the service sets this per-query when the HTTP client
      sent no budget of its own).
    * ``"off"`` — pre-analyzer behavior, no annotation; also what the
      analyzer itself uses for its internal entailment checks.
    """
    if start is not None:
        if start.target != target:
            raise ValueError("FrozenStart was built for a different target")
        working, frozen, goal = start.fresh_start(), start.frozen, start.goal
    else:
        working, frozen = _freeze_target(target)
        goal = ConclusionGoal(target, frozen)
    run_dependencies = list(dependencies)
    run_budget = budget
    run_checkpoint = checkpoint
    run_strata = None
    provenance: Optional[dict] = None
    if analysis != "off":
        from repro.analysis.report import prune_for_target

        program = prune_for_target(tuple(dependencies), target)
        derived = None
        certificate = program.certificate
        # The certified bound counts once-per-frontier-assignment
        # firings, a restricted-chase fact; the oblivious variant fires
        # per trigger and stays on the legacy budgeted path.
        if (
            certificate is not None
            and variant is not ChaseVariant.OBLIVIOUS
            and (budget is None or analysis == "derive")
        ):
            derived = certificate.derived_budget(
                len(working.active_domain()), len(working)
            )
        if derived is not None:
            # Certified: the pruned program reaches fixpoint strictly
            # inside the derived bound, so no checkpoint can ever be
            # needed and UNKNOWN cannot occur.
            run_dependencies = list(program.kept)
            run_budget = derived
            run_checkpoint = False
            strata = program.strata()
            if len(strata) > 1:
                run_strata = strata
        provenance = program.provenance(
            applied=derived is not None, derived=derived
        )
    # The start is a fresh (copy of the) frozen database never reused
    # afterwards, so the chase may mutate it directly instead of paying
    # a defensive copy.
    result = chase(
        working,
        run_dependencies,
        budget=run_budget,
        variant=variant,
        goal=goal,
        record_trace=record_trace,
        inplace=True,
        kernel=kernel,
        checkpoint=run_checkpoint,
        strata=run_strata,
    )
    backend = resolve_join_backend()
    if result.status is ChaseStatus.GOAL_REACHED:
        return InferenceOutcome(
            status=InferenceStatus.PROVED,
            target=target,
            chase_result=result,
            frozen_assignment=frozen,
            analysis=provenance,
            join_backend=backend,
        )
    if result.status is ChaseStatus.TERMINATED:
        return InferenceOutcome(
            status=InferenceStatus.DISPROVED,
            target=target,
            chase_result=result,
            counterexample=result.instance,
            frozen_assignment=frozen,
            analysis=provenance,
            join_backend=backend,
        )
    return InferenceOutcome(
        status=InferenceStatus.UNKNOWN,
        target=target,
        chase_result=result,
        frozen_assignment=frozen,
        analysis=provenance,
        join_backend=backend,
    )


def implies_all(
    dependencies: Sequence[Dependency],
    targets: Sequence[Dependency],
    *,
    budget: Optional[Budget] = None,
) -> list[InferenceOutcome]:
    """Run :func:`implies` against each target, sharing the budget spec."""
    return [implies(dependencies, target, budget=budget) for target in targets]

"""Model checking: does a database satisfy a set of dependencies?

Used throughout: the reduction's direction (B) verifies that the
counterexample database satisfies every ``Di(r)`` but not ``D0``; tests use
it as the ground truth the chase must agree with.

Both entry points check the whole set through one
:class:`~repro.chase.checkplan.ModelChecker`, so the compiled checker
(the default) interns the instance once and answers every per-dependency
question from int-index joins; ``checker="legacy"`` runs the generic
homomorphism search instead (the reference semantics).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.chase.checkplan import ModelChecker
from repro.dependencies.classify import Dependency
from repro.relational.instance import Instance


def satisfies_all(
    instance: Instance,
    dependencies: Iterable[Dependency],
    *,
    checker: Optional[str] = None,
) -> bool:
    """True when ``instance`` satisfies every dependency."""
    return ModelChecker(instance, checker=checker).satisfies_all(dependencies)


def all_violations(
    instance: Instance,
    dependencies: Sequence[Dependency],
    *,
    checker: Optional[str] = None,
) -> list[tuple[Dependency, dict]]:
    """Every violated dependency with one witnessing antecedent match.

    Returns an empty list exactly when :func:`satisfies_all` is true.
    """
    return ModelChecker(instance, checker=checker).all_violations(dependencies)

"""Model checking: does a database satisfy a set of dependencies?

Used throughout: the reduction's direction (B) verifies that the
counterexample database satisfies every ``Di(r)`` but not ``D0``; tests use
it as the ground truth the chase must agree with.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dependencies.classify import Dependency
from repro.relational.instance import Instance


def satisfies_all(instance: Instance, dependencies: Iterable[Dependency]) -> bool:
    """True when ``instance`` satisfies every dependency."""
    return all(dependency.holds_in(instance) for dependency in dependencies)


def all_violations(
    instance: Instance, dependencies: Sequence[Dependency]
) -> list[tuple[Dependency, dict]]:
    """Every violated dependency with one witnessing antecedent match.

    Returns an empty list exactly when :func:`satisfies_all` is true.
    """
    violations: list[tuple[Dependency, dict]] = []
    for dependency in dependencies:
        witness = dependency.find_violation(instance)
        if witness is not None:
            violations.append((dependency, witness))
    return violations

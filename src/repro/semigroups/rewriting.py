"""Derivations and a semi-decision procedure for the word problem.

``φ`` holds in every S-generated semigroup exactly when ``A0`` and ``0``
are congruent modulo the equations — equivalently (as the proof of the
Reduction Theorem's part (A) spells out), when there is a sequence of
words ``u₀ = A0, u₁, ..., u_m = 0`` where each ``uᵢ₊₁`` results from
``uᵢ`` by replacing a single occurrence of some ``xᵢ`` by ``yᵢ`` or vice
versa. A :class:`Derivation` is exactly such a sequence, and it is the
object the reduction replays as a chase proof.

The search is a bidirectional breadth-first search over the replacement
graph, bounded by a maximum word length and a visited-state budget.
Undecidability of the underlying word problem means the bounds are
essential: failure to find a derivation proves nothing, and the API says
so by returning ``None`` rather than "no".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import VerificationError
from repro.semigroups.presentation import Presentation
from repro.semigroups.words import Word, show, single_replacements


@dataclass(frozen=True)
class Derivation:
    """A replacement sequence ``u₀ → u₁ → ... → u_m``."""

    words: tuple[Word, ...]

    def __post_init__(self) -> None:
        if not self.words:
            raise VerificationError("a derivation needs at least one word")

    @property
    def source(self) -> Word:
        """The first word, ``u₀``."""
        return self.words[0]

    @property
    def target(self) -> Word:
        """The last word, ``u_m``."""
        return self.words[-1]

    @property
    def length(self) -> int:
        """The number of replacement steps, ``m``."""
        return len(self.words) - 1

    def steps(self) -> Iterator[tuple[Word, Word]]:
        """Consecutive word pairs."""
        for index in range(self.length):
            yield self.words[index], self.words[index + 1]

    def validate(self, presentation: Presentation) -> None:
        """Check every step is a single legal replacement.

        Raises :class:`~repro.errors.VerificationError` otherwise. This is
        run before a derivation is ever replayed as a chase proof.
        """
        for before, after in self.steps():
            if not _is_single_replacement(presentation, before, after):
                raise VerificationError(
                    f"step {show(before)} -> {show(after)} is not a single "
                    "replacement under the presentation"
                )

    def describe(self) -> str:
        """The sequence rendered one word per arrow."""
        return " -> ".join(show(w) for w in self.words)


def _is_single_replacement(presentation: Presentation, before: Word, after: Word) -> bool:
    for equation in presentation.equations:
        for lhs, rhs in ((equation.lhs, equation.rhs), (equation.rhs, equation.lhs)):
            for produced in single_replacements(before, lhs, rhs):
                if produced == after:
                    return True
    return False


def _neighbours(
    presentation: Presentation, current: Word, max_length: int
) -> Iterator[Word]:
    for equation in presentation.equations:
        for lhs, rhs in ((equation.lhs, equation.rhs), (equation.rhs, equation.lhs)):
            if len(current) - len(lhs) + len(rhs) > max_length:
                continue
            yield from single_replacements(current, lhs, rhs)


def find_derivation(
    presentation: Presentation,
    source: Word,
    target: Word,
    *,
    max_length: int = 8,
    max_visited: int = 200_000,
) -> Optional[Derivation]:
    """Search for a derivation from ``source`` to ``target``.

    Bidirectional BFS over single replacements, restricted to words of at
    most ``max_length`` letters and at most ``max_visited`` explored words.
    Returns a validated :class:`Derivation` or ``None`` (which, given the
    word problem's undecidability, means only "not found within bounds").
    """
    if source == target:
        return Derivation((source,))
    # parent maps also serve as visited sets; None marks the roots.
    forward: dict[Word, Optional[Word]] = {source: None}
    backward: dict[Word, Optional[Word]] = {target: None}
    forward_frontier = deque([source])
    backward_frontier = deque([target])
    visited = 2

    while forward_frontier and backward_frontier:
        # Expand the smaller frontier: classic bidirectional heuristic.
        if len(forward_frontier) <= len(backward_frontier):
            frontier, seen, other = forward_frontier, forward, backward
        else:
            frontier, seen, other = backward_frontier, backward, forward
        for __ in range(len(frontier)):
            current = frontier.popleft()
            for neighbour in _neighbours(presentation, current, max_length):
                if neighbour in seen:
                    continue
                seen[neighbour] = current
                visited += 1
                if neighbour in other:
                    derivation = _reconstruct(forward, backward, neighbour)
                    derivation.validate(presentation)
                    return derivation
                if visited >= max_visited:
                    return None
                frontier.append(neighbour)
    return None


def _reconstruct(
    forward: dict[Word, Optional[Word]],
    backward: dict[Word, Optional[Word]],
    meeting: Word,
) -> Derivation:
    front: list[Word] = []
    cursor: Optional[Word] = meeting
    while cursor is not None:
        front.append(cursor)
        cursor = forward[cursor]
    front.reverse()  # source ... meeting
    cursor = backward[meeting]
    tail: list[Word] = []
    while cursor is not None:
        tail.append(cursor)
        cursor = backward[cursor]
    return Derivation(tuple(front + tail))


def word_problem(
    presentation: Presentation,
    *,
    max_length: int = 8,
    max_visited: int = 200_000,
) -> Optional[Derivation]:
    """Search for a derivation witnessing ``A0 = 0``.

    This is the positive half of the Main Lemma's question: a returned
    derivation proves ``φ`` holds in every S-generated semigroup. ``None``
    is inconclusive.
    """
    return find_derivation(
        presentation,
        (presentation.a0,),
        (presentation.zero,),
        max_length=max_length,
        max_visited=max_visited,
    )

"""Finite semigroups as Cayley tables.

A :class:`FiniteSemigroup` stores its multiplication as an ``n × n`` numpy
integer table over element indices ``0..n-1``. Everything the paper's
direction (B) needs is here:

* zero and identity detection;
* the paper's **cancellation property**: for a semigroup with zero and an
  identity, condition

  (i)  ``(xy = xy' ≠ 0  or  yx = y'x ≠ 0)  ⇒  y = y'``;

  for a semigroup with zero but **no** identity, conditions (i) **and**

  (ii) ``(xy = x  or  yx = x)  ⇒  x = 0``

  (condition (ii) is what makes identity adjunction — used in the proof of
  part (B) — preserve cancellation, and the test suite checks exactly
  that);
* evaluation of words under letter assignments and equation/presentation
  satisfaction;
* generated subsemigroups, so "S-generated" can be enforced.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import SemigroupError
from repro.semigroups.presentation import Equation, Presentation
from repro.semigroups.words import Word

#: A letter assignment: presentation letter -> element index.
Assignment = Mapping[str, int]


class FiniteSemigroup:
    """A finite semigroup given by its Cayley table.

    ``table[i, j]`` is the product of elements ``i`` and ``j``. Element
    names are optional and used only for display.
    """

    __slots__ = ("table", "names", "_zero", "_identity")

    def __init__(
        self,
        table: Sequence[Sequence[int]] | np.ndarray,
        names: Optional[Sequence[str]] = None,
        *,
        check: bool = True,
    ):
        array = np.asarray(table, dtype=np.int64)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise SemigroupError(f"Cayley table must be square, got shape {array.shape}")
        size = array.shape[0]
        if size == 0:
            raise SemigroupError("a semigroup needs at least one element")
        if array.min() < 0 or array.max() >= size:
            raise SemigroupError("table entries must be element indices 0..n-1")
        self.table = array
        if names is None:
            self.names = tuple(f"e{index}" for index in range(size))
        else:
            if len(names) != size:
                raise SemigroupError("names must match the table size")
            self.names = tuple(names)
        if check and not self.is_associative():
            raise SemigroupError("multiplication table is not associative")
        self._zero = self._find_zero()
        self._identity = self._find_identity()

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self.table.shape[0])

    def product(self, x: int, y: int) -> int:
        """The product ``x · y``."""
        return int(self.table[x, y])

    def is_associative(self) -> bool:
        """Check ``(xy)z = x(yz)`` for all triples (vectorised)."""
        table = self.table
        left = table[table, :]  # left[i, j, k] = (i·j)·k
        right = table[:, table]  # right[i, j, k] = i·(j·k)
        return bool(np.array_equal(left, right))

    def _find_zero(self) -> Optional[int]:
        for candidate in range(self.size):
            row_ok = bool(np.all(self.table[candidate, :] == candidate))
            column_ok = bool(np.all(self.table[:, candidate] == candidate))
            if row_ok and column_ok:
                return candidate
        return None

    def _find_identity(self) -> Optional[int]:
        indices = np.arange(self.size)
        for candidate in range(self.size):
            row_ok = bool(np.array_equal(self.table[candidate, :], indices))
            column_ok = bool(np.array_equal(self.table[:, candidate], indices))
            if row_ok and column_ok:
                return candidate
        return None

    def zero(self) -> Optional[int]:
        """The zero element's index, or None."""
        return self._zero

    def identity(self) -> Optional[int]:
        """The identity element's index, or None."""
        return self._identity

    def has_zero(self) -> bool:
        """True when a (necessarily unique) zero exists."""
        return self._zero is not None

    def has_identity(self) -> bool:
        """True when a (necessarily unique) identity exists."""
        return self._identity is not None

    # ------------------------------------------------------------------
    # The paper's cancellation property
    # ------------------------------------------------------------------

    def satisfies_condition_i(self) -> bool:
        """Condition (i): nonzero products cancel.

        ``(xy = xy' ≠ 0 or yx = y'x ≠ 0) ⇒ y = y'``. Requires a zero.
        """
        zero = self._zero
        if zero is None:
            raise SemigroupError("the cancellation property presumes a zero")
        table = self.table
        for x in range(self.size):
            row = table[x, :]
            if _has_nonzero_collision(row, zero):
                return False
            column = table[:, x]
            if _has_nonzero_collision(column, zero):
                return False
        return True

    def satisfies_condition_ii(self) -> bool:
        """Condition (ii): ``(xy = x or yx = x) ⇒ x = 0``.

        Describes the circumstance where cancellation *would* produce an
        identity; the paper imposes it on identity-free semigroups so that
        adjoining an identity preserves cancellation.
        """
        zero = self._zero
        if zero is None:
            raise SemigroupError("the cancellation property presumes a zero")
        table = self.table
        for x in range(self.size):
            if x == zero:
                continue
            if bool(np.any(table[x, :] == x)) or bool(np.any(table[:, x] == x)):
                return False
        return True

    def has_cancellation_property(self) -> bool:
        """The paper's cancellation property.

        With an identity: condition (i) alone. Without: (i) and (ii).
        """
        if self.has_identity():
            return self.satisfies_condition_i()
        return self.satisfies_condition_i() and self.satisfies_condition_ii()

    # ------------------------------------------------------------------
    # Words, equations, presentations
    # ------------------------------------------------------------------

    def evaluate(self, w: Word, assignment: Assignment) -> int:
        """Evaluate a word under a letter assignment."""
        try:
            elements = [assignment[letter] for letter in w]
        except KeyError as missing:
            raise SemigroupError(f"assignment misses letter {missing}") from None
        value = elements[0]
        for element in elements[1:]:
            value = int(self.table[value, element])
        return value

    def satisfies_equation(self, equation: Equation, assignment: Assignment) -> bool:
        """Does the equation hold under the assignment?"""
        return self.evaluate(equation.lhs, assignment) == self.evaluate(
            equation.rhs, assignment
        )

    def satisfies_presentation(
        self, presentation: Presentation, assignment: Assignment
    ) -> bool:
        """Do all the presentation's equations hold under the assignment?"""
        return all(
            self.satisfies_equation(equation, assignment)
            for equation in presentation.equations
        )

    def generated_subsemigroup(self, generators: Iterable[int]) -> set[int]:
        """The closure of ``generators`` under multiplication."""
        closure = set(generators)
        frontier = list(closure)
        while frontier:
            fresh: list[int] = []
            for x in frontier:
                for y in sorted(closure):
                    for product in (self.product(x, y), self.product(y, x)):
                        if product not in closure:
                            closure.add(product)
                            fresh.append(product)
            frontier = fresh
        return closure

    def is_generated_by(self, generators: Iterable[int]) -> bool:
        """True when the generators' closure is the whole semigroup."""
        return len(self.generated_subsemigroup(generators)) == self.size

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteSemigroup):
            return NotImplemented
        return self.names == other.names and bool(
            np.array_equal(self.table, other.table)
        )

    def __hash__(self) -> int:
        return hash((self.names, self.table.tobytes()))

    def __repr__(self) -> str:
        flags = []
        if self.has_zero():
            flags.append("zero")
        if self.has_identity():
            flags.append("identity")
        extras = f" ({', '.join(flags)})" if flags else ""
        return f"<FiniteSemigroup size={self.size}{extras}>"

    def pretty(self) -> str:
        """The Cayley table with element names."""
        width = max(len(name) for name in self.names)
        header = " " * (width + 1) + " ".join(name.rjust(width) for name in self.names)
        lines = [header]
        for x in range(self.size):
            row = " ".join(
                self.names[self.product(x, y)].rjust(width) for y in range(self.size)
            )
            lines.append(f"{self.names[x].rjust(width)} {row}")
        return "\n".join(lines)


def _has_nonzero_collision(values: np.ndarray, zero: int) -> bool:
    """True when two distinct positions share a nonzero value."""
    seen: dict[int, bool] = {}
    for value in values.tolist():
        if value == zero:
            continue
        if value in seen:
            return True
        seen[value] = True
    return False

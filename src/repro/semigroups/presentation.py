"""Semigroup presentations and the paper's short-form normalisation.

A :class:`Presentation` is an alphabet ``S`` (containing the distinguished
symbols ``0`` and ``A0``) together with equations ``xᵢ = yᵢ`` between
words. The formulas ``φ`` of the Main Lemma are presentations whose
antecedent equations include the zero equations ``A·0 = 0`` and
``0·A = 0`` for every letter, with the implicit conclusion ``A0 = 0``.

The Reduction Theorem consumes presentations in **short form**: every
equation has ``|lhs| = 2`` and ``|rhs| = 1`` (written ``AB = C``).
:meth:`Presentation.normalized` implements the paper's transformation —
"if φ contains a conjunct ABC = DA, we introduce new symbols E and F into
S, add the equations AB = E and DA = F, and replace ABC = DA by EC = F" —
generalised to arbitrary word lengths. The transformation changes only the
presentation, not the presented semigroup, and in particular preserves
derivability of ``A0 = 0`` (checked by the test suite in both directions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import PresentationError
from repro.semigroups.words import Word, show, word

#: Conventional names for the distinguished symbols.
ZERO = "0"
A0 = "A0"


@dataclass(frozen=True)
class Equation:
    """An equation ``lhs = rhs`` between non-empty words."""

    lhs: Word
    rhs: Word

    @staticmethod
    def make(lhs: Iterable[str] | str, rhs: Iterable[str] | str) -> "Equation":
        """Build an equation from letter sequences."""
        return Equation(word(lhs), word(rhs))

    def is_short_form(self) -> bool:
        """True when ``|lhs| = 2`` and ``|rhs| = 1`` (the paper's AB = C)."""
        return len(self.lhs) == 2 and len(self.rhs) == 1

    def letters(self) -> set[str]:
        """All letters occurring on either side."""
        return set(self.lhs) | set(self.rhs)

    def oriented(self) -> "Equation":
        """The same equation with the longer side on the left."""
        if len(self.rhs) > len(self.lhs):
            return Equation(self.rhs, self.lhs)
        return self

    def __str__(self) -> str:
        return f"{show(self.lhs)} = {show(self.rhs)}"


class Presentation:
    """An alphabet with equations, in the shape of the Main Lemma's ``φ``.

    The conclusion ``A0 = 0`` is implicit: a presentation *is* the
    antecedent conjunction, and the question asked of it is always whether
    ``A0 = 0`` follows (equivalently, whether ``A0`` and ``0`` are
    congruent modulo the equations).
    """

    __slots__ = ("alphabet", "equations", "zero", "a0")

    def __init__(
        self,
        alphabet: Iterable[str],
        equations: Iterable[Equation],
        *,
        zero: str = ZERO,
        a0: str = A0,
    ):
        self.alphabet = tuple(dict.fromkeys(alphabet))  # order-preserving dedupe
        self.equations = tuple(equations)
        self.zero = zero
        self.a0 = a0
        if zero not in self.alphabet:
            raise PresentationError(f"the zero symbol {zero!r} must be in the alphabet")
        if a0 not in self.alphabet:
            raise PresentationError(f"the symbol {a0!r} must be in the alphabet")
        if zero == a0:
            raise PresentationError("A0 and 0 must be distinct symbols")
        for equation in self.equations:
            unknown = equation.letters() - set(self.alphabet)
            if unknown:
                raise PresentationError(
                    f"equation {equation} uses letters {sorted(unknown)} "
                    "outside the alphabet"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def with_zero_equations(
        alphabet: Iterable[str],
        extra_equations: Iterable[Equation] = (),
        *,
        zero: str = ZERO,
        a0: str = A0,
    ) -> "Presentation":
        """A presentation whose equations include the zero laws.

        Adds ``A·0 = 0`` and ``0·A = 0`` for every letter ``A`` (including
        ``0`` itself), as the Main Lemma requires, followed by the caller's
        extra equations.
        """
        letters = tuple(dict.fromkeys(tuple(alphabet) + (zero, a0)))
        equations: list[Equation] = []
        for letter in letters:
            equations.append(Equation((letter, zero), (zero,)))
            if letter != zero:
                equations.append(Equation((zero, letter), (zero,)))
        equations.extend(extra_equations)
        unique = tuple(dict.fromkeys(equations))
        return Presentation(letters, unique, zero=zero, a0=a0)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def is_short_form(self) -> bool:
        """True when every equation is ``AB = C`` shaped."""
        return all(equation.is_short_form() for equation in self.equations)

    def has_zero_equations(self) -> bool:
        """True when ``A·0 = 0`` and ``0·A = 0`` are present for all letters."""
        present = set(self.equations)
        for letter in self.alphabet:
            if Equation((letter, self.zero), (self.zero,)) not in present:
                return False
            if Equation((self.zero, letter), (self.zero,)) not in present:
                return False
        return True

    def short_equations(self) -> Iterator[Equation]:
        """The equations, verified to be in short form.

        Raises :class:`~repro.errors.PresentationError` if any is not; the
        reduction calls this so it can never silently mis-encode.
        """
        for equation in self.equations:
            if not equation.is_short_form():
                raise PresentationError(
                    f"equation {equation} is not in short form; "
                    "call .normalized() first"
                )
            yield equation

    def __repr__(self) -> str:
        return (
            f"<Presentation letters={len(self.alphabet)} "
            f"equations={len(self.equations)}>"
        )

    def describe(self) -> str:
        """Multi-line rendering: alphabet, then one equation per line."""
        lines = [f"alphabet: {', '.join(self.alphabet)}  (zero={self.zero}, A0={self.a0})"]
        lines.extend(f"  {equation}" for equation in self.equations)
        lines.append(f"conclusion asked: {self.a0} = {self.zero}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Short-form normalisation
    # ------------------------------------------------------------------

    def normalized(self) -> "Presentation":
        """An equivalent presentation with every equation in short form.

        Implements the paper's transformation with three cases per
        equation (after orienting the longer side left):

        * ``|lhs| >= 2`` — abbreviate the left side down to two letters and
          the right side down to one, introducing fresh abbreviation
          letters with their defining ``XY = Z`` equations;
        * ``|lhs| = |rhs| = 1`` — a letter identification ``A = B``;
          realised by substituting one letter for the other throughout
          (keeping the distinguished symbols), which presents the same
          semigroup;
        * empty sides are impossible (words are non-empty by construction).
        """
        fresh = _FreshLetters(self.alphabet)
        substitution: dict[str, str] = {}
        pending = [equation.oriented() for equation in self.equations]
        produced: list[Equation] = []
        extra_letters: list[str] = []

        def substitute(w: Word) -> Word:
            return tuple(substitution.get(letter, letter) for letter in w)

        for equation in pending:
            lhs = substitute(equation.lhs)
            rhs = substitute(equation.rhs)
            if len(lhs) == 1 and len(rhs) == 1:
                keep, drop = _identification(lhs[0], rhs[0], self.zero, self.a0)
                if keep == drop:
                    continue  # the equation became trivial under substitution
                if drop in (self.zero, self.a0):
                    # Both letters distinguished: the presentation forces
                    # A0 = 0 outright; keep that fact as a marker equation
                    # the rewriting engine can use directly.
                    produced.append(Equation((self.a0, self.zero), (self.zero,)))
                    produced.append(Equation((self.a0, self.a0), (self.a0,)))
                    produced.append(Equation((self.a0, self.a0), (self.zero,)))
                    continue
                substitution[drop] = keep
                substitution.update(
                    {
                        old: (keep if new == drop else new)
                        for old, new in substitution.items()
                    }
                )
                continue
            lhs, abbrev_eqs, abbrev_letters = _shorten(lhs, 2, fresh)
            produced.extend(abbrev_eqs)
            extra_letters.extend(abbrev_letters)
            rhs, abbrev_eqs, abbrev_letters = _shorten(rhs, 1, fresh)
            produced.extend(abbrev_eqs)
            extra_letters.extend(abbrev_letters)
            if len(lhs) == 1:
                # Oriented equations can still end 1 = 1 after shortening
                # only if lhs was length 1 to begin with, handled above.
                raise PresentationError(f"unexpected shape for {equation}")
            produced.append(Equation(lhs, rhs))

        if substitution:
            produced = [
                Equation(
                    tuple(substitution.get(letter, letter) for letter in eq.lhs),
                    tuple(substitution.get(letter, letter) for letter in eq.rhs),
                )
                for eq in produced
            ]
        alphabet = tuple(
            dict.fromkeys(
                tuple(substitution.get(letter, letter) for letter in self.alphabet)
                + tuple(extra_letters)
            )
        )
        # Abbreviation letters are definitional (Abbr = XY), so their zero
        # equations follow from the originals (Abbr·0 = X·Y·0 = 0); adding
        # them keeps the normalised presentation in the Main Lemma's form
        # whenever the original was. Only fresh letters are extended — the
        # caller's own letters keep exactly the laws they were given.
        if self.has_zero_equations():
            for letter in extra_letters:
                produced.append(Equation((letter, self.zero), (self.zero,)))
                produced.append(Equation((self.zero, letter), (self.zero,)))
        unique = tuple(dict.fromkeys(produced))
        result = Presentation(alphabet, unique, zero=self.zero, a0=self.a0)
        if not result.is_short_form():
            raise PresentationError("normalisation failed to reach short form")
        return result


def _identification(a: str, b: str, zero: str, a0: str) -> tuple[str, str]:
    """Decide which letter survives an ``A = B`` identification."""
    if a == b:
        return a, a
    distinguished = {zero, a0}
    if a in distinguished and b in distinguished:
        return a, b  # caller treats this as the forced A0 = 0 case
    if b in distinguished:
        return b, a
    return a, b


def _shorten(
    w: Word, target_length: int, fresh: "_FreshLetters"
) -> tuple[Word, list[Equation], list[str]]:
    """Abbreviate ``w`` down to ``target_length`` letters.

    Repeatedly replaces the leading two letters by a fresh abbreviation
    letter, emitting the defining short-form equation ``w₁w₂ = E``.
    """
    equations: list[Equation] = []
    letters: list[str] = []
    current = w
    while len(current) > target_length:
        abbreviation = fresh.take()
        equations.append(Equation(current[:2], (abbreviation,)))
        letters.append(abbreviation)
        current = (abbreviation,) + current[2:]
    return current, equations, letters


class _FreshLetters:
    """Generates abbreviation letters avoiding an existing alphabet."""

    def __init__(self, avoid: Iterable[str]):
        self._avoid = set(avoid)
        self._counter = 0

    def take(self) -> str:
        while True:
            candidate = f"Abbr{self._counter}"
            self._counter += 1
            if candidate not in self._avoid:
                self._avoid.add(candidate)
                return candidate

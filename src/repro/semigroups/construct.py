"""Standard finite semigroup constructions.

These provide the counter-models for the negative instances of the word
problem (direction (B) of the Reduction Theorem) and the raw material for
the search catalogue. The star of the show is :func:`free_nilpotent`: the
monogenic nilpotent semigroup ``{a, a², ..., a^{k-1}, 0}`` with
``a^k = 0``, which has a zero, no identity, and the paper's cancellation
property — exactly what the Main Lemma's second set asks for.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SemigroupError
from repro.semigroups.finite import FiniteSemigroup


def null_semigroup(size: int) -> FiniteSemigroup:
    """The null (constant) semigroup: every product is the zero element.

    Element ``size - 1`` is the zero. Trivially associative; has the
    cancellation property vacuously (no nonzero products at all) and, for
    ``size >= 2``, no identity.
    """
    if size < 1:
        raise SemigroupError("size must be >= 1")
    zero = size - 1
    table = np.full((size, size), zero, dtype=np.int64)
    names = [f"n{index}" for index in range(size - 1)] + ["zero"]
    return FiniteSemigroup(table, names)


def free_nilpotent(index: int) -> FiniteSemigroup:
    """The monogenic nilpotent semigroup of nilpotency index ``index``.

    Elements ``a, a², ..., a^{index-1}, 0`` with ``a^index = 0``:
    ``size = index`` elements, element ``i`` (0-based) standing for
    ``a^{i+1}`` and the last element being zero. For ``index = 3`` this is
    the canonical counter-model ``{a, a², 0}`` used in the experiments.
    """
    if index < 2:
        raise SemigroupError("nilpotency index must be >= 2")
    size = index
    zero = size - 1
    table = np.empty((size, size), dtype=np.int64)
    for x in range(size):
        for y in range(size):
            power = (x + 1) + (y + 1)  # a^(x+1) · a^(y+1) = a^power
            table[x, y] = power - 1 if power <= index - 1 else zero
    names = [f"a^{power}" for power in range(1, size)] + ["zero"]
    names[0] = "a"
    return FiniteSemigroup(table, names)


def monogenic(index: int, period: int) -> FiniteSemigroup:
    """The monogenic semigroup with the given index and period.

    Elements ``a, a², ..., a^{index+period-1}`` with
    ``a^{index+period} = a^{index}``. ``monogenic(1, n)`` is the cyclic
    group of order ``n``; large-index instances populate the search
    catalogue with non-nilpotent shapes.
    """
    if index < 1 or period < 1:
        raise SemigroupError("index and period must be >= 1")
    size = index + period - 1
    table = np.empty((size, size), dtype=np.int64)
    for x in range(size):
        for y in range(size):
            power = (x + 1) + (y + 1)
            while power > size:
                power -= period
            table[x, y] = power - 1
    names = [f"a^{power}" for power in range(1, size + 1)]
    names[0] = "a"
    return FiniteSemigroup(table, names)


def cyclic_group(order: int) -> FiniteSemigroup:
    """The cyclic group of the given order (written multiplicatively)."""
    if order < 1:
        raise SemigroupError("order must be >= 1")
    table = np.fromfunction(
        lambda x, y: (x + y) % order, (order, order), dtype=np.int64
    ).astype(np.int64)
    names = ["e"] + [f"g^{index}" for index in range(1, order)]
    if order > 1:
        names[1] = "g"
    return FiniteSemigroup(table, names)


def left_zero(size: int) -> FiniteSemigroup:
    """The left-zero semigroup: ``x · y = x``. No zero for ``size >= 2``."""
    if size < 1:
        raise SemigroupError("size must be >= 1")
    table = np.tile(np.arange(size, dtype=np.int64).reshape(size, 1), (1, size))
    return FiniteSemigroup(table, [f"l{index}" for index in range(size)])


def adjoin_identity(semigroup: FiniteSemigroup) -> FiniteSemigroup:
    """``G′ = G ∪ {I}``: add a fresh two-sided identity.

    This is the first move in the proof of part (B); the paper's claim
    that it preserves the cancellation property (thanks to condition (ii))
    is verified by the test suite over the whole catalogue.
    """
    size = semigroup.size
    table = np.empty((size + 1, size + 1), dtype=np.int64)
    table[:size, :size] = semigroup.table
    identity = size
    table[identity, : size + 1] = np.arange(size + 1)
    table[: size + 1, identity] = np.arange(size + 1)
    names = semigroup.names + ("I",)
    return FiniteSemigroup(table, names)


def adjoin_zero(semigroup: FiniteSemigroup) -> FiniteSemigroup:
    """``G ∪ {0}``: add a fresh two-sided zero."""
    size = semigroup.size
    table = np.empty((size + 1, size + 1), dtype=np.int64)
    table[:size, :size] = semigroup.table
    zero = size
    table[zero, :] = zero
    table[:, zero] = zero
    names = semigroup.names + ("0*",)
    return FiniteSemigroup(table, names)

"""Bounded congruence closure: the quotient semigroup ``S*/≈``, truncated.

The proof of part (A) invokes the quotient construction: if no derivation
``A0 →* 0`` exists, "let ≈ be the equivalence relation on strings induced
by such replacements; then the quotient semigroup ``S*/≈`` would provide a
counterexample to φ". The full quotient is infinite in general; this
module computes its restriction to words of bounded length:

* all words of length ≤ L over the alphabet;
* the congruence classes induced by single replacements (union-find over
  the replacement edges);
* the partial multiplication table on classes (defined where the
  concatenation still fits in the bound).

Uses: an independent cross-check of the rewriting engine (``A0 ≈ 0``
within the bound iff a bounded derivation exists), class-growth series
for the benchmarks, and explicit finite *approximations* of the paper's
counterexample quotient on negative instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.semigroups.presentation import Presentation
from repro.semigroups.words import Word, single_replacements


@dataclass
class BoundedQuotient:
    """The congruence classes of words of length ≤ bound.

    ``class_of`` maps each word to its class representative (the
    lexicographically least, shortest member); ``classes`` groups the
    words; ``products`` is the partial class multiplication (defined when
    some concatenation of members stays within the bound).
    """

    presentation: Presentation
    bound: int
    class_of: dict[Word, Word]
    classes: dict[Word, frozenset[Word]]
    products: dict[tuple[Word, Word], Word]

    @property
    def word_count(self) -> int:
        """Number of words enumerated."""
        return len(self.class_of)

    @property
    def class_count(self) -> int:
        """Number of congruence classes within the bound."""
        return len(self.classes)

    def are_congruent(self, left: Word, right: Word) -> bool:
        """Are two (bounded) words congruent *within the bound*?

        A negative answer is only "not congruent via words of length
        ≤ bound" — derivations may need longer intermediate words, which
        is precisely why the word problem is undecidable.
        """
        return self.class_of[left] == self.class_of[right]

    def a0_collapses(self) -> bool:
        """Does ``A0 ≈ 0`` hold within the bound?"""
        return self.are_congruent(
            (self.presentation.a0,), (self.presentation.zero,)
        )

    def describe(self) -> str:
        """One-line summary for experiment logs."""
        return (
            f"bound {self.bound}: {self.word_count} words in "
            f"{self.class_count} classes; A0 ~ 0: {self.a0_collapses()}"
        )


class _WordUnionFind:
    def __init__(self) -> None:
        self._parent: dict[Word, Word] = {}

    def add(self, word: Word) -> None:
        self._parent.setdefault(word, word)

    def find(self, word: Word) -> Word:
        parent = self._parent
        root = word
        while parent[root] != root:
            root = parent[root]
        while parent[word] != root:
            parent[word], word = root, parent[word]
        return root

    def union(self, left: Word, right: Word) -> None:
        # Keep the "nicer" representative: shorter, then lexicographic.
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return
        keep, drop = sorted(
            (root_left, root_right), key=lambda w: (len(w), w)
        )
        self._parent[drop] = keep

    def words(self):
        return self._parent.keys()


def bounded_quotient(presentation: Presentation, bound: int) -> BoundedQuotient:
    """Compute the length-bounded quotient of ``S*`` by the equations.

    Enumerates all ``n + n² + ... + n^bound`` words, links each to its
    single-replacement neighbours that stay within the bound, and closes
    under union-find. Exponential in the bound — meant for small bounds
    (cross-checks and benchmarks), not as a solver.
    """
    if bound < 1:
        raise ValueError("bound must be >= 1")
    forest = _WordUnionFind()
    words: list[Word] = []
    for length in range(1, bound + 1):
        for letters in itertools.product(presentation.alphabet, repeat=length):
            forest.add(letters)
            words.append(letters)
    for word in words:
        for equation in presentation.equations:
            for lhs, rhs in (
                (equation.lhs, equation.rhs),
                (equation.rhs, equation.lhs),
            ):
                if len(word) - len(lhs) + len(rhs) > bound:
                    continue
                for neighbour in single_replacements(word, lhs, rhs):
                    forest.union(word, neighbour)

    class_of = {word: forest.find(word) for word in words}
    classes: dict[Word, set[Word]] = {}
    for word, representative in class_of.items():
        classes.setdefault(representative, set()).add(word)

    products: dict[tuple[Word, Word], Word] = {}
    representatives = sorted(classes, key=lambda w: (len(w), w))
    for left in representatives:
        for right in representatives:
            if len(left) + len(right) <= bound:
                products[(left, right)] = class_of[left + right]

    return BoundedQuotient(
        presentation=presentation,
        bound=bound,
        class_of=class_of,
        classes={rep: frozenset(members) for rep, members in classes.items()},
        products=products,
    )


def quotient_agrees_with_rewriting(
    presentation: Presentation, bound: int, *, max_visited: int = 100_000
) -> bool:
    """Cross-check: quotient congruence == bounded derivation existence.

    For every pair of class representatives, the rewriting engine (capped
    at the same word-length bound) finds a derivation exactly when the
    quotient puts them in one class. Used by the test suite to validate
    both components against each other.
    """
    from repro.semigroups.rewriting import find_derivation

    quotient = bounded_quotient(presentation, bound)
    representatives = sorted(quotient.classes, key=lambda w: (len(w), w))
    for left, right in itertools.combinations(representatives, 2):
        derivation = find_derivation(
            presentation, left, right, max_length=bound, max_visited=max_visited
        )
        congruent = quotient.are_congruent(left, right)
        if congruent != (derivation is not None):
            return False
    return True

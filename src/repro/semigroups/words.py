"""Words over an alphabet: the elements of the free semigroup ``S*``.

A word is a non-empty tuple of letters (strings). The paper's two
distinguished letters are the zero symbol ``0`` and the letter ``A0``
whose collapse to zero the formula ``φ`` asserts; those conventions live
in :mod:`repro.semigroups.presentation`, while this module is plain
string-rewriting plumbing: occurrence search and replacement.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import PresentationError

#: A word: a tuple of letters. The empty word is not a semigroup element
#: (semigroups have no identity by default) and is rejected everywhere.
Word = tuple[str, ...]


def word(text: Sequence[str] | str) -> Word:
    """Build a word from a sequence of letters.

    Accepts an iterable of letter names. A plain string is treated as a
    single letter (letters like ``"A0"`` are multi-character, so strings
    are **not** split character-wise).
    """
    if isinstance(text, str):
        letters: tuple[str, ...] = (text,)
    else:
        letters = tuple(text)
    if not letters:
        raise PresentationError("the empty word is not a semigroup element")
    for letter in letters:
        if not isinstance(letter, str) or not letter:
            raise PresentationError(f"letters must be non-empty strings, got {letter!r}")
    return letters


def concat(*parts: Word) -> Word:
    """Concatenate words."""
    letters: list[str] = []
    for part in parts:
        letters.extend(part)
    if not letters:
        raise PresentationError("concatenation produced the empty word")
    return tuple(letters)


def letters_of(w: Word) -> set[str]:
    """The set of letters occurring in ``w``."""
    return set(w)


def show(w: Word) -> str:
    """Render a word with dots between letters: ``A0.0``."""
    return ".".join(w)


def occurrences(w: Word, pattern: Word) -> Iterator[int]:
    """Yield every start index at which ``pattern`` occurs in ``w``."""
    limit = len(w) - len(pattern)
    for start in range(limit + 1):
        if w[start : start + len(pattern)] == pattern:
            yield start


def replace_at(w: Word, start: int, pattern: Word, replacement: Word) -> Word:
    """Replace the occurrence of ``pattern`` at ``start`` by ``replacement``.

    Raises :class:`~repro.errors.PresentationError` when ``pattern`` does
    not actually occur at ``start`` — replacements in derivations are
    always verified, never trusted.
    """
    if w[start : start + len(pattern)] != pattern:
        raise PresentationError(
            f"pattern {show(pattern)} does not occur at {start} in {show(w)}"
        )
    return w[:start] + replacement + w[start + len(pattern) :]


def single_replacements(w: Word, lhs: Word, rhs: Word) -> Iterator[Word]:
    """All words obtained by replacing one occurrence of ``lhs`` by ``rhs``."""
    for start in occurrences(w, lhs):
        yield replace_at(w, start, lhs, rhs)

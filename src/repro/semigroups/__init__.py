"""Semigroup substrate (system S4).

The paper's undecidability proof rests on a word problem for *cancellation
semigroups with zero* (the Main Lemma, proved in the companion paper
Gurevich & Lewis, "The word problem for cancellation semigroups with
zero"). This package implements everything the reduction consumes:

* words and presentations with the paper's distinguished symbols ``A0``
  (the letter whose triviality is asked) and ``0`` (the zero), including
  the zero equations ``A·0 = 0``, ``0·A = 0``;
* normalisation of presentations to the paper's *short form* — every
  antecedent equation ``AB = C`` with ``|lhs| = 2`` and ``|rhs| = 1``;
* a rewriting-based semi-decision procedure for the word problem that
  returns explicit derivations ``u₀, u₁, ..., u_m`` (replayed by the
  reduction as chase proofs);
* finite semigroups as Cayley tables, with the paper's cancellation
  property (conditions (i) and (ii)), zero/identity detection, identity
  adjunction, and a catalogue plus exhaustive search for finite
  counter-models.
"""

from repro.semigroups.congruence import (
    BoundedQuotient,
    bounded_quotient,
    quotient_agrees_with_rewriting,
)
from repro.semigroups.construct import (
    adjoin_identity,
    adjoin_zero,
    cyclic_group,
    free_nilpotent,
    left_zero,
    monogenic,
    null_semigroup,
)
from repro.semigroups.finite import Assignment, FiniteSemigroup
from repro.semigroups.presentation import Equation, Presentation
from repro.semigroups.rewriting import Derivation, find_derivation, word_problem
from repro.semigroups.search import CounterModel, find_counter_model, iter_semigroups
from repro.semigroups.words import Word, concat, letters_of, replace_at, word

__all__ = [
    "Word",
    "word",
    "concat",
    "letters_of",
    "replace_at",
    "Equation",
    "Presentation",
    "Derivation",
    "find_derivation",
    "word_problem",
    "FiniteSemigroup",
    "Assignment",
    "adjoin_identity",
    "adjoin_zero",
    "cyclic_group",
    "free_nilpotent",
    "left_zero",
    "monogenic",
    "null_semigroup",
    "CounterModel",
    "find_counter_model",
    "iter_semigroups",
    "BoundedQuotient",
    "bounded_quotient",
    "quotient_agrees_with_rewriting",
]

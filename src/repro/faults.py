"""Deterministic fault injection for the resilience suite.

Production code calls :func:`fire` at a handful of named *fault points*
(worker dispatch, the disk-cache append path, server admission, the
response writer). In normal operation every call is one dict lookup
against ``os.environ`` and returns False. Tests arm a point by setting

    REPRO_FAULT_<POINT> = "<selector>[@<latch-path>]"

where ``<POINT>`` is the upper-cased point name and

* ``selector`` — ``*`` matches every key the call site passes;
  anything else must equal ``str(key)`` exactly (the scheduler passes
  the query slot, the server passes the request path, ...);
* ``@<latch-path>`` — optional fire-*once* semantics across processes:
  the first matching call atomically creates the latch file and
  triggers; later calls (in any process) see the file and stay quiet.
  Without a latch the point triggers on every selector match.

The env-var transport is deliberate: forkserver workers inherit the
armed environment, so a test can reach inside a worker process it never
talks to directly. The call sites currently wired (see the chaos suite
under ``tests/chaos/``):

========================  ====================================================
point                     effect when triggered
========================  ====================================================
``worker_kill``           ``os._exit(1)`` inside a pool worker mid-dispatch
                          (key: query slot)
``cache_tear``            the JSON-lines store appends a torn, truncated
                          line for this entry (key: fingerprint)
``shed``                  the server treats the admission queue as full and
                          sheds the request (key: request path)
``drop_conn``             the server closes the connection without writing a
                          response (key: request path)
========================  ====================================================
"""

from __future__ import annotations

import os
from typing import Optional

#: Env-var prefix for all fault points.
PREFIX = "REPRO_FAULT_"


def _parse(spec: str) -> tuple[str, Optional[str]]:
    """Split ``selector[@latch]``; the latch may contain later ``@``s."""
    if "@" in spec:
        selector, latch = spec.split("@", 1)
        return selector, latch or None
    return spec, None


def armed(point: str) -> bool:
    """True when ``point`` has an injection spec in the environment."""
    return bool(os.environ.get(PREFIX + point.upper()))


def fire(point: str, key: object = None) -> bool:
    """Should the fault at ``point`` trigger for ``key`` right now?

    False unless the point is armed, the selector matches ``key`` and
    (when a latch path is given) this is the first matching call across
    all processes sharing the latch. Never raises: a malformed spec or
    an unwritable latch path disarms the point rather than taking down
    the caller — fault injection must not become a fault of its own.
    """
    spec = os.environ.get(PREFIX + point.upper())
    if not spec:
        return False
    selector, latch = _parse(spec)
    if selector != "*" and selector != str(key):
        return False
    if latch is None:
        return True
    try:
        fd = os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    os.write(fd, f"{point}:{key}\n".encode())
    os.close(fd)
    return True

"""A sound derivation calculus for template dependencies.

Sadri & Ullman (1980) — the paper that introduced TDs — gave a complete
axiomatization for them, and the paper under reproduction proves the
consequences of that system are not recursively enumerable *for the
finite-database semantics* (no recursive axiomatization can be sound and
complete there). This module implements the calculus side of that story:

* **Triviality** — a TD whose conclusion is subsumed by its antecedents
  is an axiom (holds in every database);
* **Subsumption (weakening / instantiation)** — ``T`` derives ``T'``
  when a column-respecting substitution maps ``T``'s antecedents into
  ``T'``'s and ``T``'s conclusion onto ``T'``'s (existentials mapped
  injectively to existentials); this covers augmentation (extra
  antecedents) and variable identification in one rule;
* **Composition** — the symbolic chase step: match ``T2``'s antecedents
  into ``T1``'s antecedents *plus its conclusion* and conclude
  ``h(c2)`` from ``T1``'s antecedents;
* **Tableau derivations** — :func:`derive` builds proof objects by
  growing the target's antecedent tableau with composition steps until
  the target's conclusion is subsumed (the calculus reading of the
  chase; sound and, for the unrestricted semantics, exactly as complete
  as the chase is).

Every rule is *sound* (property-tested against the chase); completeness
for the finite semantics is impossible by the paper's Main Theorem, and
:func:`derive` is bounded accordingly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.dependencies.template import Atom, TemplateDependency, Variable, is_variable
from repro.errors import VerificationError
from repro.relational.homomorphism import apply_assignment
from repro.relational.homplan import find_homomorphism, iter_homomorphisms
from repro.relational.instance import Instance


def _atoms_instance(schema, atoms: Sequence[Atom]) -> Instance:
    """Pack atoms into an Instance so homomorphism search applies to them."""
    return Instance(schema, (tuple(atom) for atom in atoms))


# ---------------------------------------------------------------------------
# Rule 1: triviality
# ---------------------------------------------------------------------------

def is_axiom(td: TemplateDependency) -> bool:
    """Triviality rule: the conclusion follows from the antecedents alone."""
    return td.is_trivial()


# ---------------------------------------------------------------------------
# Rule 2: subsumption
# ---------------------------------------------------------------------------

def subsumes(
    general: TemplateDependency, specific: TemplateDependency
) -> Optional[dict]:
    """One-step weakening: does ``general`` syntactically yield ``specific``?

    Returns the witnessing substitution ``h`` (or None): ``h`` maps every
    antecedent of ``general`` to an antecedent of ``specific`` and
    ``general``'s conclusion exactly onto ``specific``'s, sending
    existential variables injectively to existential variables and never
    sending a universal variable of ``general`` to an existential of
    ``specific``. Under these conditions ``general ⊨ specific`` — the
    rule covers augmentation (extra antecedents in ``specific``) and
    identification of universal variables.
    """
    if general.schema != specific.schema:
        return None
    target_atoms = _atoms_instance(specific.schema, specific.antecedents)
    specific_existentials = specific.existential_variables()
    general_existentials = general.existential_variables()
    for h in iter_homomorphisms(
        general.antecedents, target_atoms, flexible=is_variable
    ):
        # h covers general's universal variables; it must avoid the
        # specific dependency's existentials (they may not occur in
        # antecedents, so this holds automatically, but keep the check
        # explicit for safety).
        if any(value in specific_existentials for value in h.values()):
            continue
        extension = dict(h)
        ok = True
        used_existentials: set[Variable] = set()
        for source, destination in zip(general.conclusion, specific.conclusion):
            if source in extension:
                if extension[source] != destination:
                    ok = False
                    break
            else:
                # source is existential in general: it must map to an
                # existential of specific, injectively.
                if source in general_existentials:
                    if destination not in specific_existentials:
                        ok = False
                        break
                    if destination in used_existentials:
                        # Injectivity is per source variable; the same
                        # source may repeat, a different one may not reuse.
                        pass
                    used_existentials.add(destination)
                extension[source] = destination
        if not ok:
            continue
        # Injectivity on existentials: two distinct existentials of
        # general must not collapse onto one variable of specific.
        images = [
            extension[variable]
            for variable in general_existentials
            if variable in extension
        ]
        if len(set(images)) != len(images):
            continue
        if tuple(
            extension.get(variable, variable) for variable in general.conclusion
        ) == specific.conclusion:
            return dict(extension)
    return None


# ---------------------------------------------------------------------------
# Rule 3: composition (the symbolic chase step)
# ---------------------------------------------------------------------------

def compose(
    first: TemplateDependency, second: TemplateDependency
) -> Iterator[TemplateDependency]:
    """All single-step compositions of ``second`` against ``first``.

    ``first``'s antecedents plus its conclusion form a tableau (the
    conclusion's existential variables act as fresh constants there);
    every match ``h`` of ``second``'s antecedents into that tableau
    yields the derived dependency ``antecedents(first) ⇒ h(c₂)``, with
    ``second``'s existentials renamed fresh. Soundness: in any database
    satisfying both, a match of ``first``'s antecedents extends to its
    conclusion, ``h`` then matches ``second``'s antecedents, and
    ``second`` supplies the concluded tuple.
    """
    if first.schema != second.schema:
        return
    # Rename second's variables apart from first's.
    taken = {variable.name for variable in first.variables()}
    renaming = {}
    for variable in sorted(second.variables(), key=lambda v: v.name):
        fresh_name = variable.name
        while fresh_name in taken:
            fresh_name = fresh_name + "~"
        taken.add(fresh_name)
        renaming[variable] = Variable(fresh_name)
    second = second.rename(renaming)

    tableau = _atoms_instance(
        first.schema, list(first.antecedents) + [first.conclusion]
    )
    seen: set = set()
    for h in iter_homomorphisms(
        second.antecedents, tableau, flexible=is_variable
    ):
        conclusion = apply_assignment(
            second.conclusion, h, flexible=is_variable
        )
        if conclusion in seen:
            continue
        seen.add(conclusion)
        derived = TemplateDependency(
            first.schema,
            first.antecedents,
            conclusion,
            name=f"compose({first.name or 'T1'},{second.name or 'T2'})",
        )
        yield derived


def augment(
    td: TemplateDependency, extra_atoms: Sequence[Atom]
) -> TemplateDependency:
    """Augmentation: add antecedent atoms (always sound).

    The extra atoms may not reuse the dependency's existential variables
    (that would capture them); a VerificationError flags the attempt.
    """
    existentials = td.existential_variables()
    for atom in extra_atoms:
        if any(term in existentials for term in atom):
            raise VerificationError(
                "augmentation must not capture existential variables"
            )
    return TemplateDependency(
        td.schema,
        list(td.antecedents) + [tuple(atom) for atom in extra_atoms],
        td.conclusion,
        name=f"augment({td.name or 'T'})",
    )


# ---------------------------------------------------------------------------
# Tableau derivations (proof objects)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TableauStep:
    """One composition step in a tableau derivation."""

    dependency: TemplateDependency
    substitution: tuple[tuple[str, str], ...]  # variable name -> variable name
    added_atom: Atom

    def describe(self) -> str:
        name = self.dependency.name or "dependency"
        return f"apply {name}, adding {tuple(v.name for v in self.added_atom)}"


@dataclass
class AxiomaticProof:
    """A derivation of ``target`` from ``hypotheses`` in the calculus.

    The tableau starts as the target's antecedents; each step applies one
    hypothesis (composition rule); the proof closes when the target's
    conclusion is subsumed by the tableau (triviality rule). ``verify``
    replays the whole derivation.
    """

    hypotheses: list[TemplateDependency]
    target: TemplateDependency
    steps: list[TableauStep]
    closing_substitution: dict

    @property
    def length(self) -> int:
        """Number of composition steps."""
        return len(self.steps)

    def verify(self) -> None:
        """Replay the derivation; raise VerificationError on any flaw."""
        tableau = list(self.target.antecedents)
        for step in self.steps:
            if step.dependency not in self.hypotheses:
                raise VerificationError("step uses a non-hypothesis dependency")
            table = _atoms_instance(self.target.schema, tableau)
            substitution = {
                Variable(source): Variable(destination)
                for source, destination in step.substitution
            }
            for atom in step.dependency.antecedents:
                image = tuple(substitution.get(v, v) for v in atom)
                if image not in table:
                    raise VerificationError(
                        f"step premise {image} is not in the tableau"
                    )
            expected = tuple(
                substitution.get(v, v) for v in step.dependency.conclusion
            )
            if expected != step.added_atom:
                raise VerificationError("step conclusion mismatch")
            tableau.append(step.added_atom)
        table = _atoms_instance(self.target.schema, tableau)
        universals = self.target.universal_variables()
        identity = {variable: variable for variable in universals}
        witness = find_homomorphism(
            [self.target.conclusion], table, partial=identity, flexible=is_variable
        )
        if witness is None:
            raise VerificationError("derivation does not close on the conclusion")


def derive(
    hypotheses: Sequence[TemplateDependency],
    target: TemplateDependency,
    *,
    max_steps: int = 200,
) -> Optional[AxiomaticProof]:
    """Search for a calculus derivation of ``target`` from ``hypotheses``.

    Grows the target's antecedent tableau by composition steps (fairly,
    round-robin over hypotheses) until the conclusion is subsumed or the
    step budget runs out. Sound by construction (the result verifies);
    complete for the unrestricted semantics exactly to the extent the
    chase is — and, by the paper's Main Theorem, necessarily incomplete
    for the finite semantics whatever the budget.
    """
    fresh_counter = itertools.count()
    tableau: list[Atom] = list(target.antecedents)
    steps: list[TableauStep] = []
    universals = target.universal_variables()
    identity = {variable: variable for variable in universals}

    def closed() -> Optional[dict]:
        table = _atoms_instance(target.schema, tableau)
        return find_homomorphism(
            [target.conclusion], table, partial=identity, flexible=is_variable
        )

    witness = closed()
    while witness is None and len(steps) < max_steps:
        table = _atoms_instance(target.schema, tableau)
        progressed = False
        for hypothesis in hypotheses:
            for h in iter_homomorphisms(
                hypothesis.antecedents, table, flexible=is_variable
            ):
                # Restricted discipline: skip matches whose conclusion is
                # already witnessed in the tableau, else fresh existential
                # renaming would re-add the same fact forever.
                from repro.relational.homplan import extend_homomorphism

                already = extend_homomorphism(
                    h, [hypothesis.conclusion], table, flexible=is_variable
                )
                if already is not None:
                    continue
                substitution = dict(h)
                for variable in sorted(
                    hypothesis.existential_variables(), key=lambda v: v.name
                ):
                    substitution[variable] = Variable(
                        f"_t{next(fresh_counter)}"
                    )
                added = tuple(
                    substitution[v] for v in hypothesis.conclusion
                )
                if added in tableau:
                    continue
                tableau.append(added)
                steps.append(
                    TableauStep(
                        dependency=hypothesis,
                        substitution=tuple(
                            sorted(
                                (src.name, dst.name)
                                for src, dst in substitution.items()
                            )
                        ),
                        added_atom=added,
                    )
                )
                progressed = True
                break  # re-check closure after every addition
            if progressed:
                break
        if not progressed:
            return None  # saturated without closing: not derivable
        witness = closed()

    if witness is None:
        return None
    proof = AxiomaticProof(
        hypotheses=list(hypotheses),
        target=target,
        steps=steps,
        closing_substitution=dict(witness),
    )
    proof.verify()
    return proof

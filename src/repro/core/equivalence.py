"""Derived questions: set equivalence, redundancy, minimal covers.

"A solution to the inference problem carries with it the ability to
determine whether two sets of dependencies are equivalent, whether a set
of dependencies is redundant, etc." — the paper's introduction. These are
the standard reductions of those questions to implication; like the
underlying solver they are three-valued (an UNKNOWN implication makes the
derived answer UNKNOWN too, never silently wrong).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.core.inference import Semantics, infer
from repro.dependencies.classify import Dependency


@dataclass
class EquivalenceReport:
    """Outcome of a set-equivalence test."""

    status: InferenceStatus
    #: Dependencies of the right set not provably implied by the left.
    missing_left_to_right: list[Dependency] = field(default_factory=list)
    #: Dependencies of the left set not provably implied by the right.
    missing_right_to_left: list[Dependency] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        """True when equivalence was established."""
        return self.status is InferenceStatus.PROVED


def _covers(
    covering: Sequence[Dependency],
    covered: Sequence[Dependency],
    *,
    budget: Optional[Budget],
) -> tuple[InferenceStatus, list[Dependency]]:
    """Does ``covering`` imply every member of ``covered``?"""
    missing: list[Dependency] = []
    unknown = False
    for dependency in covered:
        report = infer(covering, dependency, budget=budget)
        if report.status is InferenceStatus.DISPROVED:
            missing.append(dependency)
        elif report.status is InferenceStatus.UNKNOWN:
            unknown = True
            missing.append(dependency)
    if missing and not unknown:
        return InferenceStatus.DISPROVED, missing
    if unknown:
        return InferenceStatus.UNKNOWN, missing
    return InferenceStatus.PROVED, missing


def equivalent_sets(
    left: Sequence[Dependency],
    right: Sequence[Dependency],
    *,
    budget: Optional[Budget] = None,
) -> EquivalenceReport:
    """Are two dependency sets logically equivalent?

    Equivalence holds when each set implies every member of the other.
    """
    status_lr, missing_lr = _covers(left, right, budget=budget)
    status_rl, missing_rl = _covers(right, left, budget=budget)
    statuses = {status_lr, status_rl}
    if statuses == {InferenceStatus.PROVED}:
        overall = InferenceStatus.PROVED
    elif InferenceStatus.DISPROVED in statuses:
        overall = InferenceStatus.DISPROVED
    else:
        overall = InferenceStatus.UNKNOWN
    return EquivalenceReport(
        status=overall,
        missing_left_to_right=missing_lr,
        missing_right_to_left=missing_rl,
    )


def is_redundant(
    dependencies: Sequence[Dependency],
    member: Dependency,
    *,
    budget: Optional[Budget] = None,
) -> InferenceStatus:
    """Is ``member`` implied by the *other* dependencies in the set?"""
    rest = [dependency for dependency in dependencies if dependency is not member]
    return infer(rest, member, budget=budget).status


def minimal_cover(
    dependencies: Sequence[Dependency],
    *,
    budget: Optional[Budget] = None,
) -> list[Dependency]:
    """Greedily drop provably redundant members.

    Only dependencies whose redundancy is PROVED are removed, so the
    result is always equivalent to the input; it may be non-minimal when
    some implications come back UNKNOWN (undecidability again).
    """
    kept = list(dependencies)
    changed = True
    while changed:
        changed = False
        for candidate in list(kept):
            rest = [dependency for dependency in kept if dependency is not candidate]
            if not rest:
                continue
            if infer(rest, candidate, budget=budget).status is InferenceStatus.PROVED:
                kept = rest
                changed = True
                break
    return kept

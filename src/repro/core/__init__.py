"""Inference facade (system S6): the paper's *inference problem* as an API.

"Given a finite set D of dependencies and a single dependency D0, to
determine whether D0 is true in every database in which each member of D
is true." The paper proves this undecidable, so the facade is a bounded,
three-valued, certificate-producing solver:

* :func:`~repro.core.inference.infer` — ``D ⊨ d`` under unrestricted or
  finite semantics, combining the chase with finite-model search;
* :mod:`repro.core.equivalence` — the derived questions the paper's
  introduction mentions: equivalence of dependency sets, redundancy, and
  minimal covers.
"""

from repro.core.axioms import (
    AxiomaticProof,
    augment,
    compose,
    derive,
    is_axiom,
    subsumes,
)
from repro.core.equivalence import (
    EquivalenceReport,
    equivalent_sets,
    is_redundant,
    minimal_cover,
)
from repro.core.inference import InferenceReport, Semantics, infer

__all__ = [
    "Semantics",
    "InferenceReport",
    "infer",
    "EquivalenceReport",
    "equivalent_sets",
    "is_redundant",
    "minimal_cover",
    "AxiomaticProof",
    "is_axiom",
    "subsumes",
    "compose",
    "augment",
    "derive",
]

"""The top-level implication solver, under either semantics.

Two readings of "logical consequence" appear in the paper: the *true
database* (finite) interpretation and the unrestricted one admitting
infinite databases. Fagin et al. (1981) showed they genuinely differ for
TDs, and the paper proves both undecidable. The solver therefore:

1. chases the frozen target (sound and complete-on-termination for
   **both** semantics — a terminating chase yields a finite universal
   model);
2. if the chase exhausts its budget, falls back to bounded finite-model
   search — a finite counterexample refutes the implication under both
   semantics (every finite database is a database);
3. otherwise answers ``UNKNOWN``.

Note the asymmetry undecidability forces: a divergent chase together with
no finite counterexample can mean either "implied" (finitely) or "not
implied" (witnessed only by an infinite database); no bounded procedure
can tell. The honest third value is the whole point of experiment E6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.checkplan import ModelChecker
from repro.chase.finite_models import search_finite_counterexample
from repro.chase.implication import InferenceOutcome, InferenceStatus, implies
from repro.dependencies.classify import Dependency
from repro.errors import VerificationError
from repro.relational.instance import Instance


class Semantics(enum.Enum):
    """Which databases count as models."""

    #: Databases may be finite or infinite (the classical reading).
    UNRESTRICTED = "unrestricted"

    #: Databases are finite relational structures (the paper's
    #: "true database interpretation").
    FINITE = "finite"


@dataclass
class InferenceReport:
    """Outcome of :func:`infer`, with certificates for definite answers."""

    status: InferenceStatus
    semantics: Semantics
    chase_outcome: Optional[InferenceOutcome] = None
    finite_counterexample: Optional[Instance] = None

    @property
    def proved(self) -> bool:
        """True when the implication was established."""
        return self.status is InferenceStatus.PROVED

    @property
    def disproved(self) -> bool:
        """True when a counterexample database exists."""
        return self.status is InferenceStatus.DISPROVED

    def describe(self) -> str:
        """One-line summary for logs."""
        detail = ""
        if self.finite_counterexample is not None:
            detail = f" (finite counterexample, {len(self.finite_counterexample)} rows)"
        elif self.chase_outcome is not None and self.chase_outcome.chase_result:
            detail = f" ({self.chase_outcome.chase_result.describe()})"
        return f"{self.status.value} under {self.semantics.value} semantics{detail}"


def infer(
    dependencies: Sequence[Dependency],
    target: Dependency,
    *,
    semantics: Semantics = Semantics.UNRESTRICTED,
    budget: Optional[Budget] = None,
    finite_search_seed: int = 0,
    finite_search_restarts: int = 25,
    finite_search_seconds: float = 5.0,
    verify_certificates: bool = True,
) -> InferenceReport:
    """Does ``dependencies ⊨ target`` under the chosen semantics?

    Returns a three-valued :class:`InferenceReport`. Definite answers
    carry certificates; with ``verify_certificates`` (default) a returned
    counterexample is re-model-checked before being reported. The
    ``finite_search_*`` knobs bound the fallback model search that runs
    when the chase exhausts its budget.
    """
    chase_outcome = implies(list(dependencies), target, budget=budget)
    if chase_outcome.status is InferenceStatus.PROVED:
        return InferenceReport(
            status=InferenceStatus.PROVED,
            semantics=semantics,
            chase_outcome=chase_outcome,
        )
    if chase_outcome.status is InferenceStatus.DISPROVED:
        counterexample = chase_outcome.counterexample
        if verify_certificates and counterexample is not None:
            _check_counterexample(dependencies, target, counterexample)
        return InferenceReport(
            status=InferenceStatus.DISPROVED,
            semantics=semantics,
            chase_outcome=chase_outcome,
            finite_counterexample=counterexample,
        )
    # Chase budget exhausted: try to refute with a finite model. A finite
    # counterexample is decisive under both semantics.
    witness = search_finite_counterexample(
        list(dependencies),
        target,
        seed=finite_search_seed,
        restarts=finite_search_restarts,
        max_seconds=finite_search_seconds,
    )
    if witness is not None:
        if verify_certificates:
            _check_counterexample(dependencies, target, witness)
        return InferenceReport(
            status=InferenceStatus.DISPROVED,
            semantics=semantics,
            chase_outcome=chase_outcome,
            finite_counterexample=witness,
        )
    return InferenceReport(
        status=InferenceStatus.UNKNOWN,
        semantics=semantics,
        chase_outcome=chase_outcome,
    )


def _check_counterexample(
    dependencies: Sequence[Dependency], target: Dependency, witness: Instance
) -> None:
    """Re-verify a counterexample before reporting it.

    One :class:`~repro.chase.checkplan.ModelChecker` serves the whole
    verification — the dependency sweep and the target-violation check
    share a single interned view of the witness.
    """
    model = ModelChecker(witness)
    if not model.satisfies_all(dependencies):
        raise VerificationError("counterexample fails to satisfy the dependency set")
    if model.find_violation(target) is None:
        raise VerificationError("counterexample does not actually violate the target")

"""Telemetry spine: metrics registry, stage timing and run tracing.

A dependency-free observability layer threaded through the serving
pipeline (system S8):

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms; immutable, mergeable
  :class:`MetricsSnapshot`; Prometheus text exposition; the
  :class:`Stopwatch` / :class:`stage_timer` timing helpers;
* :mod:`repro.obs.trace` — per-request trace IDs, stage-level
  :class:`Span` records and the bounded :class:`TraceBuffer` behind
  ``GET /v1/trace/<id>``.

Everything here is stdlib-only and imports nothing from the rest of the
package, so every layer — the cache, the worker-pool scheduler, the
HTTP server — can use it without import cycles.
"""

from repro.obs.metrics import (
    Counter,
    FamilySnapshot,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    SampleSnapshot,
    SIZE_BUCKETS,
    Stopwatch,
    log_buckets,
    stage_timer,
)
from repro.obs.trace import RunTrace, Span, TraceBuffer, new_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "FamilySnapshot",
    "SampleSnapshot",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "log_buckets",
    "Stopwatch",
    "stage_timer",
    "RunTrace",
    "Span",
    "TraceBuffer",
    "new_trace_id",
]

"""In-process metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a cheap, dependency-free, thread-safe
registry of named metric *families* in the Prometheus data model:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — point-in-time values (optionally *function-backed*:
  the value is read from a callback at snapshot time, so cheap derived
  quantities — cache size, uptime — cost nothing between scrapes);
* :class:`Histogram` — fixed cumulative buckets (log-spaced latency
  buckets by default), tracking per-bucket counts plus sum and count.

Families may carry **labels** (``histogram.labels(stage="chase")``);
each distinct label-value combination is an independently updated child.

Snapshots (:meth:`MetricsRegistry.snapshot`) are immutable, JSON-able
and **mergeable**: counters and histogram buckets add, gauges are
right-biased, and the merge is associative — so per-worker or per-batch
snapshots fold into server lifetime totals in any grouping. The
Prometheus text exposition format
(:meth:`MetricsSnapshot.render_prometheus`) is what ``GET /metrics``
serves.

This module must stay dependency-free (stdlib only) and must not import
from the rest of the package: every layer of the serving pipeline uses
it, including the worker-pool scheduler.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union


def log_buckets(
    low: float, high: float, mantissas: Sequence[float] = (1.0, 2.5, 5.0)
) -> tuple[float, ...]:
    """Log-spaced bucket bounds covering ``[low, high]``.

    Walks decades from ``low``'s up to ``high``'s, emitting
    ``mantissa * 10^decade`` for each mantissa — the classic
    1 / 2.5 / 5 per-decade ladder by default.
    """
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    bounds: list[float] = []
    decade = 1.0
    while decade > low:
        decade /= 10.0
    value = decade
    while True:
        for mantissa in mantissas:
            bound = value * mantissa
            if bound < low * (1 - 1e-12):
                continue
            if bound > high * (1 + 1e-12):
                return tuple(bounds)
            bounds.append(bound)
        value *= 10.0


#: Default latency buckets: 100 µs up to 100 s, 1/2.5/5 per decade.
LATENCY_BUCKETS = log_buckets(0.0001, 100.0)

#: Default size buckets (batch sizes, dedup group sizes): powers of two.
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"bad metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"bad metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    """Prometheus-friendly number rendering (ints without the ``.0``)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(
    label_names: Sequence[str],
    label_values: Sequence[str],
    extra: Sequence[tuple[str, str]] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(label_names, label_values)
    ]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


# ---------------------------------------------------------------------------
# Live metric families and children
# ---------------------------------------------------------------------------


class _Child:
    """One label-combination's live value(s); updates are lock-guarded."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.Lock):
        self._lock = lock


class CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, lock: threading.Lock):
        super().__init__(lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, lock: threading.Lock):
        super().__init__(lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class HistogramChild(_Child):
    __slots__ = ("bucket_counts", "total", "count", "_bounds")

    def __init__(self, lock: threading.Lock, bounds: tuple[float, ...]):
        super().__init__(lock)
        self._bounds = bounds
        #: One slot per bound plus the +Inf overflow slot. *Non*-cumulative
        #: here; the exposition renders the Prometheus cumulative form.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left: a value equal to a bound lands in that bound's
        # bucket (Prometheus ``le`` is inclusive).
        index = bisect_left(self._bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.total += value
            self.count += 1


class MetricFamily:
    """One named metric with optional labels; children per label combo."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
    ):
        self.name = _validate_name(name)
        self.help = help_text
        self.label_names = label_names
        self._lock = lock
        self._children: dict[tuple[str, ...], _Child] = {}
        self._fn: Optional[Callable[[], float]] = None

    def _new_child(self) -> _Child:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: str) -> _Child:
        """The child for this label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def _solo(self) -> _Child:
        if self.label_names:
            raise ValueError(f"{self.name} is labelled; use .labels(...)")
        return self.labels()


class Counter(MetricFamily):
    """A monotonically increasing total (optionally function-backed)."""

    kind = "counter"

    def _new_child(self) -> CounterChild:
        return CounterChild(self._lock)

    def labels(self, **labels: str) -> CounterChild:
        return super().labels(**labels)  # type: ignore[return-value]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._solo().value  # type: ignore[union-attr]


class Gauge(MetricFamily):
    """A point-in-time value (optionally function-backed)."""

    kind = "gauge"

    def _new_child(self) -> GaugeChild:
        return GaugeChild(self._lock)

    def labels(self, **labels: str) -> GaugeChild:
        return super().labels(**labels)  # type: ignore[return-value]

    def set(self, value: float) -> None:
        self._solo().set(value)  # type: ignore[union-attr]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._solo().value  # type: ignore[union-attr]


class Histogram(MetricFamily):
    """Fixed cumulative buckets plus running sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
        buckets: tuple[float, ...],
    ):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("histogram buckets must be sorted and distinct")
        super().__init__(name, help_text, label_names, lock)
        self.buckets = tuple(float(bound) for bound in buckets)

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self._lock, self.buckets)

    def labels(self, **labels: str) -> HistogramChild:
        return super().labels(**labels)  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        self._solo().observe(value)  # type: ignore[union-attr]


# ---------------------------------------------------------------------------
# Snapshots: immutable, JSON-able, mergeable
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SampleSnapshot:
    """One child's frozen value(s)."""

    label_values: tuple[str, ...]
    value: float = 0.0
    #: Histogram-only: non-cumulative per-bucket counts, +Inf slot last.
    bucket_counts: Optional[tuple[int, ...]] = None
    count: int = 0


@dataclass(frozen=True)
class FamilySnapshot:
    """One metric family's frozen children."""

    name: str
    kind: str
    help: str
    label_names: tuple[str, ...]
    samples: tuple[SampleSnapshot, ...]
    buckets: Optional[tuple[float, ...]] = None


@dataclass(frozen=True)
class MetricsSnapshot:
    """A registry frozen at one instant.

    ``merge`` is associative and never mutates: counters and histogram
    buckets add, gauges are right-biased (the merged-in snapshot wins) —
    so folding per-batch or per-worker snapshots into lifetime totals
    gives the same answer in any grouping.
    """

    families: tuple[FamilySnapshot, ...] = ()

    def family(self, name: str) -> Optional[FamilySnapshot]:
        for family in self.families:
            if family.name == name:
                return family
        return None

    def sample(
        self, name: str, **labels: str
    ) -> Optional[SampleSnapshot]:
        """Convenience lookup of one child's frozen sample."""
        family = self.family(name)
        if family is None:
            return None
        wanted = tuple(str(labels.get(key, "")) for key in family.label_names)
        for sample in family.samples:
            if sample.label_values == wanted:
                return sample
        return None

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into this snapshot (see class docstring)."""
        merged: dict[str, FamilySnapshot] = {
            family.name: family for family in self.families
        }
        for family in other.families:
            existing = merged.get(family.name)
            if existing is None:
                merged[family.name] = family
                continue
            if (
                existing.kind != family.kind
                or existing.label_names != family.label_names
                or existing.buckets != family.buckets
            ):
                raise ValueError(
                    f"cannot merge mismatched metric family {family.name!r}"
                )
            samples = {
                sample.label_values: sample for sample in existing.samples
            }
            for sample in family.samples:
                held = samples.get(sample.label_values)
                if held is None:
                    samples[sample.label_values] = sample
                elif family.kind == "gauge":
                    samples[sample.label_values] = sample  # right-biased
                elif family.kind == "histogram":
                    samples[sample.label_values] = SampleSnapshot(
                        label_values=sample.label_values,
                        value=held.value + sample.value,
                        bucket_counts=tuple(
                            a + b
                            for a, b in zip(
                                held.bucket_counts or (),
                                sample.bucket_counts or (),
                            )
                        ),
                        count=held.count + sample.count,
                    )
                else:
                    samples[sample.label_values] = SampleSnapshot(
                        label_values=sample.label_values,
                        value=held.value + sample.value,
                    )
            merged[family.name] = FamilySnapshot(
                name=existing.name,
                kind=existing.kind,
                help=existing.help,
                label_names=existing.label_names,
                samples=tuple(samples.values()),
                buckets=existing.buckets,
            )
        return MetricsSnapshot(families=tuple(merged.values()))

    # -- JSON ----------------------------------------------------------

    def to_json(self) -> dict:
        """Plain-JSON encoding (the codec wrapper lives in json_codec)."""
        return {
            "families": [
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                    **(
                        {"buckets": list(family.buckets)}
                        if family.buckets is not None
                        else {}
                    ),
                    "samples": [
                        {
                            "labels": list(sample.label_values),
                            "value": sample.value,
                            **(
                                {
                                    "bucket_counts": list(
                                        sample.bucket_counts
                                    ),
                                    "count": sample.count,
                                }
                                if sample.bucket_counts is not None
                                else {}
                            ),
                        }
                        for sample in family.samples
                    ],
                }
                for family in self.families
            ]
        }

    @staticmethod
    def from_json(payload: object) -> "MetricsSnapshot":
        """Decode :meth:`to_json`'s output; ``ValueError`` on junk."""
        if not isinstance(payload, dict) or "families" not in payload:
            raise ValueError(f"bad metrics snapshot payload {payload!r}")
        families = []
        for entry in payload["families"]:
            if not isinstance(entry, dict) or "name" not in entry:
                raise ValueError(f"bad metric family payload {entry!r}")
            buckets = entry.get("buckets")
            families.append(
                FamilySnapshot(
                    name=str(entry["name"]),
                    kind=str(entry.get("kind", "untyped")),
                    help=str(entry.get("help", "")),
                    label_names=tuple(entry.get("labels", ())),
                    buckets=(
                        tuple(float(b) for b in buckets)
                        if buckets is not None
                        else None
                    ),
                    samples=tuple(
                        SampleSnapshot(
                            label_values=tuple(
                                str(v) for v in sample.get("labels", ())
                            ),
                            value=float(sample.get("value", 0.0)),
                            bucket_counts=(
                                tuple(
                                    int(c)
                                    for c in sample["bucket_counts"]
                                )
                                if "bucket_counts" in sample
                                else None
                            ),
                            count=int(sample.get("count", 0)),
                        )
                        for sample in entry.get("samples", ())
                    ),
                )
            )
        return MetricsSnapshot(families=tuple(families))

    # -- Prometheus text exposition ------------------------------------

    def render_prometheus(self) -> str:
        """The text exposition format (version 0.0.4) of this snapshot."""
        lines: list[str] = []
        for family in self.families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample in family.samples:
                suffix = _label_suffix(family.label_names, sample.label_values)
                if family.kind == "histogram":
                    cumulative = 0
                    bounds = list(family.buckets or ())
                    counts = list(sample.bucket_counts or ())
                    for bound, bucket in zip(bounds, counts):
                        cumulative += bucket
                        le = _label_suffix(
                            family.label_names,
                            sample.label_values,
                            extra=(("le", "%g" % bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{le} {cumulative}"
                        )
                    cumulative += counts[-1] if counts else 0
                    inf = _label_suffix(
                        family.label_names,
                        sample.label_values,
                        extra=(("le", "+Inf"),),
                    )
                    lines.append(f"{family.name}_bucket{inf} {cumulative}")
                    lines.append(
                        f"{family.name}_sum{suffix} "
                        f"{_format_value(sample.value)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {sample.count}")
                else:
                    lines.append(
                        f"{family.name}{suffix} {_format_value(sample.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """A thread-safe, ordered registry of metric families.

    Registration is idempotent: asking for an existing name with the
    same kind and labels returns the existing family (so every pipeline
    layer can ``registry.counter(...)`` without coordination); asking
    with a *different* shape raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: object) -> bool:
        return name in self._families

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def _register(
        self, family_type: type, name: str, help_text: str, labels, **kwargs
    ) -> MetricFamily:
        label_names = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    type(existing) is not family_type
                    or existing.label_names != label_names
                    or (
                        isinstance(existing, Histogram)
                        and "buckets" in kwargs
                        and existing.buckets
                        != tuple(float(b) for b in kwargs["buckets"])
                    )
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        "different shape"
                    )
                return existing
            family = (
                family_type(
                    name, help_text, label_names, threading.Lock(), **kwargs
                )
                if kwargs
                else family_type(name, help_text, label_names, threading.Lock())
            )
            self._families[name] = family
            return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        *,
        fn: Optional[Callable[[], float]] = None,
    ) -> Counter:
        """Register (or fetch) a counter; ``fn`` makes it function-backed."""
        counter = self._register(Counter, name, help_text, labels)
        if fn is not None:
            if counter.label_names:
                raise ValueError("function-backed metrics cannot be labelled")
            counter._fn = fn
        return counter  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        *,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Register (or fetch) a gauge; ``fn`` makes it function-backed."""
        gauge = self._register(Gauge, name, help_text, labels)
        if fn is not None:
            if gauge.label_names:
                raise ValueError("function-backed metrics cannot be labelled")
            gauge._fn = fn
        return gauge  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a histogram with fixed bucket bounds."""
        return self._register(  # type: ignore[return-value]
            Histogram, name, help_text, labels, buckets=tuple(buckets)
        )

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every family (function-backed values are read now)."""
        families = []
        with self._lock:
            live = list(self._families.values())
        for family in live:
            samples = []
            if family._fn is not None:
                samples.append(
                    SampleSnapshot(label_values=(), value=float(family._fn()))
                )
            else:
                with family._lock:
                    children = list(family._children.items())
                for label_values, child in children:
                    if isinstance(child, HistogramChild):
                        with child._lock:
                            samples.append(
                                SampleSnapshot(
                                    label_values=label_values,
                                    value=child.total,
                                    bucket_counts=tuple(child.bucket_counts),
                                    count=child.count,
                                )
                            )
                    else:
                        samples.append(
                            SampleSnapshot(
                                label_values=label_values,
                                value=child.value,  # type: ignore[union-attr]
                            )
                        )
            families.append(
                FamilySnapshot(
                    name=family.name,
                    kind=family.kind,
                    help=family.help,
                    label_names=family.label_names,
                    samples=tuple(samples),
                    buckets=(
                        family.buckets
                        if isinstance(family, Histogram)
                        else None
                    ),
                )
            )
        return MetricsSnapshot(families=tuple(families))

    def render_prometheus(self) -> str:
        """Snapshot and render in one call (what ``GET /metrics`` serves)."""
        return self.snapshot().render_prometheus()

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold an external snapshot's counters/histograms into this registry.

        The inverse direction of :meth:`snapshot`: a per-shard or
        per-worker snapshot folds into a long-lived aggregate registry.
        Function-backed families are skipped (their truth lives in the
        callback); unknown families are created with the snapshot's shape.
        """
        for family in snapshot.families:
            if family.kind == "counter":
                live = self.counter(family.name, family.help, family.label_names)
            elif family.kind == "gauge":
                live = self.gauge(family.name, family.help, family.label_names)
            elif family.kind == "histogram":
                live = self.histogram(
                    family.name,
                    family.help,
                    family.label_names,
                    buckets=family.buckets or LATENCY_BUCKETS,
                )
            else:
                continue
            if live._fn is not None:
                continue
            for sample in family.samples:
                labels = dict(zip(family.label_names, sample.label_values))
                child = live.labels(**labels)
                if isinstance(child, HistogramChild):
                    with child._lock:
                        for index, bucket in enumerate(
                            sample.bucket_counts or ()
                        ):
                            child.bucket_counts[index] += bucket
                        child.total += sample.value
                        child.count += sample.count
                elif isinstance(child, GaugeChild):
                    child.set(sample.value)
                else:
                    child.inc(sample.value)


# ---------------------------------------------------------------------------
# Timing helpers
# ---------------------------------------------------------------------------


class Stopwatch:
    """Wall-clock stage splitter for pipeline instrumentation.

    ``split()`` returns the seconds since the previous split (or since
    construction) and restarts the lap — the natural fit for sequential
    pipeline stages. ``elapsed()`` reads total time without restarting.
    """

    __slots__ = ("_clock", "_started", "_lap")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._started = clock()
        self._lap = self._started

    def split(self) -> float:
        now = self._clock()
        lap = now - self._lap
        self._lap = now
        return lap

    def elapsed(self) -> float:
        return self._clock() - self._started

    def reset(self) -> None:
        self._started = self._clock()
        self._lap = self._started


class stage_timer:
    """Context manager observing a block's wall time into a histogram.

    ``with stage_timer(stage_seconds, stage="chase"): ...`` observes the
    elapsed seconds into the labelled child on exit (exceptions
    included — a failing stage is still a timed stage). The elapsed
    duration is kept on the ``seconds`` attribute for callers that also
    record a trace span.
    """

    __slots__ = ("_child", "_started", "seconds")

    def __init__(
        self,
        histogram: Union[Histogram, HistogramChild],
        **labels: str,
    ):
        self._child = (
            histogram.labels(**labels)
            if isinstance(histogram, Histogram) and labels
            else histogram
        )
        self._started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "stage_timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._started
        self._child.observe(self.seconds)

"""Per-request run tracing: trace IDs, stage spans and a bounded buffer.

Every query entering the serving pipeline is tagged with a **trace ID**
(client-supplied through the wire format, or generated server-side).
When the batch it coalesced into finishes, the
:class:`~repro.service.api.InferenceService` stores one
:class:`RunTrace` per distinct trace ID in its :class:`TraceBuffer`: the
batch's stage-level :class:`Span` timeline (canonicalize → cache lookup
→ dispatch → record → verify) plus that request's per-query records
(fingerprint, verdict, cache/dedup provenance, chase time). Traces are
retrievable via ``GET /v1/trace/<id>`` and attached inline to responses
requested with ``?debug=1``.

The buffer is a fixed-capacity ring: the newest ``capacity`` traces are
kept, older ones fall off — the answer to "where did *that* slow batch
spend its time?" without unbounded memory.

Like the rest of :mod:`repro.obs`, this module is dependency-free and
imports nothing from the serving stack.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace ID (cheap, collision-negligible)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class Span:
    """One timed pipeline stage inside a run."""

    name: str
    seconds: float
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload: dict = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload

    @staticmethod
    def from_json(payload: object) -> "Span":
        if not isinstance(payload, dict) or "name" not in payload:
            raise ValueError(f"bad span payload {payload!r}")
        return Span(
            name=str(payload["name"]),
            seconds=float(payload.get("seconds", 0.0)),
            attrs=dict(payload.get("attrs", {})),
        )


@dataclass
class RunTrace:
    """One request's view of the batch run that answered it.

    ``spans`` is the batch-level stage timeline (shared by every request
    the batch coalesced); ``queries`` holds only *this* trace's queries.
    ``batch`` summarizes what the whole run did, so a request that was a
    pure cache hit can still see that it shared its run with real chases.
    """

    trace_id: str
    started_at: float = field(default_factory=time.time)
    wall_seconds: float = 0.0
    spans: list[Span] = field(default_factory=list)
    queries: list[dict] = field(default_factory=list)
    batch: dict = field(default_factory=dict)

    def span(self, name: str) -> Optional[Span]:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def to_json(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "spans": [span.to_json() for span in self.spans],
            "queries": [dict(query) for query in self.queries],
            "batch": dict(self.batch),
        }

    @staticmethod
    def from_json(payload: object) -> "RunTrace":
        if not isinstance(payload, dict) or "trace_id" not in payload:
            raise ValueError(f"bad trace payload {payload!r}")
        return RunTrace(
            trace_id=str(payload["trace_id"]),
            started_at=float(payload.get("started_at", 0.0)),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            spans=[Span.from_json(span) for span in payload.get("spans", ())],
            queries=[dict(query) for query in payload.get("queries", ())],
            batch=dict(payload.get("batch", {})),
        )


class TraceBuffer:
    """Thread-safe bounded ring of the newest :class:`RunTrace` records.

    Re-putting an existing trace ID replaces the old record and
    refreshes its recency (a retried request keeps its newest trace).
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("trace buffer capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, RunTrace]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._traces)

    def __contains__(self, trace_id: object) -> bool:
        return trace_id in self._traces

    def put(self, trace: RunTrace) -> None:
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[RunTrace]:
        with self._lock:
            return self._traces.get(trace_id)

    def ids(self) -> list[str]:
        """Stored trace IDs, oldest first."""
        with self._lock:
            return list(self._traces)

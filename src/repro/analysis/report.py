"""Fragment hierarchy, termination certificates, and goal-directed pruning.

:func:`analyze` classifies a dependency set into the fragment hierarchy

    FULL  ⊂  WEAKLY_ACYCLIC  ⊂  JOINTLY_ACYCLIC  ⊂  STRATIFIED  ⊂  NONE

and, for every fragment except NONE, issues a :class:`TerminationCertificate`
whose :meth:`~TerminationCertificate.bounds` computes a *sufficient* chase
step/row bound from the start instance — a restricted chase of a certified
set provably reaches its fixpoint strictly inside that bound, so a derived
:class:`~repro.chase.budget.Budget` can never be the reason an implication
query answers UNKNOWN. GurevichL82's encodings are never certified (their
undecidability proof forces cyclic null creation), which is exactly the
division of labor: decisive verdicts where Fagin-style syntax permits them,
honest budgets where the paper says no syntax can.

Fragment facts used by the bound (all over the single relation):

* **FULL** — no existential variables: the chase invents no values, so the
  fixpoint lives inside ``domain(start)^arity``. Rank 0.
* **WEAKLY_ACYCLIC** — position-graph rank ``r`` is finite; a null created
  at a rank-``i`` position is a function of a *frontier* assignment drawn
  from positions of rank ``< i`` (each frontier position has a special edge
  into the null's position, forcing its rank lower), and the restricted
  chase's activity check fires at most once per frontier assignment per
  dependency. So value counts satisfy ``N_{i+1} <= N_i + d*E*N_i^V``.
* **JOINTLY_ACYCLIC** — the Krötzsch–Rudolph existential-dependency graph
  is acyclic; its longest path plays the role of the rank.
* **STRATIFIED** — the *productive* subset (never-firing dependencies
  removed, see :func:`repro.analysis.firing.never_fires`) falls in one of
  the fragments above; the removed dependencies hold in every database,
  so they change neither the chase nor the bound.

Every active restricted-chase firing adds at least one row (a TD firing
whose row already existed would not have passed the activity check; an EID
firing with fresh nulls adds a row containing them), so the row bound also
bounds the step count. ``+1`` margins account for ``ChaseStats.exhausted``
triggering at ``>=``.

:func:`prune_for_target` is the goal-directed half: it drops dependencies
that provably cannot influence *either* verdict — never-firing ones,
alpha-renamed duplicates, and dependencies entailed by the rest (checked
with a tiny bounded chase). Each removal preserves theory equivalence, so
PROVED and DISPROVED are both preserved: the pruned set's universal model
is hom-equivalent to the full set's over the same frozen core.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.firing import firing_graph, never_fires, strata_of
from repro.analysis.graph import MultiDiGraph
from repro.analysis.positions import (
    PositionEdge,
    build_position_graph,
    position_ranks,
    special_cycle_of,
)
from repro.chase.budget import Budget
from repro.dependencies.canonical import canonical_key
from repro.dependencies.classify import Dependency
from repro.kernel.joins import memoized


class Fragment(enum.Enum):
    """Termination fragment of a dependency set, most specific first."""

    FULL = "full-tgd"
    WEAKLY_ACYCLIC = "weakly-acyclic"
    JOINTLY_ACYCLIC = "jointly-acyclic"
    STRATIFIED = "stratified"
    NONE = "none"


#: Refuse to certify when the derived bound would exceed ~10^4000 —
#: comparing, serializing, and reporting such a bound costs more than it
#: protects, and a set that needs it should run budgeted anyway.
_MAX_BOUND_BITS = 14_000


@dataclass(frozen=True)
class TerminationCertificate:
    """A sufficient chase bound, as a closed form over the start instance.

    ``rank`` counts waves of value creation: 0 for FULL, the maximum
    position rank for WEAKLY_ACYCLIC, the existential-dependency depth
    for JOINTLY_ACYCLIC, and the productive subset's rank for STRATIFIED.
    """

    fragment: Fragment
    rank: int
    dependency_count: int
    arity: int
    max_universals: int
    max_existentials: int

    def bounds(
        self, start_values: int, start_rows: int
    ) -> Optional[Tuple[int, int]]:
        """``(max_steps, max_rows)`` sufficient for fixpoint, or None.

        None means the exact bound overflows :data:`_MAX_BOUND_BITS`;
        callers must then fall back to the ordinary budgeted path.
        """
        domain = max(1, int(start_values))
        per_firing = max(1, self.max_existentials)
        frontier = max(1, self.max_universals)
        for __ in range(self.rank):
            if domain.bit_length() * frontier > _MAX_BOUND_BITS:
                return None
            domain += self.dependency_count * per_firing * domain**frontier
        if domain.bit_length() * max(1, self.arity) > _MAX_BOUND_BITS:
            return None
        rows = max(domain ** self.arity if self.arity else 1, int(start_rows))
        return rows + 1, rows + 1

    def derived_budget(self, start_values: int, start_rows: int) -> Optional[Budget]:
        """A budget the certified chase cannot exhaust (no wall clock)."""
        bounds = self.bounds(start_values, start_rows)
        if bounds is None:
            return None
        max_steps, max_rows = bounds
        return Budget(max_steps=max_steps, max_rows=max_rows, max_seconds=None)


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the static analyzer knows about one dependency set."""

    fragment: Fragment
    weakly_acyclic: bool
    jointly_acyclic: bool
    certificate: Optional[TerminationCertificate]
    special_cycle: Optional[Tuple[PositionEdge, ...]]
    position_count: int
    regular_edge_count: int
    special_edge_count: int
    strata: Tuple[Tuple[int, ...], ...]
    never_firing: Tuple[int, ...]
    dependency_count: int

    @property
    def certified(self) -> bool:
        return self.certificate is not None

    def describe(self, attributes: Optional[Sequence[str]] = None) -> str:
        names = attributes or [str(i) for i in range(self.position_count)]
        lines = [
            f"fragment: {self.fragment.value}",
            (
                f"dependencies: {self.dependency_count}"
                f" ({len(self.never_firing)} never fire)"
            ),
            (
                f"position graph: {self.position_count} positions,"
                f" {self.regular_edge_count} regular /"
                f" {self.special_edge_count} special edges"
            ),
        ]
        if self.certificate is not None:
            lines.append(
                "termination: CERTIFIED"
                f" (rank {self.certificate.rank};"
                " chase reaches fixpoint within the derived budget)"
            )
        else:
            lines.append(
                "termination: NOT CERTIFIED"
                " (no syntactic guarantee; chase runs budgeted)"
            )
        if self.special_cycle:
            witness = "; ".join(
                edge.describe(names) for edge in self.special_cycle
            )
            lines.append(f"witness cycle: {witness}")
        strata = " | ".join(
            "{" + ",".join(str(i) for i in stratum) + "}"
            for stratum in self.strata
        )
        if strata:
            lines.append(f"strata: {strata}")
        return "\n".join(lines)


def existential_depth(
    dependencies: Sequence[Dependency],
) -> Optional[int]:
    """Joint-acyclicity depth, or None when the set is not jointly acyclic.

    Builds the Krötzsch–Rudolph existential-dependency graph: one node
    per existential variable ``z``, with ``Ω(z)`` the least position set
    containing ``z``'s conclusion positions and closed under frontier
    propagation (if every antecedent position of a conclusion-occurring
    universal ``x`` lies in ``Ω(z)``, add ``x``'s conclusion positions);
    an edge ``z -> z'`` when ``z'``'s rule has a frontier variable whose
    antecedent positions all lie in ``Ω(z)``. Acyclic ⟺ jointly acyclic;
    the returned depth (longest path, in nodes) bounds the waves of null
    creation.
    """
    rules: List[Dict[object, Tuple[Set[int], Set[int]]]] = []
    evars: List[Tuple[int, Set[int]]] = []  # (rule index, conclusion positions)
    for rule_index, dependency in enumerate(dependencies):
        universal = dependency.universal_variables()
        conclusion_variables = {
            variable for atom in dependency.conclusions for variable in atom
        }
        frontier: Dict[object, Tuple[Set[int], Set[int]]] = {}
        for variable in conclusion_variables & universal:
            body = {
                position
                for atom in dependency.antecedents
                for position, term in enumerate(atom)
                if term == variable
            }
            head = {
                position
                for atom in dependency.conclusions
                for position, term in enumerate(atom)
                if term == variable
            }
            frontier[variable] = (body, head)
        rules.append(frontier)
        for variable in sorted(
            dependency.existential_variables(), key=repr
        ):
            positions = {
                position
                for atom in dependency.conclusions
                for position, term in enumerate(atom)
                if term == variable
            }
            evars.append((rule_index, positions))

    omegas: List[Set[int]] = []
    for __, positions in evars:
        omega = set(positions)
        changed = True
        while changed:
            changed = False
            for frontier in rules:
                for body, head in frontier.values():
                    if body and body <= omega and not head <= omega:
                        omega |= head
                        changed = True
        omegas.append(omega)

    graph = MultiDiGraph()
    graph.add_nodes_from(range(len(evars)))
    for source, omega in enumerate(omegas):
        for target, (rule_index, __) in enumerate(evars):
            frontier = rules[rule_index]
            if any(body and body <= omega for body, __head in frontier.values()):
                graph.add_edge(source, target)

    components = graph.strongly_connected_components()
    for component in components:
        if len(component) > 1:
            return None
        node = next(iter(component))
        if graph.get_edge_data(node, node) is not None:
            return None
    # Longest path (in nodes) over the acyclic graph; Tarjan emits
    # reverse topological order, so walk it backwards (sources first).
    depth: Dict[int, int] = {}
    for component in reversed(components):
        node = next(iter(component))
        depth[node] = 1
        for source in graph.nodes():
            if source in depth and graph.get_edge_data(source, node) is not None:
                depth[node] = max(depth[node], depth[source] + 1)
    return max(depth.values(), default=0)


_ANALYSIS_CACHE: Dict[Tuple[Dependency, ...], AnalysisReport] = {}
_ANALYSIS_CACHE_MAX = 256


def analyze(dependencies: Sequence[Dependency]) -> AnalysisReport:
    """The memoized :class:`AnalysisReport` for a dependency tuple.

    Keyed structurally (``Dependency`` hashes by content), so repeated
    queries against one premise set — the batch-service hot path — pay
    for the analysis once.
    """
    return memoized(
        _ANALYSIS_CACHE, tuple(dependencies), _analyze, _ANALYSIS_CACHE_MAX
    )


def _analyze(key: Tuple[Dependency, ...]) -> AnalysisReport:
    dependencies = key
    position_graph = build_position_graph(dependencies)
    cycle = special_cycle_of(position_graph)
    weakly = cycle is None
    special_edges = sum(
        1
        for *__, data in position_graph.edges(data=True)
        if data.get("special")
    )
    regular_edges = position_graph.number_of_edges() - special_edges

    graph = firing_graph(dependencies)
    strata = strata_of(graph)
    never = tuple(
        index
        for index in range(len(dependencies))
        if not any(True for __ in graph.successors(index))
    ) if dependencies else ()

    depth = existential_depth(dependencies)
    jointly = depth is not None
    full = all(dependency.is_full() for dependency in dependencies)
    arity = dependencies[0].schema.arity if dependencies else 0
    max_universals = max(
        (len(d.universal_variables()) for d in dependencies), default=0
    )
    max_existentials = max(
        (len(d.existential_variables()) for d in dependencies), default=0
    )

    certificate: Optional[TerminationCertificate] = None
    fragment = Fragment.NONE
    rank = 0
    if full:
        fragment = Fragment.FULL
        rank = 0
    elif weakly:
        fragment = Fragment.WEAKLY_ACYCLIC
        rank = max(position_ranks(position_graph).values(), default=0)
    elif jointly:
        fragment = Fragment.JOINTLY_ACYCLIC
        rank = depth or 0
    elif never and len(never) < len(dependencies):
        productive = tuple(
            dependency
            for index, dependency in enumerate(dependencies)
            if index not in set(never)
        )
        sub = analyze(productive)
        if sub.certificate is not None:
            fragment = Fragment.STRATIFIED
            certificate = replace(sub.certificate, fragment=fragment)
    if fragment in (Fragment.FULL, Fragment.WEAKLY_ACYCLIC, Fragment.JOINTLY_ACYCLIC):
        certificate = TerminationCertificate(
            fragment=fragment,
            rank=rank,
            dependency_count=len(dependencies),
            arity=arity,
            max_universals=max_universals,
            max_existentials=max_existentials,
        )

    return AnalysisReport(
        fragment=fragment,
        weakly_acyclic=weakly,
        jointly_acyclic=jointly,
        certificate=certificate,
        special_cycle=tuple(cycle) if cycle else None,
        position_count=position_graph.number_of_nodes(),
        regular_edge_count=regular_edges,
        special_edge_count=special_edges,
        strata=strata,
        never_firing=never,
        dependency_count=len(dependencies),
    )


# -- goal-directed pruning ----------------------------------------------


@dataclass(frozen=True)
class PrunedDependency:
    """Provenance for one dropped dependency."""

    index: int
    name: str
    reason: str


@dataclass(frozen=True)
class QueryProgram:
    """A pruned, stratified program equivalent to the original set."""

    kept: Tuple[Dependency, ...]
    dropped: Tuple[PrunedDependency, ...]
    report: AnalysisReport
    kept_report: AnalysisReport

    @property
    def certificate(self) -> Optional[TerminationCertificate]:
        return self.kept_report.certificate

    def strata(self) -> Tuple[Tuple[Dependency, ...], ...]:
        """The kept dependencies, grouped into firing strata."""
        return tuple(
            tuple(self.kept[index] for index in stratum)
            for stratum in self.kept_report.strata
        )

    def provenance(
        self, *, applied: bool, derived: Optional[Budget]
    ) -> Dict[str, object]:
        """JSON-safe analysis annotation for verdicts and cache entries."""
        return {
            "fragment": self.kept_report.fragment.value,
            "certified": self.certificate is not None,
            "applied": bool(applied),
            "pruned": len(self.dropped),
            "kept": len(self.kept),
            "strata": len(self.kept_report.strata),
            "dropped": [
                {"name": entry.name, "reason": entry.reason}
                for entry in self.dropped
            ],
            "derived_max_steps": derived.max_steps if derived else None,
            "derived_max_rows": derived.max_rows if derived else None,
        }


#: Entailment pruning chases every candidate against the rest; gate it to
#: small sets and a tiny budget so analysis stays cheap relative to the
#: query it serves.
_ENTAILMENT_MAX_DEPENDENCIES = 16
_ENTAILMENT_BUDGET = Budget(max_steps=256, max_rows=2048, max_seconds=None)

_PRUNE_CACHE: Dict[Tuple[Dependency, ...], QueryProgram] = {}
_PRUNE_CACHE_MAX = 256


def prune_for_target(
    dependencies: Sequence[Dependency], target: Optional[Dependency] = None
) -> QueryProgram:
    """An equivalent program with verdict-irrelevant dependencies dropped.

    Three both-verdict-preserving reductions, in order:

    1. **never-firing** dependencies (goal-directed: these are exactly
       the ones with no firing-graph path to the goal, see
       :func:`repro.analysis.firing.goal_relevant`);
    2. **duplicates** up to variable renaming (:func:`canonical_key`);
    3. **entailed** dependencies — a bounded chase proving the rest
       already implies a dependency makes the theory, hence its universal
       models and any goal check over them, identical without it.

    The result is target-independent at this single-relation granularity
    (the ``target`` parameter documents intent and keeps the signature
    stable if multi-relation reachability lands later), so it is cached
    per premise tuple.
    """
    del target
    return memoized(
        _PRUNE_CACHE, tuple(dependencies), _prune, _PRUNE_CACHE_MAX
    )


def _prune(key: Tuple[Dependency, ...]) -> QueryProgram:
    report = analyze(key)
    dropped: List[PrunedDependency] = []
    kept_indices: List[int] = []
    never = set(report.never_firing)
    seen_keys: Set[tuple] = set()
    for index, dependency in enumerate(key):
        name = getattr(dependency, "name", None) or f"dependency[{index}]"
        if index in never:
            dropped.append(PrunedDependency(index, name, "never-fires"))
            continue
        shape = canonical_key(dependency)
        if shape in seen_keys:
            dropped.append(PrunedDependency(index, name, "duplicate"))
            continue
        seen_keys.add(shape)
        kept_indices.append(index)

    if 2 <= len(kept_indices) <= _ENTAILMENT_MAX_DEPENDENCIES:
        # Lazy import: implication imports this module at top level.
        from repro.chase.implication import InferenceStatus, implies

        survivors: List[int] = []
        for position, index in enumerate(kept_indices):
            others = [
                key[other]
                for other in survivors + kept_indices[position + 1 :]
            ]
            if others:
                outcome = implies(
                    others,
                    key[index],
                    budget=_ENTAILMENT_BUDGET,
                    record_trace=False,
                    analysis="off",
                )
                if outcome.status is InferenceStatus.PROVED:
                    name = (
                        getattr(key[index], "name", None)
                        or f"dependency[{index}]"
                    )
                    dropped.append(
                        PrunedDependency(index, name, "entailed")
                    )
                    continue
            survivors.append(index)
        kept_indices = survivors

    kept = tuple(key[index] for index in kept_indices)
    kept_report = analyze(kept) if dropped else report
    return QueryProgram(
        kept=kept,
        dropped=tuple(sorted(dropped, key=lambda entry: entry.index)),
        report=report,
        kept_report=kept_report,
    )

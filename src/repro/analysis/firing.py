"""Firing graph, stratification, and goal-directed relevance.

The firing graph has one node per dependency and an edge ``a -> b``
whenever a firing of ``a`` could create a *new active trigger* for
``b``. In this repository's single-relation, typed setting that
relation is almost complete — any new row can participate in a match of
any antecedent (a homomorphism may collapse every antecedent atom onto
one row), so the only edges that can be *soundly* omitted are those
involving dependencies that can never fire at all:

* a dependency whose conclusions map into its own antecedents under a
  substitution fixing the universal variables (:func:`never_fires`)
  holds in every database, so the restricted chase never finds an
  active trigger for it — it has no outgoing edges (it adds nothing)
  and needs no incoming ones (nothing can wake it).

Conservative over-approximation is the invariant every consumer leans
on: spurious edges cost only precision, a missing edge would let
stratum-by-stratum dispatch or goal-directed pruning change chase
semantics. :func:`stratify` condenses the graph into strata (never-
firing dependencies isolate into their own, which the stratified
dispatcher then never subscribes); :func:`goal_relevant` is the
backward reachability from an implication goal — at this granularity
every productive dependency is goal-reachable, so its pruning power
comes from the never-firing set, with duplicate and entailed
dependencies handled separately by :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.graph import MultiDiGraph
from repro.dependencies.classify import Dependency
from repro.dependencies.template import is_variable
from repro.relational.homplan import find_homomorphism
from repro.relational.instance import Instance


def never_fires(dependency: Dependency) -> bool:
    """True when no trigger for ``dependency`` can ever be active.

    Generalizes :meth:`TemplateDependency.is_trivial` to multi-atom
    (EID) conclusions: every conclusion atom must embed into the
    antecedent set under one substitution fixing the universal
    variables (shared existentials must map consistently). Any
    antecedent match then already witnesses the conclusion, so the
    restricted chase never fires the dependency — dropping it from a
    chase changes neither the fixpoint nor any goal check.
    """
    antecedent_instance = Instance(
        dependency.schema,
        (tuple(atom) for atom in dependency.antecedents),  # type: ignore[arg-type]
    )
    universals = dependency.universal_variables()
    conclusion_variables = {
        variable for atom in dependency.conclusions for variable in atom
    }
    identity = {
        variable: variable for variable in conclusion_variables & universals
    }
    extension = find_homomorphism(
        list(dependency.conclusions),
        antecedent_instance,
        partial=identity,
        flexible=is_variable,
    )
    return extension is not None


def firing_graph(dependencies: Sequence[Dependency]) -> MultiDiGraph:
    """The conservative dependency-to-dependency firing graph.

    Nodes are dependency indices. Productive (possibly-firing)
    dependencies form a complete subgraph — the sound over-
    approximation for a single relation, where any added row can
    complete a trigger for any antecedent — and never-firing
    dependencies are isolated nodes.
    """
    graph = MultiDiGraph()
    graph.add_nodes_from(range(len(dependencies)))
    productive = [
        index
        for index, dependency in enumerate(dependencies)
        if not never_fires(dependency)
    ]
    for source in productive:
        for target in productive:
            graph.add_edge(source, target)
    return graph


def stratify(dependencies: Sequence[Dependency]) -> Tuple[Tuple[int, ...], ...]:
    """:func:`strata_of` over a freshly built firing graph."""
    return strata_of(firing_graph(dependencies))


def strata_of(graph: MultiDiGraph) -> Tuple[Tuple[int, ...], ...]:
    """Condense a firing graph into strata (tuples of dep indices).

    Strata are in topological order of the condensation: once a later
    stratum starts firing, no earlier stratum can acquire a new active
    trigger (there is no firing-graph edge back into it), so chasing
    stratum-by-stratum to fixpoint is semantics-preserving. Never-firing
    dependencies come out as singleton strata the dispatcher can skip.
    """
    components = graph.strongly_connected_components()
    # Tarjan emits reverse topological order (successors first).
    strata = [tuple(sorted(component)) for component in reversed(components)]
    # Deterministic layout: singleton never-firing strata first, then
    # the productive components (their relative topological order kept).
    never = [
        stratum
        for stratum in strata
        if len(stratum) == 1 and not any(True for __ in graph.successors(stratum[0]))
    ]
    firing = [stratum for stratum in strata if stratum not in never]
    return tuple(never + firing)


def goal_relevant(
    dependencies: Sequence[Dependency], graph: MultiDiGraph
) -> Set[int]:
    """Dependency indices backward-reachable from an implication goal.

    The goal check is a homomorphism of the target's conclusion atoms
    into the chased instance; with one relation, any productive
    dependency's added rows can extend such an embedding, so the goal
    links back to every productive dependency and reachability closes
    over the firing graph from there. What this soundly excludes is
    exactly the dependencies with no path to a productive node — the
    never-firing ones.
    """
    frontier: List[int] = [
        index for index in range(len(dependencies))
        if any(True for __ in graph.successors(index))
    ]
    relevant: Set[int] = set(frontier)
    predecessors: Dict[int, Set[int]] = {}
    for source, target in graph.edges():
        predecessors.setdefault(target, set()).add(source)
    while frontier:
        node = frontier.pop()
        for source in predecessors.get(node, ()):
            if source not in relevant:
                relevant.add(source)
                frontier.append(source)
    return relevant

"""A minimal directed multigraph (pure Python, stdlib only).

:mod:`repro.analysis` needs exactly four graph operations — multi-edge
storage with per-edge attributes, strongly connected components,
shortest paths, and edge iteration — and the repository's only consumer
of ``networkx`` (the old ``chase/termination.py``) needed the same
four. ``networkx`` was never declared in ``install_requires``, so a
clean environment could import a module that crashed on first use; this
module replaces it with ~150 lines exposing the same query surface
(``add_nodes_from`` / ``add_edge`` / ``edges(data=True)`` /
``get_edge_data`` / ``number_of_nodes`` / ``number_of_edges``), so the
termination API and its tests keep working verbatim.

Nodes are integers throughout the analyzer (column positions, or
dependency/existential-variable indices), which keeps the strict-typing
surface small.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Set, Tuple, Union

EdgeData = Dict[str, object]


class MultiDiGraph:
    """Directed multigraph over integer nodes with dict edge attributes."""

    def __init__(self) -> None:
        self._nodes: Dict[int, None] = {}
        self._succ: Dict[int, Dict[int, List[EdgeData]]] = {}
        self._edge_count = 0

    # -- construction ---------------------------------------------------

    def add_node(self, node: int) -> None:
        if node not in self._nodes:
            self._nodes[node] = None
            self._succ[node] = {}

    def add_nodes_from(self, nodes: Iterable[int]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_edge(self, source: int, target: int, **data: object) -> None:
        self.add_node(source)
        self.add_node(target)
        self._succ[source].setdefault(target, []).append(dict(data))
        self._edge_count += 1

    # -- queries --------------------------------------------------------

    def number_of_nodes(self) -> int:
        return len(self._nodes)

    def number_of_edges(self) -> int:
        return self._edge_count

    def nodes(self) -> List[int]:
        return list(self._nodes)

    def successors(self, node: int) -> Iterator[int]:
        return iter(self._succ.get(node, {}))

    def edges(
        self, data: bool = False
    ) -> Iterator[Union[Tuple[int, int], Tuple[int, int, EdgeData]]]:
        """Every parallel edge once, as ``(u, v)`` or ``(u, v, data)``."""
        for source, targets in self._succ.items():
            for target, parallel in targets.items():
                for edge_data in parallel:
                    if data:
                        yield (source, target, edge_data)
                    else:
                        yield (source, target)

    def get_edge_data(
        self, source: int, target: int
    ) -> Union[Dict[int, EdgeData], None]:
        """Parallel edges between two nodes, keyed by insertion index."""
        parallel = self._succ.get(source, {}).get(target)
        if parallel is None:
            return None
        return dict(enumerate(parallel))

    # -- algorithms -----------------------------------------------------

    def strongly_connected_components(self) -> List[Set[int]]:
        """Tarjan's SCCs, iteratively (no recursion-depth limit).

        Components are emitted in *reverse* topological order of the
        condensation: every component appears after all components it
        can reach.
        """
        index_of: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        components: List[Set[int]] = []
        counter = 0

        for root in self._nodes:
            if root in index_of:
                continue
            # Each frame is (node, iterator over successors).
            work: List[Tuple[int, Iterator[int]]] = [(root, self.successors(root))]
            index_of[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index_of:
                        index_of[succ] = low[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, self.successors(succ)))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component: Set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def shortest_path(self, source: int, target: int) -> List[int]:
        """A fewest-edges directed path (BFS); ``ValueError`` when none."""
        if source not in self._nodes or target not in self._nodes:
            raise ValueError(f"no path from {source} to {target}")
        if source == target:
            return [source]
        parent: Dict[int, int] = {}
        queue: deque[int] = deque([source])
        seen = {source}
        while queue:
            node = queue.popleft()
            for succ in self.successors(node):
                if succ in seen:
                    continue
                parent[succ] = node
                if succ == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                seen.add(succ)
                queue.append(succ)
        raise ValueError(f"no path from {source} to {target}")

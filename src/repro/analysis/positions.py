"""The Fagin-et-al position graph and weak-acyclicity analysis.

This is the engine behind the public ``repro.chase.termination`` API
(kept there as thin wrappers for compatibility): build the *dependency
graph* over the single relation's column positions with

* a **regular** edge ``p -> q`` whenever some dependency has a
  universal variable occurring in antecedent position ``p`` and
  conclusion position ``q`` (values may be copied from ``p`` to ``q``),
* a **special** edge ``p => q`` whenever a universal variable occurring
  in antecedent position ``p`` also occurs in the conclusion, and some
  *existential* variable occurs in conclusion position ``q`` (a fresh
  value in ``q`` can be created from a value in ``p``).

The set is weakly acyclic when no cycle goes through a special edge;
then every chase sequence terminates, and :func:`position_ranks` turns
the acyclic special-edge structure into the per-position *rank* (the
maximum number of special edges on any walk into the position) that the
termination certificate's derived budget is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.graph import MultiDiGraph
from repro.dependencies.classify import Dependency


@dataclass(frozen=True)
class PositionEdge:
    """One dependency-graph edge, with provenance."""

    source: int
    target: int
    special: bool
    dependency_name: str

    def describe(self, attributes: Sequence[str]) -> str:
        arrow = "=>" if self.special else "->"
        return (
            f"{attributes[self.source]} {arrow} {attributes[self.target]}"
            f"  [{self.dependency_name}]"
        )


def build_position_graph(dependencies: Sequence[Dependency]) -> MultiDiGraph:
    """The Fagin-et-al dependency graph over column positions."""
    graph = MultiDiGraph()
    if not dependencies:
        return graph
    arity = dependencies[0].schema.arity
    graph.add_nodes_from(range(arity))
    for dependency in dependencies:
        name = getattr(dependency, "name", None) or "dependency"
        universal = dependency.universal_variables()
        existential = dependency.existential_variables()
        conclusion_variables = {
            variable
            for atom in dependency.conclusions
            for variable in atom
        }
        existential_positions = sorted(
            {
                position
                for atom in dependency.conclusions
                for position, variable in enumerate(atom)
                if variable in existential
            }
        )
        for atom in dependency.antecedents:
            for position, variable in enumerate(atom):
                if variable not in universal:
                    continue
                if variable not in conclusion_variables:
                    continue
                for conclusion_atom in dependency.conclusions:
                    for target, target_variable in enumerate(conclusion_atom):
                        if target_variable == variable:
                            graph.add_edge(
                                position,
                                target,
                                special=False,
                                dependency_name=name,
                            )
                for target in existential_positions:
                    graph.add_edge(
                        position, target, special=True, dependency_name=name
                    )
    return graph


def find_special_cycle(
    dependencies: Sequence[Dependency],
) -> Optional[List[PositionEdge]]:
    """A cycle through a special edge, or None when weakly acyclic.

    A special edge lies on a cycle exactly when its endpoints share a
    strongly connected component; the witness returned is that edge plus
    a shortest path closing the loop (preferring regular edges for each
    closing step, so the witness pins the one special edge that matters).
    """
    return special_cycle_of(build_position_graph(dependencies))


def special_cycle_of(graph: MultiDiGraph) -> Optional[List[PositionEdge]]:
    """:func:`find_special_cycle` over an already-built position graph."""
    if graph.number_of_nodes() == 0:
        return None
    component_of: Dict[int, int] = {}
    for index, component in enumerate(graph.strongly_connected_components()):
        for node in component:
            component_of[node] = index
    for source, target, data in graph.edges(data=True):
        if not data.get("special"):
            continue
        if component_of[source] != component_of[target]:
            continue
        witness = [
            PositionEdge(
                source=source,
                target=target,
                special=True,
                dependency_name=str(data.get("dependency_name", "dependency")),
            )
        ]
        if source != target:
            path = graph.shortest_path(target, source)
            for step_source, step_target in zip(path, path[1:]):
                parallel = graph.get_edge_data(step_source, step_target)
                assert parallel is not None  # path edges exist
                edge_data = min(
                    parallel.values(),
                    key=lambda d: bool(d.get("special", False)),
                )
                witness.append(
                    PositionEdge(
                        source=step_source,
                        target=step_target,
                        special=bool(edge_data.get("special")),
                        dependency_name=str(
                            edge_data.get("dependency_name", "dependency")
                        ),
                    )
                )
        return witness
    return None


def position_ranks(graph: MultiDiGraph) -> Mapping[int, int]:
    """Per-position rank: max special edges on any walk into the position.

    Defined (finite) only for weakly acyclic graphs — callers must have
    checked :func:`special_cycle_of` first. Computed on the SCC
    condensation: inside an SCC every edge is regular (a special edge
    within one would be a special cycle), so rank is constant per
    component and propagates along condensation edges, +1 across special
    ones.
    """
    components = graph.strongly_connected_components()
    component_of: Dict[int, int] = {}
    for index, component in enumerate(components):
        for node in component:
            component_of[node] = index
    # Max edge weight (special = 1) between distinct components.
    weight: Dict[int, Dict[int, int]] = {}
    for source, target, data in graph.edges(data=True):
        cs, ct = component_of[source], component_of[target]
        if cs == ct:
            continue
        edge_weight = 1 if data.get("special") else 0
        targets = weight.setdefault(cs, {})
        if edge_weight > targets.get(ct, -1):
            targets[ct] = edge_weight
    # Tarjan emits components in reverse topological order; walk them
    # predecessors-first and push ranks forward.
    rank = [0] * len(components)
    for cs in reversed(range(len(components))):
        for ct, edge_weight in weight.get(cs, {}).items():
            rank[ct] = max(rank[ct], rank[cs] + edge_weight)
    return {node: rank[component] for node, component in component_of.items()}

"""Static analysis of dependency sets: fragments, certificates, pruning.

Public surface:

* :func:`analyze` / :class:`AnalysisReport` — fragment hierarchy,
  position-graph facts, firing strata, termination certificate.
* :func:`prune_for_target` / :class:`QueryProgram` — goal-directed,
  verdict-preserving pruning plus the kept set's certificate/strata.
* :class:`TerminationCertificate` — derived chase budgets for certified
  sets (``implies``/``chase`` run these to fixpoint; UNKNOWN impossible).
* The position-graph primitives backing ``repro.chase.termination``.
"""

from repro.analysis.firing import (
    firing_graph,
    goal_relevant,
    never_fires,
    strata_of,
    stratify,
)
from repro.analysis.graph import MultiDiGraph
from repro.analysis.positions import (
    PositionEdge,
    build_position_graph,
    find_special_cycle,
    position_ranks,
    special_cycle_of,
)
from repro.analysis.report import (
    AnalysisReport,
    Fragment,
    PrunedDependency,
    QueryProgram,
    TerminationCertificate,
    analyze,
    existential_depth,
    prune_for_target,
)

__all__ = [
    "AnalysisReport",
    "Fragment",
    "MultiDiGraph",
    "PositionEdge",
    "PrunedDependency",
    "QueryProgram",
    "TerminationCertificate",
    "analyze",
    "build_position_graph",
    "existential_depth",
    "find_special_cycle",
    "firing_graph",
    "goal_relevant",
    "never_fires",
    "position_ranks",
    "prune_for_target",
    "special_cycle_of",
    "strata_of",
    "stratify",
]

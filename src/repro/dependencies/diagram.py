"""Dependency diagrams (Fagin–Maier–Ullman–Yannakakis notation, Figure 1).

The paper describes dependencies with *diagrams*: an undirected graph whose
nodes are the tuples of the dependency (numbered nodes are antecedents, the
node labelled ``*`` is the conclusion) and whose edges are labelled with the
attributes on which the joined tuples agree. Each attribute label induces an
equivalence relation on nodes; implied (transitive) edges may be omitted.

This module makes the notation computational:

* :func:`diagram_of` turns a TD into its diagram;
* :meth:`Diagram.to_dependency` turns a diagram back into a TD;
* the round trip is exact up to variable renaming, which the test suite
  checks on Figure 1 and on random dependencies.

Nodes are ``1..k`` (ints) for the antecedents and the string ``"*"`` for
the conclusion, exactly as the paper draws them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.errors import DiagramError
from repro.relational.schema import Attribute, Schema
from repro.dependencies.template import TemplateDependency, Variable

#: The conclusion node's label.
CONCLUSION: str = "*"

#: A diagram node: an antecedent number or the conclusion star.
NodeId = Union[int, str]


@dataclass(frozen=True, order=True)
class DiagramEdge:
    """An undirected, attribute-labelled edge between two diagram nodes."""

    node_a: str
    node_b: str
    attribute: Attribute

    @staticmethod
    def make(a: NodeId, b: NodeId, attribute: Attribute) -> "DiagramEdge":
        """Create a normalised edge (endpoints ordered, stored as strings)."""
        left, right = sorted((str(a), str(b)))
        return DiagramEdge(left, right, attribute)

    def endpoints(self) -> tuple[str, str]:
        """The two endpoint labels."""
        return self.node_a, self.node_b

    def __str__(self) -> str:
        return f"{self.node_a} --{self.attribute}-- {self.node_b}"


class _UnionFind:
    """Minimal union-find over node labels."""

    def __init__(self, items: Iterable[str]):
        self._parent = {item: item for item in items}

    def find(self, item: str) -> str:
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        self._parent[self.find(a)] = self.find(b)


class Diagram:
    """A dependency diagram: antecedent nodes, a ``*`` node, labelled edges."""

    __slots__ = ("schema", "antecedent_count", "edges")

    def __init__(
        self,
        schema: Schema,
        antecedent_count: int,
        edges: Iterable[DiagramEdge],
    ):
        if antecedent_count < 1:
            raise DiagramError("a diagram needs at least one antecedent node")
        self.schema = schema
        self.antecedent_count = antecedent_count
        self.edges = frozenset(edges)
        valid_nodes = self.node_labels()
        for edge in self.edges:
            if edge.attribute not in schema:
                raise DiagramError(f"unknown attribute {edge.attribute!r} on {edge}")
            for endpoint in edge.endpoints():
                if endpoint not in valid_nodes:
                    raise DiagramError(f"unknown node {endpoint!r} on {edge}")

    def node_labels(self) -> tuple[str, ...]:
        """All node labels: ``"1".."k"`` then ``"*"``."""
        return tuple(str(index + 1) for index in range(self.antecedent_count)) + (
            CONCLUSION,
        )

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def _classes(self, attribute: Attribute) -> _UnionFind:
        """Node classes induced by edges labelled ``attribute``."""
        components = _UnionFind(self.node_labels())
        for edge in self.edges:
            if edge.attribute == attribute:
                components.union(edge.node_a, edge.node_b)
        return components

    def to_dependency(self) -> TemplateDependency:
        """Rebuild the template dependency this diagram denotes.

        For every attribute, nodes connected by edges with that label share
        a variable; all other nodes get fresh variables. The conclusion
        node's un-connected components come out existential, matching the
        paper's reading of the ``*`` node.
        """
        atoms: dict[str, list[Variable]] = {label: [] for label in self.node_labels()}
        for attribute in self.schema:
            components = self._classes(attribute)
            for label in self.node_labels():
                root = components.find(label)
                atoms[label].append(Variable(f"{attribute}_{root}"))
        antecedents = [
            tuple(atoms[str(index + 1)]) for index in range(self.antecedent_count)
        ]
        return TemplateDependency(self.schema, antecedents, tuple(atoms[CONCLUSION]))

    # ------------------------------------------------------------------
    # Presentation helpers
    # ------------------------------------------------------------------

    def reduced_edges(self) -> frozenset[DiagramEdge]:
        """A minimal edge set with the same attribute-wise components.

        The paper omits "implied" (transitively redundant) edges from its
        figures; this computes a spanning forest per attribute so renderers
        can do the same.
        """
        kept: set[DiagramEdge] = set()
        for attribute in self.schema:
            forest = _UnionFind(self.node_labels())
            for edge in sorted(edge for edge in self.edges if edge.attribute == attribute):
                if forest.find(edge.node_a) != forest.find(edge.node_b):
                    forest.union(edge.node_a, edge.node_b)
                    kept.add(edge)
        return frozenset(kept)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Diagram):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.antecedent_count == other.antecedent_count
            and self.edges == other.edges
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.antecedent_count, self.edges))

    def __repr__(self) -> str:
        return (
            f"<Diagram nodes={self.antecedent_count}+* edges={len(self.edges)}>"
        )


def diagram_of(dependency: TemplateDependency) -> Diagram:
    """The diagram of a typed template dependency.

    Two nodes are joined by an ``A``-labelled edge when their tuples share
    the variable in column ``A``. The full clique of agreeing pairs is
    stored; use :meth:`Diagram.reduced_edges` for the figure-style minimal
    set. Requires a typed dependency (diagram labels are attributes, so a
    variable must live in a single column).
    """
    dependency.validate_typed()
    labels = [str(index + 1) for index in range(len(dependency.antecedents))]
    labels.append(CONCLUSION)
    atoms = list(dependency.antecedents) + [dependency.conclusion]
    edges: set[DiagramEdge] = set()
    for column, attribute in enumerate(dependency.schema):
        owners: dict[Variable, list[str]] = {}
        for label, atom in zip(labels, atoms):
            owners.setdefault(atom[column], []).append(label)
        for members in owners.values():
            for i, node_a in enumerate(members):
                for node_b in members[i + 1 :]:
                    edges.add(DiagramEdge.make(node_a, node_b, attribute))
    return Diagram(dependency.schema, len(dependency.antecedents), edges)

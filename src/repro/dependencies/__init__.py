"""Dependency formalism (system S2).

Template dependencies (Sadri & Ullman 1980) and the embedded implicational
dependencies (EIDs) of Chandra, Lewis & Makowsky 1981, together with:

* well-formedness and classification (full / embedded / trivial / typed);
* a small text syntax (:mod:`repro.dependencies.parser`);
* the diagram notation of Fagin, Maier, Ullman & Yannakakis used in the
  paper's Figures 1-3 (:mod:`repro.dependencies.diagram`), with exact
  round-trip conversion and ASCII / DOT rendering.
"""

from repro.dependencies.canonical import (
    canonical_key,
    canonicalize,
    dependency_fingerprint,
    premise_key,
    query_fingerprint,
    query_key,
)
from repro.dependencies.classify import (
    attribute_count,
    max_antecedent_count,
    summarize,
)
from repro.dependencies.diagram import Diagram, DiagramEdge, diagram_of
from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.parser import parse_dependency, parse_td
from repro.dependencies.render import render_ascii, render_dot
from repro.dependencies.template import TemplateDependency, Variable, is_variable

__all__ = [
    "Variable",
    "is_variable",
    "TemplateDependency",
    "EmbeddedImplicationalDependency",
    "Diagram",
    "DiagramEdge",
    "diagram_of",
    "parse_dependency",
    "parse_td",
    "render_ascii",
    "render_dot",
    "attribute_count",
    "max_antecedent_count",
    "summarize",
    "canonical_key",
    "canonicalize",
    "dependency_fingerprint",
    "premise_key",
    "query_key",
    "query_fingerprint",
]

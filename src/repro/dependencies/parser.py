"""A small text syntax for dependencies.

The syntax mirrors how the paper writes dependencies:

.. code-block:: text

    R(a, b, c) & R(a, b', c') -> R(a*, b, c')

* atoms are ``NAME(var, ..., var)`` with a single relation name (``R`` by
  convention, but any one identifier is accepted);
* ``&`` separates conjuncts, ``->`` or ``=>`` separates antecedents from
  the conclusion;
* variable names may contain letters, digits, underscores, primes (``'``)
  and a ``*`` suffix — matching the paper's ``a*, b', c''`` style;
* conclusion variables absent from the antecedents are existential, no
  annotation needed (the ``*`` is just part of the name).

A single conclusion atom parses to a
:class:`~repro.dependencies.template.TemplateDependency`; several parse to
an :class:`~repro.dependencies.eid.EmbeddedImplicationalDependency`.
"""

from __future__ import annotations

import re
from typing import Optional, Union

from repro.errors import ParseError
from repro.relational.schema import Schema
from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.template import TemplateDependency, Variable

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")
_VARIABLE_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_']*\*?")

Dependency = Union[TemplateDependency, EmbeddedImplicationalDependency]


def _default_schema(arity: int) -> Schema:
    """Attribute names ``A1..Ak`` for dependencies parsed without a schema."""
    return Schema([f"A{index + 1}" for index in range(arity)])


def _parse_atoms(text: str, where: str) -> tuple[str, list[tuple[Variable, ...]]]:
    """Parse a ``&``-separated conjunction of atoms."""
    atoms: list[tuple[Variable, ...]] = []
    relation: Optional[str] = None
    parts = text.split("&")
    for part in parts:
        match = _ATOM_RE.fullmatch(part)
        if match is None:
            raise ParseError(f"cannot parse atom {part.strip()!r} in {where}")
        name, args = match.group(1), match.group(2)
        if relation is None:
            relation = name
        elif relation != name:
            raise ParseError(
                f"dependencies use a single relation; saw {relation!r} and {name!r}"
            )
        variables = []
        for raw in args.split(","):
            token = raw.strip()
            if not _VARIABLE_RE.fullmatch(token or ""):
                raise ParseError(f"bad variable name {token!r} in {where}")
            variables.append(Variable(token))
        atoms.append(tuple(variables))
    assert relation is not None
    return relation, atoms


def parse_dependency(text: str, schema: Optional[Schema] = None) -> Dependency:
    """Parse ``text`` into a TD or an EID.

    When ``schema`` is omitted, a default schema ``A1..Ak`` matching the
    atoms' arity is synthesised.
    """
    for arrow in ("->", "=>"):
        if arrow in text:
            left, __, right = text.partition(arrow)
            break
    else:
        raise ParseError("expected '->' or '=>' between antecedents and conclusion")
    relation_left, antecedents = _parse_atoms(left, "antecedents")
    relation_right, conclusions = _parse_atoms(right, "conclusion")
    if relation_left != relation_right:
        raise ParseError(
            f"dependencies use a single relation; saw {relation_left!r} "
            f"and {relation_right!r}"
        )
    arities = {len(atom) for atom in antecedents + conclusions}
    if len(arities) != 1:
        raise ParseError(f"atoms have inconsistent arities {sorted(arities)}")
    arity = arities.pop()
    if schema is None:
        schema = _default_schema(arity)
    elif schema.arity != arity:
        raise ParseError(
            f"atoms have arity {arity} but the schema has arity {schema.arity}"
        )
    if len(conclusions) == 1:
        return TemplateDependency(schema, antecedents, conclusions[0])
    return EmbeddedImplicationalDependency(schema, antecedents, conclusions)


def parse_td(text: str, schema: Optional[Schema] = None) -> TemplateDependency:
    """Parse ``text``, requiring a single-atom conclusion (a TD)."""
    dependency = parse_dependency(text, schema)
    if isinstance(dependency, TemplateDependency):
        return dependency
    raise ParseError("expected a template dependency (single conclusion atom)")

"""Template dependencies.

A *template dependency* (TD) over a schema with attributes ``A, B, ..., C``
is a sentence

.. code-block:: text

    R(a, b, ..., c) & R(a', b', ..., c') & ... & R(a'', b'', ..., c'')
        =>  R(a*, b*, ..., c*)

stating that whenever tuples matching the antecedents are in the database,
a tuple matching the conclusion is too. Antecedent variables are
universally quantified; conclusion variables that do not occur in any
antecedent are existentially quantified. A TD is *full* when the conclusion
has no existential variables and *embedded* otherwise. Equality is not
available (the paper rules out the identity sign).

The *typing restriction*: attribute domains are disjoint, so a variable may
appear in only one column. :meth:`TemplateDependency.is_typed` checks it;
the constructor tolerates untyped dependencies (used by one example that
reproduces a folklore finite-vs-unrestricted phenomenon) but everything in
the paper's construction is typed.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import ArityError, DependencyError, TypingError
from repro.relational.homplan import find_homomorphism
from repro.relational.instance import Instance, Row
from repro.relational.schema import Schema
from repro.relational.values import Const, NullFactory, Value


class Variable:
    """A named dependency variable.

    Variables compare by name, so the same name in two atoms denotes the
    same individual. Conclusion-only variables are existential.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise DependencyError(f"variable names must be non-empty strings, got {name!r}")
        self.name = name
        self._hash = hash(("Var", name))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


def is_variable(term: object) -> bool:
    """True when ``term`` is a dependency variable."""
    return isinstance(term, Variable)


#: An atom: one variable per column of the schema.
Atom = tuple[Variable, ...]


class TemplateDependency:
    """An immutable template dependency over a fixed schema.

    >>> from repro.relational import Schema
    >>> schema = Schema(["SUPPLIER", "STYLE", "SIZE"])
    >>> a, b, c = Variable("a"), Variable("b"), Variable("c")
    >>> b2, c2, a_star = Variable("b2"), Variable("c2"), Variable("a_star")
    >>> fig1 = TemplateDependency(
    ...     schema,
    ...     antecedents=[(a, b, c), (a, b2, c2)],
    ...     conclusion=(a_star, b, c2),
    ... )
    >>> fig1.is_full()
    False
    """

    __slots__ = (
        "schema",
        "antecedents",
        "conclusion",
        "name",
        "_column_of",
        "_typed",
    )

    def __init__(
        self,
        schema: Schema,
        antecedents: Iterable[Sequence[Variable]],
        conclusion: Sequence[Variable],
        *,
        name: Optional[str] = None,
    ):
        self.schema = schema
        self.antecedents: tuple[Atom, ...] = tuple(
            tuple(atom) for atom in antecedents
        )
        self.conclusion: Atom = tuple(conclusion)
        self.name = name
        if not self.antecedents:
            raise DependencyError("a template dependency needs at least one antecedent")
        for atom in self.antecedents + (self.conclusion,):
            if len(atom) != schema.arity:
                raise ArityError(
                    f"atom of arity {len(atom)} does not fit schema arity {schema.arity}"
                )
            for term in atom:
                if not is_variable(term):
                    raise DependencyError(
                        f"atoms must contain Variable terms only, got {term!r}"
                    )
        self._column_of, self._typed = self._compute_typing()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def _compute_typing(self) -> tuple[dict[Variable, int], bool]:
        column_of: dict[Variable, int] = {}
        typed = True
        for atom in self.atoms():
            for column, variable in enumerate(atom):
                seen = column_of.setdefault(variable, column)
                if seen != column:
                    typed = False
        return column_of, typed

    def atoms(self) -> Iterator[Atom]:
        """All atoms: the antecedents followed by the conclusion."""
        yield from self.antecedents
        yield self.conclusion

    @property
    def conclusions(self) -> tuple[Atom, ...]:
        """The conclusion as a one-element conjunction.

        This gives TDs and EIDs a common shape, so the chase engine can
        treat a TD as an EID whose conclusion conjunction has one atom.
        """
        return (self.conclusion,)

    def variables(self) -> set[Variable]:
        """Every variable occurring in the dependency."""
        return set(self._column_of)

    def universal_variables(self) -> set[Variable]:
        """Variables occurring in some antecedent."""
        return {variable for atom in self.antecedents for variable in atom}

    def existential_variables(self) -> set[Variable]:
        """Conclusion variables that occur in no antecedent."""
        return set(self.conclusion) - self.universal_variables()

    def column_of(self, variable: Variable) -> int:
        """The column a variable occupies (first occurrence when untyped)."""
        try:
            return self._column_of[variable]
        except KeyError:
            raise DependencyError(f"{variable!r} does not occur in this dependency") from None

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def is_full(self) -> bool:
        """True when the conclusion has no existential variables."""
        return not self.existential_variables()

    def is_embedded(self) -> bool:
        """True when some conclusion variable is existential."""
        return not self.is_full()

    def is_typed(self) -> bool:
        """True when every variable occupies a single column."""
        return self._typed

    def validate_typed(self) -> None:
        """Raise :class:`~repro.errors.TypingError` unless typed."""
        if not self._typed:
            offenders = sorted(
                variable.name
                for variable in self.variables()
                if len({
                    column
                    for atom in self.atoms()
                    for column, term in enumerate(atom)
                    if term == variable
                }) > 1
            )
            raise TypingError(
                f"variables {offenders} appear in more than one column"
            )

    def is_trivial(self) -> bool:
        """True when the conclusion already follows from the antecedents.

        A TD is trivial when the conclusion atom maps into the antecedent
        set by a substitution that fixes every universal variable (the
        existential variables may go anywhere). Such a TD holds in every
        database.
        """
        antecedent_instance = Instance(
            self.schema, (tuple(atom) for atom in self.antecedents)  # type: ignore[arg-type]
        )
        universals = self.universal_variables()
        identity = {variable: variable for variable in set(self.conclusion) & universals}
        extension = find_homomorphism(
            [self.conclusion],
            antecedent_instance,
            partial=identity,
            flexible=is_variable,
        )
        return extension is not None

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def holds_in(
        self, instance: Instance, *, checker: Optional[str] = None
    ) -> bool:
        """Model checking: does ``instance`` satisfy this dependency?

        True when every homomorphism of the antecedents into the instance
        extends to one of the conclusion. Runs on the compiled join-plan
        checker by default (``checker="legacy"`` selects the generic
        search; see :mod:`repro.chase.checkplan`).
        """
        return self.find_violation(instance, checker=checker) is None

    def find_violation(
        self, instance: Instance, *, checker: Optional[str] = None
    ) -> Optional[dict]:
        """Return a violating antecedent homomorphism, or None.

        A violation is an assignment of the universal variables under which
        every antecedent is present but no conclusion tuple exists. The
        implementation is shared with EIDs (a TD is the one-conclusion-atom
        special case) and dispatches between the compiled and legacy
        checkers in :mod:`repro.chase.checkplan`.
        """
        from repro.chase.checkplan import find_violation

        return find_violation(self, instance, checker=checker)

    def freeze(
        self, fresh: Optional[NullFactory] = None
    ) -> tuple[Instance, dict[Variable, Value]]:
        """Freeze the antecedents into a canonical database.

        Every universal variable becomes a distinct frozen constant — or,
        when ``fresh`` (a :class:`~repro.relational.values.NullFactory`)
        is given, a distinct labelled null from that factory. The frozen
        instance is what the chase starts from when testing whether a set
        of dependencies implies this one; the null-freezing variant makes
        the start instance homomorphically extensible (nulls may be
        remapped) where frozen constants are rigid. Returned alongside
        the variable-to-value assignment.
        """
        assignment: dict[Variable, Value] = {}
        for variable in sorted(self.universal_variables(), key=lambda v: v.name):
            assignment[variable] = (
                fresh() if fresh is not None else Const(("frozen", variable.name))
            )
        instance = Instance(
            self.schema,
            (
                tuple(assignment[variable] for variable in atom)
                for atom in self.antecedents
            ),
        )
        return instance, assignment

    # ------------------------------------------------------------------
    # Transformation and comparison
    # ------------------------------------------------------------------

    def rename(self, mapping: Mapping[Variable, Variable]) -> "TemplateDependency":
        """Apply a variable renaming, returning a new dependency."""

        def substitute(atom: Atom) -> Atom:
            return tuple(mapping.get(variable, variable) for variable in atom)

        return TemplateDependency(
            self.schema,
            [substitute(atom) for atom in self.antecedents],
            substitute(self.conclusion),
            name=self.name,
        )

    def canonical(self) -> "TemplateDependency":
        """A canonical variable renaming, for structural comparison.

        Delegates to :func:`repro.dependencies.canonical.canonicalize`
        (the branch-and-prune least-shape labeling the batch service
        hashes with), so there is exactly one definition of structural
        identity in the library: two dependencies have equal canonical
        forms exactly when one is a variable renaming (plus antecedent
        reordering) of the other — exact whenever the labeling search
        completes within its node budget, which covers everything but
        pathologically symmetric conjunctions (where the degraded greedy
        choice can at worst split an equivalence class, never conflate
        two).
        """
        from repro.dependencies.canonical import canonicalize

        canonical = canonicalize(self)
        assert isinstance(canonical, TemplateDependency)
        return canonical

    def structurally_equal(self, other: "TemplateDependency") -> bool:
        """Equality up to variable renaming and antecedent order."""
        if self.schema != other.schema:
            return False
        mine = self.canonical()
        theirs = other.canonical()
        return (
            mine.antecedents == theirs.antecedents
            and mine.conclusion == theirs.conclusion
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemplateDependency):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.antecedents == other.antecedents
            and self.conclusion == other.conclusion
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.antecedents, self.conclusion))

    def __repr__(self) -> str:
        label = f" {self.name}" if self.name else ""
        return (
            f"<TemplateDependency{label} antecedents={len(self.antecedents)}"
            f" arity={self.schema.arity}>"
        )

    def __str__(self) -> str:
        def show(atom: Atom) -> str:
            return "R(" + ", ".join(variable.name for variable in atom) + ")"

        left = " & ".join(show(atom) for atom in self.antecedents)
        return f"{left} -> {show(self.conclusion)}"

"""Canonical forms and content hashes for dependencies and queries.

Dependencies are closed formulas: renaming variables or reordering the
antecedent (or, for EIDs, conclusion) conjunction yields a logically
identical sentence. The batch inference service deduplicates and caches
queries by *content*, so it needs a canonical form that is invariant under
exactly those transformations, plus a stable hash of it:

* :func:`canonical_shape` — atoms as tuples of variable *numbers* (first
  occurrence along a canonically chosen atom ordering), the
  isomorphism-invariant skeleton of a dependency;
* :func:`canonical_key` / :func:`dependency_fingerprint` — the shape plus
  the schema, and its SHA-256 content hash;
* :func:`query_key` / :func:`query_fingerprint` — the same for a whole
  inference query ``D ⊨ d``: the dependency *set* is deduplicated and
  sorted, so ``D``'s order and repetitions do not matter either;
* :func:`canonicalize` — a dependency rebuilt with the canonical variable
  names (``v0, v1, ...``), for display and structural comparison.

The shape search is a greedy branch-and-prune canonical labeling: build
the atom ordering one atom at a time, always extending with an atom whose
numbered tuple is minimal, branching on ties and pruning branches that
fall behind the best completed shape. Picking the minimal next tuple is
*necessary* for the lexicographically least shape, so the search is exact
whenever it runs to completion; hashing sits on the batch service's hot
path, so a node budget caps pathological tie explosions (highly symmetric
dependencies), degrading to a deterministic greedy choice over atoms
pre-sorted by renaming-invariant features. The degraded case can at worst
split one cache key in two — never conflate distinct dependencies.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Optional, Sequence

from repro.dependencies.classify import Dependency
from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.template import Atom, TemplateDependency, Variable

#: One antecedent/conclusion block of a shape: atoms over variable numbers.
ShapeBlock = tuple[tuple[int, ...], ...]

#: The isomorphism-invariant skeleton: (antecedent block, conclusion block).
Shape = tuple[ShapeBlock, ShapeBlock]

#: Candidate-tuple evaluations allowed per shape search before the search
#: stops branching on ties. Generous: typical dependencies (the paper's
#: have at most five antecedents) finish exactly within a tiny fraction.
_NODE_BUDGET = 50_000


def _invariant_sort(atoms: Sequence[Atom], degree: dict[Variable, int]) -> list[Atom]:
    """Order atoms by renaming-invariant features (self-pattern, degrees).

    Used to presort the search's tie exploration so that even the
    budget-capped greedy fallback cannot see variable names or the
    caller's atom order.
    """

    def key(atom: Atom) -> tuple:
        local: dict[Variable, int] = {}
        pattern = tuple(local.setdefault(variable, len(local)) for variable in atom)
        degrees = tuple(degree[variable] for variable in atom)
        return (pattern, degrees)

    return sorted(atoms, key=key)


def _least_shape(antecedents: Sequence[Atom], conclusions: Sequence[Atom]) -> Shape:
    """The lexicographically least (antecedent, conclusion) numbering."""
    degree: dict[Variable, int] = {}
    for atom in list(antecedents) + list(conclusions):
        for variable in set(atom):
            degree[variable] = degree.get(variable, 0) + 1
    antecedent_pool = _invariant_sort(antecedents, degree)
    conclusion_pool = _invariant_sort(conclusions, degree)

    split = len(antecedent_pool)
    best: Optional[tuple[tuple[int, ...], ...]] = None
    budget = _NODE_BUDGET
    order: dict[Variable, int] = {}
    prefix: list[tuple[int, ...]] = []

    def numbered(atom: Atom) -> tuple[int, ...]:
        """The atom's tuple if chosen next (without committing)."""
        trial: dict[Variable, int] = {}
        numbers = []
        for variable in atom:
            number = order.get(variable)
            if number is None:
                number = trial.setdefault(variable, len(order) + len(trial))
            numbers.append(number)
        return tuple(numbers)

    def search(remaining: list[Atom], conclusions_left: list[Atom]) -> None:
        nonlocal best, budget
        if not remaining:
            if conclusions_left:
                search(conclusions_left, [])
                return
            shape = tuple(prefix)
            if best is None or shape < best:
                best = shape
            return
        if best is not None and tuple(prefix) > best[: len(prefix)]:
            return  # this branch can no longer beat the best completed shape
        scored = [(numbered(atom), position) for position, atom in enumerate(remaining)]
        budget -= len(scored)
        least = min(tuple_ for tuple_, __ in scored)
        ties = [position for tuple_, position in scored if tuple_ == least]
        if budget <= 0:
            ties = ties[:1]
        for position in ties:
            atom = remaining[position]
            added = []
            for variable in atom:
                if variable not in order:
                    order[variable] = len(order)
                    added.append(variable)
            prefix.append(least)
            search(remaining[:position] + remaining[position + 1 :], conclusions_left)
            prefix.pop()
            for variable in added:
                del order[variable]

    search(antecedent_pool, conclusion_pool)
    assert best is not None
    return best[:split], best[split:]


def canonical_shape(dependency: Dependency) -> Shape:
    """The least shape over antecedent and conclusion orderings.

    Invariant under variable renaming and under reordering of the
    antecedent and conclusion conjunctions.
    """
    return _least_shape(dependency.antecedents, dependency.conclusions)


def canonical_key(dependency: Dependency) -> tuple:
    """A hashable, comparison-friendly canonical identity.

    Two dependencies get the same key exactly when they are the same
    sentence up to variable renaming and conjunction order. The schema is
    part of the key: the same shape over different attribute lists is a
    different dependency.
    """
    antecedent_block, conclusion_block = canonical_shape(dependency)
    return (dependency.schema.attributes, antecedent_block, conclusion_block)


def canonicalize(dependency: Dependency) -> Dependency:
    """Rebuild ``dependency`` with canonical variable names ``v0, v1, ...``."""
    antecedent_block, conclusion_block = canonical_shape(dependency)

    def rebuild(block: ShapeBlock) -> list[tuple[Variable, ...]]:
        return [
            tuple(Variable(f"v{index}") for index in atom) for atom in block
        ]

    if isinstance(dependency, TemplateDependency):
        return TemplateDependency(
            dependency.schema,
            rebuild(antecedent_block),
            rebuild(conclusion_block)[0],
            name=dependency.name,
        )
    return EmbeddedImplicationalDependency(
        dependency.schema,
        rebuild(antecedent_block),
        rebuild(conclusion_block),
        name=dependency.name,
    )


def _digest(key: tuple) -> str:
    """SHA-256 of a canonical key (tuples serialize as JSON arrays)."""
    payload = json.dumps(key, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dependency_fingerprint(dependency: Dependency) -> str:
    """A stable content hash of one dependency's canonical key."""
    return _digest(canonical_key(dependency))


def premise_key(dependencies: Iterable[Dependency]) -> tuple:
    """Canonical identity of a premise *set*: deduplicated, sorted keys.

    Batch callers answering many targets against one premise set should
    compute this once and pass it to :func:`query_fingerprint` via
    ``premises`` — canonical labeling is the expensive part of hashing.
    """
    return tuple(sorted({canonical_key(dependency) for dependency in dependencies}))


def query_key(
    dependencies: Iterable[Dependency],
    target: Dependency,
    *,
    premises: Optional[tuple] = None,
) -> tuple:
    """Canonical identity of the inference query ``dependencies ⊨ target``.

    The premise set is deduplicated and sorted by canonical key, so the
    key is invariant under reordering and repetition of ``dependencies``
    as well as per-dependency renaming. ``premises`` short-circuits the
    premise-set labeling with a precomputed :func:`premise_key`.
    """
    if premises is None:
        premises = premise_key(dependencies)
    return (premises, canonical_key(target))


def query_fingerprint(
    dependencies: Iterable[Dependency],
    target: Dependency,
    *,
    premises: Optional[tuple] = None,
) -> str:
    """A stable content hash for a whole ``D ⊨ d`` query."""
    return _digest(query_key(dependencies, target, premises=premises))

"""Rendering dependency diagrams as ASCII summaries and Graphviz DOT.

The paper's Figures 1-3 are diagrams in the Fagin et al. notation. These
renderers regenerate them in two machine-friendly forms:

* :func:`render_ascii` — a stable, diffable text listing (node roster plus
  one line per non-implied edge), used by the examples and by
  ``EXPERIMENTS.md``;
* :func:`render_dot` — Graphviz source, so a reader with ``dot`` installed
  can produce pictures visually equivalent to the paper's figures.
"""

from __future__ import annotations

from repro.dependencies.diagram import CONCLUSION, Diagram


def render_ascii(diagram: Diagram, title: str = "") -> str:
    """A deterministic text rendering of ``diagram``.

    Edges implied by transitivity are omitted, as in the paper's figures.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    node_list = ", ".join(diagram.node_labels())
    lines.append(f"nodes: {node_list}   (numbered = antecedents, * = conclusion)")
    lines.append("edges (label = shared attribute):")
    reduced = sorted(diagram.reduced_edges())
    if not reduced:
        lines.append("  (none -- all tuple components independent)")
    for edge in reduced:
        lines.append(f"  {edge.node_a} --{edge.attribute}-- {edge.node_b}")
    return "\n".join(lines)


def render_dot(diagram: Diagram, name: str = "dependency") -> str:
    """Graphviz DOT source for ``diagram``.

    Antecedent nodes are drawn as circles, the conclusion node as a doubled
    circle labelled ``*``, and each non-implied edge carries its attribute
    label — matching the visual conventions of the paper's figures.
    """
    lines = [f"graph {_dot_identifier(name)} {{"]
    lines.append("  layout=neato;")
    lines.append("  node [shape=circle];")
    for label in diagram.node_labels():
        if label == CONCLUSION:
            lines.append('  star [label="*", shape=doublecircle];')
        else:
            lines.append(f"  n{label} [label=\"{label}\"];")
    for edge in sorted(diagram.reduced_edges()):
        lines.append(
            f"  {_dot_node(edge.node_a)} -- {_dot_node(edge.node_b)}"
            f" [label=\"{edge.attribute}\"];"
        )
    lines.append("}")
    return "\n".join(lines)


def _dot_node(label: str) -> str:
    return "star" if label == CONCLUSION else f"n{label}"


def _dot_identifier(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"g_{cleaned}"
    return cleaned

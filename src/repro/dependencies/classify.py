"""Classification helpers and aggregate statistics over dependency sets.

The paper makes two quantitative claims about its construction that these
helpers verify experimentally (experiment E3):

* every produced dependency has **at most five antecedents** — Gurevich &
  Lewis's proof is "complementary" to Vardi's precisely because the number
  of antecedents is bounded while the number of attributes is not;
* the schema has exactly ``2n + 2`` attributes for an ``n``-letter alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.dependencies.eid import EmbeddedImplicationalDependency
from repro.dependencies.template import TemplateDependency

#: Anything the chase engine can process.
Dependency = Union[TemplateDependency, EmbeddedImplicationalDependency]


def max_antecedent_count(dependencies: Iterable[Dependency]) -> int:
    """The largest antecedent count in a dependency set (0 when empty)."""
    return max((len(dep.antecedents) for dep in dependencies), default=0)


def attribute_count(dependencies: Sequence[Dependency]) -> int:
    """The common schema arity of a non-empty dependency set."""
    if not dependencies:
        raise ValueError("attribute_count needs a non-empty dependency set")
    arities = {dep.schema.arity for dep in dependencies}
    if len(arities) != 1:
        raise ValueError(f"dependencies span several schemas (arities {sorted(arities)})")
    return arities.pop()


@dataclass(frozen=True)
class DependencySetSummary:
    """Aggregate shape statistics of a dependency set."""

    count: int
    attribute_count: int
    max_antecedents: int
    full_count: int
    embedded_count: int
    typed: bool

    def __str__(self) -> str:
        return (
            f"{self.count} dependencies over {self.attribute_count} attributes; "
            f"max antecedents {self.max_antecedents}; "
            f"{self.full_count} full / {self.embedded_count} embedded; "
            f"{'typed' if self.typed else 'untyped'}"
        )


def summarize(dependencies: Sequence[Dependency]) -> DependencySetSummary:
    """Compute a :class:`DependencySetSummary` for a dependency set."""
    full = sum(1 for dep in dependencies if dep.is_full())
    return DependencySetSummary(
        count=len(dependencies),
        attribute_count=attribute_count(dependencies),
        max_antecedents=max_antecedent_count(dependencies),
        full_count=full,
        embedded_count=len(dependencies) - full,
        typed=all(dep.is_typed() for dep in dependencies),
    )

"""Embedded implicational dependencies (EIDs).

Chandra, Lewis & Makowsky (1981) proved undecidability of inference for
*embedded implicational dependencies*: like template dependencies, but the
conclusion may be a **conjunction** of atoms rather than a single atom. The
paper under reproduction strengthens that result (TDs are the special case
with a one-atom conclusion), and gives the example EID

.. code-block:: text

    R(a, b, c) & R(a, b', c')  =>  R(a*, b, c) & R(a*, b, c')

("if one supplier supplies garment b in size c and also some garment in
size c', then a single supplier supplies garment b in both sizes").

EIDs share the chase machinery with TDs: both expose ``antecedents`` and
``conclusions``, and the chase engine only looks at those two attributes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import ArityError, DependencyError
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.dependencies.template import Atom, TemplateDependency, Variable, is_variable


class EmbeddedImplicationalDependency:
    """An EID: antecedent atoms implying a conjunction of conclusion atoms."""

    __slots__ = ("schema", "antecedents", "conclusions", "name", "_typed")

    def __init__(
        self,
        schema: Schema,
        antecedents: Iterable[Sequence[Variable]],
        conclusions: Iterable[Sequence[Variable]],
        *,
        name: Optional[str] = None,
    ):
        self.schema = schema
        self.antecedents: tuple[Atom, ...] = tuple(tuple(atom) for atom in antecedents)
        self.conclusions: tuple[Atom, ...] = tuple(tuple(atom) for atom in conclusions)
        self.name = name
        if not self.antecedents:
            raise DependencyError("an EID needs at least one antecedent")
        if not self.conclusions:
            raise DependencyError("an EID needs at least one conclusion atom")
        for atom in self.antecedents + self.conclusions:
            if len(atom) != schema.arity:
                raise ArityError(
                    f"atom of arity {len(atom)} does not fit schema arity {schema.arity}"
                )
            for term in atom:
                if not is_variable(term):
                    raise DependencyError(
                        f"atoms must contain Variable terms only, got {term!r}"
                    )
        self._typed = self._check_typed()

    def _check_typed(self) -> bool:
        column_of: dict[Variable, int] = {}
        for atom in self.atoms():
            for column, variable in enumerate(atom):
                if column_of.setdefault(variable, column) != column:
                    return False
        return True

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def atoms(self) -> Iterator[Atom]:
        """All atoms: antecedents then conclusion atoms."""
        yield from self.antecedents
        yield from self.conclusions

    def universal_variables(self) -> set[Variable]:
        """Variables occurring in some antecedent."""
        return {variable for atom in self.antecedents for variable in atom}

    def existential_variables(self) -> set[Variable]:
        """Conclusion variables occurring in no antecedent."""
        conclusion_variables = {
            variable for atom in self.conclusions for variable in atom
        }
        return conclusion_variables - self.universal_variables()

    def is_full(self) -> bool:
        """True when the conclusion has no existential variables."""
        return not self.existential_variables()

    def is_typed(self) -> bool:
        """True when every variable occupies a single column."""
        return self._typed

    def is_template_dependency(self) -> bool:
        """True when the conclusion conjunction is a single atom."""
        return len(self.conclusions) == 1

    def as_template_dependency(self) -> TemplateDependency:
        """Convert to a TD (only when the conclusion is a single atom)."""
        if not self.is_template_dependency():
            raise DependencyError(
                "EID with a multi-atom conclusion is not a template dependency"
            )
        return TemplateDependency(
            self.schema, self.antecedents, self.conclusions[0], name=self.name
        )

    def split(self) -> list[TemplateDependency]:
        """Split into one TD per conclusion atom.

        Note this weakening is **not** equivalent for embedded dependencies:
        the conjunction requires one witness serving all conclusion atoms,
        whereas the split TDs may use different witnesses. The split is
        still a sound consequence and is what the paper means when it says
        EIDs are *more general* than TDs.
        """
        return [
            TemplateDependency(
                self.schema,
                self.antecedents,
                atom,
                name=f"{self.name or 'eid'}[{index}]",
            )
            for index, atom in enumerate(self.conclusions)
        ]

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def holds_in(
        self, instance: Instance, *, checker: Optional[str] = None
    ) -> bool:
        """Model checking against a database instance.

        Compiled join-plan checker by default; ``checker="legacy"``
        selects the generic search (see :mod:`repro.chase.checkplan`).
        """
        return self.find_violation(instance, checker=checker) is None

    def find_violation(
        self, instance: Instance, *, checker: Optional[str] = None
    ) -> Optional[dict]:
        """Return a violating antecedent homomorphism, or None.

        Shares one implementation with
        :class:`~repro.dependencies.template.TemplateDependency` (a TD is
        this with a one-atom conclusion conjunction), dispatched in
        :mod:`repro.chase.checkplan`.
        """
        from repro.chase.checkplan import find_violation

        return find_violation(self, instance, checker=checker)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EmbeddedImplicationalDependency):
            return NotImplemented
        return (
            self.schema == other.schema
            and self.antecedents == other.antecedents
            and self.conclusions == other.conclusions
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.antecedents, self.conclusions))

    def __repr__(self) -> str:
        label = f" {self.name}" if self.name else ""
        return (
            f"<EID{label} antecedents={len(self.antecedents)}"
            f" conclusions={len(self.conclusions)}>"
        )

    def __str__(self) -> str:
        def show(atom: Atom) -> str:
            return "R(" + ", ".join(variable.name for variable in atom) + ")"

        left = " & ".join(show(atom) for atom in self.antecedents)
        right = " & ".join(show(atom) for atom in self.conclusions)
        return f"{left} -> {right}"


def td_as_eid(td: TemplateDependency) -> EmbeddedImplicationalDependency:
    """Embed a template dependency into the EID class (one-atom conclusion)."""
    return EmbeddedImplicationalDependency(
        td.schema, td.antecedents, (td.conclusion,), name=td.name
    )

"""A long-lived asyncio HTTP front-end over :class:`InferenceService`.

The server makes budget-bounded verdicts — including first-class
UNKNOWNs — servable to many concurrent clients: requests landing within
a configurable coalescing window (default 10 ms) are micro-batched into
*one* :meth:`InferenceService.run` call, so canonical deduplication and
the shared :class:`~repro.service.cache.ResultCache` (optionally disk
backed) work *across clients*, not just within one request's batch. Two
clients submitting alpha-renamed copies of the same query cost one
chase.

Endpoints (JSON over HTTP/1.1, wire format = :mod:`repro.io.json_codec`
payloads):

* ``POST /v1/implies`` — one query: ``{"dependencies": [...],
  "target": ..., "budget"?: ..., "certificates"?: bool}``; answers with
  the verdict, fingerprint, cache/dedup provenance and the full outcome
  payload (certificates included unless ``"certificates": false``).
* ``POST /v1/batch`` — many targets against one premise set; answers
  with per-item verdicts plus this request's slice of the batch stats.
* ``GET /v1/stats`` — lifetime server, cache and batching counters,
  plus the full metrics-registry snapshot (JSON form).
* ``GET /metrics`` — the same registry in Prometheus text exposition
  format (the one non-JSON endpoint; scrape it).
* ``GET /v1/trace/<id>`` — one request's stage-level run trace, while
  it is still in the service's bounded trace buffer. Every verdict
  response carries its ``trace_id`` (client-suppliable via the request
  payload); ``POST /v1/implies?debug=1`` / ``/v1/batch?debug=1``
  attach the trace to the response inline.
* ``POST /v1/models`` — register a maintained universal model (schema +
  dependency program + base facts; chased once, then kept up to date).
  ``POST /v1/models/<id>/facts`` streams inserts/deletes into it (an
  incremental re-chase, not a from-scratch one) and
  ``POST /v1/models/<id>/query`` answers conjunctive queries (certain
  answers) and implication checks against the maintained fixpoint.
  ``GET``/``DELETE`` on ``/v1/models[/<id>]`` list, inspect and drop.
* ``GET /healthz`` — liveness. ``GET /readyz`` — readiness: 503 while
  the serving loop is starting or draining (see ``max_queue`` /
  ``drain_timeout`` on :class:`InferenceServer` for the overload and
  shutdown story; a full admission queue sheds requests with 429 and a
  ``Retry-After`` header rather than flipping readiness).

The event loop only parses HTTP and queues queries; chases run on an
executor thread (one batch at a time, so the cache and the service's
pending queue are touched by a single thread), and with ``workers > 0``
fan out further over the service's persistent
:class:`~repro.service.scheduler.WorkerPool`. Because runs execute one
at a time, duplicate concurrent misses never race each other: a
duplicate either coalesces into its original's run (deduplicated) or
arrives after the verdict was recorded (cache hit) — never a second
chase of the same fingerprint.

``python -m repro serve`` is the CLI wrapper; tests and benchmarks use
:class:`ServerThread` to host a server on a background thread of the
same process.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import threading
import time
import urllib.parse
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import dataclasses

from repro import faults
from repro.chase.budget import Budget
from repro.chase.implication import InferenceStatus
from repro.dependencies.classify import Dependency
from repro.errors import ReproError
from repro.kernel.backend import join_backend_info
from repro.io.json_codec import (
    CodecError,
    Json,
    budget_from_json,
    budget_to_json,
    cq_from_json,
    dependency_from_json,
    outcome_to_json,
    rows_from_json,
    rows_to_json,
    schema_from_json,
)
from repro.obs.trace import new_trace_id
from repro.service.api import BatchItem, InferenceService, ModelStore
from repro.service.cache import budget_meet

#: Largest accepted request body; bigger requests get 413 instead of
#: buffering unboundedly in the event loop.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Bodies up to this size are JSON-decoded inline on the event loop;
#: larger ones decode on the executor so they cannot stall other
#: connections.
INLINE_DECODE_BYTES = 64 * 1024



@dataclass
class ServerStats:
    """Lifetime counters for one server process."""

    requests: int = 0
    http_errors: int = 0
    queries: int = 0
    #: Requests refused with 429 because the admission queue was full
    #: (or the ``shed`` fault point forced the same path).
    shed: int = 0
    batches: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    executed: int = 0
    skipped: int = 0
    #: Wall seconds of whole InferenceService runs (hashing, cache
    #: traffic and scheduling included).
    batch_seconds: float = 0.0
    #: Wall seconds actually spent inside chase dispatches. Historically
    #: this field held what ``batch_seconds`` now holds; the two are
    #: split so "time serving batches" and "time chasing" read apart.
    chase_seconds: float = 0.0


@dataclass
class _QueuedQuery:
    """One client query waiting for the micro-batching loop.

    ``budget`` is always resolved (request budget clamped into the
    server ceiling, or the ceiling itself) before queueing. ``derive``
    remembers whether the *client* sent a budget at all: budget-free
    queries over premise sets the static analyzer certifies are chased
    to fixpoint under the analyzer-derived bound (decisive verdict,
    no UNKNOWN), while explicit client budgets are honored exactly.
    """

    dependencies: tuple[Dependency, ...]
    target: Dependency
    budget: Budget
    future: "asyncio.Future[BatchItem]" = field(repr=False)
    trace_id: Optional[str] = None
    derive: bool = False


@dataclass
class _TextResponse:
    """A non-JSON response body (``GET /metrics``)."""

    body: str
    content_type: str = "text/plain; version=0.0.4; charset=utf-8"


def _item_payload(item: BatchItem, include_certificates: bool) -> Json:
    """Encode one answered query for the wire.

    With certificates declined, the chase trace and counterexample are
    dropped *before* encoding — a proof trace can dwarf the verdict.
    An UNKNOWN's budget-exhausted chase result is never shipped: it is
    not a certificate (``json_codec.slim_unknown_outcome`` is the same
    policy at the payload level, applied by the cache and the pool
    wire), and serial in-process outcomes would otherwise leak it where
    pooled ones do not. Dropped here pre-encode so the trace is never
    serialized at all.
    """
    outcome = item.outcome
    if not include_certificates or outcome.status is InferenceStatus.UNKNOWN:
        outcome = dataclasses.replace(
            outcome,
            chase_result=None,
            counterexample=(
                outcome.counterexample if include_certificates else None
            ),
        )
    outcome_payload = outcome_to_json(outcome)
    payload = {
        "status": item.outcome.status.value,
        "fingerprint": item.fingerprint,
        "from_cache": item.from_cache,
        "deduplicated": item.deduplicated,
        "outcome": outcome_payload,
    }
    # Analysis provenance is small and verdict-relevant (it explains a
    # decisive answer on a budget-free query), so it is surfaced at the
    # top level too, certificates or not.
    if item.outcome.analysis is not None:
        payload["analysis"] = item.outcome.analysis
    return payload


class _BadRequest(Exception):
    """Client-side error carried to the HTTP layer as a 400."""


class _Rejected(Exception):
    """Admission refused — a 429 (queue full) or 503 (draining).

    Carries a ``Retry-After`` hint so well-behaved clients back off
    instead of hammering an already overloaded server.
    """

    def __init__(self, status: int, message: str, retry_after: int):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class _DropConnection(Exception):
    """Injected connection drop (the ``drop_conn`` fault point): the
    handler closes the socket without writing any response."""


class InferenceServer:
    """The asyncio HTTP server; one instance owns one listening socket.

    * ``batch_window`` — how long (seconds) the micro-batching loop
      waits after the first queued query for more to coalesce. 0 turns
      coalescing off entirely: every query gets its own ``run``
      (benchmark E12's one-request-per-run control). Runs stay
      serialized either way, so even at 0 a concurrent duplicate of an
      in-flight miss is answered by the cache, never chased twice; what
      the window buys is shared runs — cross-client dedup *within* one
      run and pool-wide fan-out of each run's misses.
    * ``max_batch`` — cap on queries coalesced into one ``run``.
    * ``default_budget`` — used for requests that carry no ``budget``,
      and the *ceiling* for requests that do: a client budget is
      clamped axis-wise into it (requests can only narrow the work, so
      no request — e.g. an empty ``"budget": {}``, which decodes to
      unlimited — can wedge the serialized run pipeline).
    * ``read_timeout`` — seconds an idle or trickling connection may
      take to deliver its request before being answered 400 and closed.
    * ``max_models`` — capacity of the maintained-model store backing
      the ``/v1/models`` endpoints (LRU-evicted past that).
    * ``max_queue`` — cap on queries admitted but not yet answered. A
      request whose targets would push the backlog past the cap is shed
      with ``429 Too Many Requests`` and a ``Retry-After`` header —
      bounded latency for admitted work beats unbounded queueing for
      everyone (``GET /readyz`` goes 503 only while starting or
      draining; shedding is per-request, not a readiness state).
    * ``drain_timeout`` — seconds :meth:`stop` waits for queued and
      in-flight queries to finish before tearing the loop down. During
      the drain the socket stays open so ``/readyz`` can answer 503
      and load balancers rotate the instance out gracefully.
    """

    #: ``Retry-After`` hint (seconds) on 429/503 admission refusals.
    RETRY_AFTER_SECONDS = 1

    def __init__(
        self,
        service: Optional[InferenceService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        batch_window: float = 0.010,
        max_batch: int = 64,
        default_budget: Optional[Budget] = None,
        read_timeout: float = 30.0,
        max_models: int = 32,
        max_queue: int = 256,
        drain_timeout: float = 5.0,
    ):
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if read_timeout <= 0:
            raise ValueError("read_timeout must be positive")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        if drain_timeout < 0:
            raise ValueError("drain_timeout must be >= 0")
        self.service = service if service is not None else InferenceService()
        self.host = host
        self.port = port  # rewritten to the bound port by start()
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.default_budget = (
            default_budget if default_budget is not None else Budget()
        )
        self.read_timeout = read_timeout
        self.max_queue = max_queue
        self.drain_timeout = drain_timeout
        # Maintained universal models (POST /v1/models and friends):
        # registered once, incrementally re-chased per facts request,
        # queried at interactive latency. Shares the service's metrics
        # registry so the maintain-stage instruments land on /metrics.
        self.models = ModelStore(
            max_models=max_models,
            default_budget=self.default_budget,
            metrics=self.service.metrics,
        )
        self.stats = ServerStats()
        self.started_at = time.monotonic()
        # HTTP-layer families on the service's registry, so one
        # ``GET /metrics`` scrape covers the whole stack. Route labels
        # are bounded by _route_label (client paths never become label
        # values).
        registry = self.service.metrics
        self._http_requests = registry.counter(
            "repro_http_requests_total",
            "HTTP requests received, by (bounded) route",
            labels=("route",),
        )
        self._http_errors_metric = registry.counter(
            "repro_http_errors_total",
            "HTTP responses with a status of 400 or above",
        )
        # Same family ServiceInstruments registers (registration is
        # idempotent for an identical signature): the service owns the
        # name, the server is the call site that sheds.
        self._shed_metric = registry.counter(
            "repro_fault_shed_total",
            "Requests shed with 429 because the admission queue was full",
        )
        registry.gauge(
            "repro_uptime_seconds",
            "Seconds since the server started",
            fn=lambda: time.monotonic() - self.started_at,
        )
        self._queue: Optional["asyncio.Queue[_QueuedQuery]"] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._batcher: Optional["asyncio.Task"] = None
        self._stopping = False
        # True while the batching loop holds popped queries (collecting
        # a window or running a batch) — work the queue no longer shows.
        self._busy = False
        # Connection handlers currently alive. stop()'s drain waits on
        # this too: a verdict computed but not yet written back is as
        # much in-flight work as the batch that computed it (and 3.11's
        # wait_closed() does not wait for handlers).
        self._connections = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "InferenceServer":
        """Bind the socket and start the micro-batching loop."""
        self.service.warm_up()  # fork workers before any executor thread
        self._stopping = False
        # The queue object is unbounded; _submit enforces max_queue
        # up front so a multi-target request is admitted or shed as a
        # unit (a bounded queue's put_nowait could land half a batch).
        self._queue = asyncio.Queue()
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop()
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI's main loop)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Drain in-flight queries, then tear the serving loop down.

        Two phases. First ``_stopping`` flips: new submissions are
        refused with 503 (``Retry-After`` set) and ``/readyz`` reports
        draining, but the socket stays open and the batching loop keeps
        answering queries already admitted — up to ``drain_timeout``
        seconds. Then the socket closes, the loop is cancelled and
        whatever the drain did not finish is resolved by cancelling its
        waiters (never left hanging).
        """
        # Handlers still alive (e.g. decoding a large body on the
        # executor) must not enqueue into a loop with no consumer and
        # hang forever; _submit checks this flag.
        self._stopping = True
        if self._batcher is not None:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.drain_timeout
            while loop.time() < deadline and (
                self._busy
                or self._connections > 0
                or (self._queue is not None and not self._queue.empty())
            ):
                await asyncio.sleep(0.005)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            self._batcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._batcher
            self._batcher = None
        if self._queue is not None:
            while not self._queue.empty():
                query = self._queue.get_nowait()
                if not query.future.done():
                    query.future.cancel()

    # ------------------------------------------------------------------
    # Micro-batching
    # ------------------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Coalesce queued queries into shared InferenceService runs."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            self._busy = True  # popped queries are invisible to qsize()
            try:
                if self.batch_window > 0:
                    # No waiting while draining: stop() is waiting on
                    # this loop, and no new queries are being admitted
                    # for a window to collect anyway.
                    if not self._stopping:
                        deadline = loop.time() + self.batch_window
                        while len(batch) < self.max_batch:
                            remaining = deadline - loop.time()
                            if remaining <= 0:
                                break
                            try:
                                batch.append(
                                    await asyncio.wait_for(
                                        self._queue.get(), remaining
                                    )
                                )
                            except asyncio.TimeoutError:
                                break
                    # Whatever queued while the window ran joins free.
                    while len(batch) < self.max_batch and not self._queue.empty():
                        batch.append(self._queue.get_nowait())
                await self._execute_batch(batch)
            except asyncio.CancelledError:
                # Shutdown mid-collection/mid-run: the popped queries are
                # in this local batch, not the queue — resolve their
                # waiters so no connection handler hangs.
                for query in batch:
                    if not query.future.done():
                        query.future.cancel()
                raise
            finally:
                self._busy = False

    async def _execute_batch(self, batch: list[_QueuedQuery]) -> None:
        """Run one coalesced batch, grouped by budget, on the executor."""
        loop = asyncio.get_running_loop()
        # Budget is a frozen dataclass: hashable, and the derive flag is
        # a second grouping axis — budget-free queries (eligible for
        # analyzer-derived budgets) must not share a run with queries
        # that pinned this same budget explicitly. _submit resolved
        # (clamped) every query's budget already, so the group key is
        # always concrete.
        groups: dict[tuple[Budget, bool], list[_QueuedQuery]] = {}
        for query in batch:
            groups.setdefault((query.budget, query.derive), []).append(query)
        for (budget, derive), members in groups.items():
            live = [member for member in members if not member.future.done()]
            if not live:
                continue
            try:
                report = await loop.run_in_executor(
                    None, self._run_group, live, budget, derive
                )
            except Exception as error:  # pragma: no cover - defensive
                for member in live:
                    if not member.future.done():
                        member.future.set_exception(error)
                continue
            if len(report.items) != len(live):  # pragma: no cover - defensive
                # Misaligned bookkeeping must fail loudly: pairing the
                # futures positionally would hand clients each other's
                # verdicts.
                mismatch = RuntimeError(
                    f"batch returned {len(report.items)} items for "
                    f"{len(live)} queries"
                )
                for member in live:
                    if not member.future.done():
                        member.future.set_exception(mismatch)
                continue
            self.stats.batches += 1
            self.stats.cache_hits += report.stats.cache_hits
            self.stats.deduplicated += report.stats.deduplicated
            self.stats.executed += report.stats.executed
            self.stats.skipped += report.stats.skipped
            self.stats.batch_seconds += report.stats.wall_seconds
            self.stats.chase_seconds += report.stats.chase_seconds
            for member, item in zip(live, report.items):
                if not member.future.done():
                    member.future.set_result(item)

    def _run_group(
        self,
        members: Sequence[_QueuedQuery],
        budget: Budget,
        derive: bool = False,
    ):
        """Executor-thread body: submit the group and run it.

        The batching loop awaits each group, so only one executor thread
        ever touches the service at a time. Submission is transactional:
        a failure partway discards the queries already queued, so a
        later group's answers can never misalign with its own futures.
        """
        try:
            for member in members:
                self.service.submit(
                    member.dependencies, member.target, trace_id=member.trace_id
                )
        except Exception:
            self.service.discard_pending()
            raise
        return self.service.run(budget, derive_budgets=derive)

    async def _submit(
        self,
        dependencies: tuple[Dependency, ...],
        targets: Sequence[Dependency],
        budget: Optional[Budget],
        trace_id: Optional[str] = None,
    ) -> list[BatchItem]:
        """Queue queries for the batching loop and await their items.

        The single choke point for budgets: whatever the request asked
        for is clamped into the server's ceiling before it is queued.
        Also the single choke point for *admission*: a draining server
        refuses with 503, a backlogged one sheds with 429 — atomically
        for all of a request's targets (no event-loop yield between the
        capacity check and the puts), so a batch is admitted whole or
        not at all.
        """
        assert self._queue is not None
        if self._stopping:
            raise _Rejected(
                503, "server is draining", self.RETRY_AFTER_SECONDS
            )
        if self._queue.qsize() + len(targets) > self.max_queue:
            self.stats.shed += 1
            self._shed_metric.inc()
            raise _Rejected(
                429,
                f"admission queue is full "
                f"({self._queue.qsize()}/{self.max_queue} queued)",
                self.RETRY_AFTER_SECONDS,
            )
        derive = budget is None
        budget = self._effective_budget(budget)
        loop = asyncio.get_running_loop()
        futures: list["asyncio.Future[BatchItem]"] = []
        for target in targets:
            future: "asyncio.Future[BatchItem]" = loop.create_future()
            futures.append(future)
            # put_nowait: the queue object is unbounded (the capacity
            # check above is the bound), and not yielding keeps the
            # check-then-put sequence atomic on the event loop.
            self._queue.put_nowait(
                _QueuedQuery(
                    dependencies, target, budget, future, trace_id, derive
                )
            )
        self.stats.queries += len(futures)
        return list(await asyncio.gather(*futures))

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        try:
            await self._handle_connection_inner(reader, writer)
        finally:
            self._connections -= 1

    async def _handle_connection_inner(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        headers: dict[str, str] = {}
        try:
            response = await self._respond(reader)
            if len(response) == 3:
                status, payload, headers = response
            else:
                status, payload = response
        except asyncio.CancelledError:
            writer.close()
            raise
        except _DropConnection:
            # Injected fault: hang up without a response so clients'
            # connection-error handling gets exercised for real.
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()
            return
        except (asyncio.IncompleteReadError, ConnectionError):
            status, payload = 400, {"error": "malformed HTTP request"}
        except asyncio.TimeoutError:
            status, payload = 400, {"error": "request read timed out"}
        except Exception as error:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"internal error: {error}"}
        if status >= 400:
            self.stats.http_errors += 1
            self._http_errors_metric.inc()
        if isinstance(payload, _TextResponse):
            content_type = payload.content_type
            body = payload.body.encode("utf-8")
        elif isinstance(payload, dict) and (
            "outcome" in payload or "items" in payload
        ):
            # Verdict bodies can carry multi-megabyte certificates:
            # serialize those off the loop. Small payloads (healthz,
            # stats, errors) dump inline — the executor hop would cost
            # more than the dumps call.
            content_type = "application/json"
            body = await asyncio.get_running_loop().run_in_executor(
                None,
                lambda: json.dumps(payload, separators=(",", ":")).encode(
                    "utf-8"
                ),
            )
        else:
            content_type = "application/json"
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        head = (
            f"HTTP/1.1 {status} {http.client.responses.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Union[tuple[str, str, bytes], tuple[int, Json]]:
        """Parse one request; (method, path, body) or an error response.

        Everything here is protocol parsing, so a ValueError (including
        the one readline raises for an over-limit request/header line)
        is the client's fault — answered 400, never 500.
        """
        try:
            return await self._parse_request(reader)
        except (ValueError, asyncio.LimitOverrunError):
            return 400, {"error": "malformed HTTP request"}

    async def _parse_request(
        self, reader: asyncio.StreamReader
    ) -> Union[tuple[str, str, bytes], tuple[int, Json]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            header = name.strip().lower()
            if header == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": f"bad content-length {value.strip()!r}"}
            elif header == "transfer-encoding":
                # Without this check a chunked body would silently parse
                # as empty and earn a misleading JSON error.
                return 400, {
                    "error": "Transfer-Encoding is not supported; "
                    "send Content-Length"
                }
        if content_length < 0:
            return 400, {"error": f"bad content-length {content_length}"}
        if content_length > MAX_BODY_BYTES:
            # Drain the declared body before answering: closing with
            # unread bytes in flight usually RSTs the connection and the
            # client never sees the 413. The outer read deadline bounds
            # how long a huge drain may take.
            remaining = content_length
            while remaining > 0:
                chunk = await reader.read(min(remaining, 1 << 20))
                if not chunk:
                    break
                remaining -= len(chunk)
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )
        return method, path, body

    async def _respond(self, reader: asyncio.StreamReader) -> tuple:
        """(status, payload) or (status, payload, extra-headers)."""
        # Counted before any parsing, so error responses can never
        # outnumber requests in /v1/stats.
        self.stats.requests += 1
        # Only the *read* is deadlined — an idle or trickling connection
        # must not hold a handler task and socket forever. Routing (which
        # legitimately waits on chases) stays unbounded.
        request = await asyncio.wait_for(
            self._read_request(reader), self.read_timeout
        )
        if isinstance(request[0], int):
            return request  # an error response from the parser
        method, path, body = request
        try:
            return await self._route(method, path, body)
        except _BadRequest as error:
            return 400, {"error": str(error)}
        except _Rejected as error:
            return (
                error.status,
                {"error": str(error), "retry_after": error.retry_after},
                {"Retry-After": str(error.retry_after)},
            )
        except (CodecError, json.JSONDecodeError) as error:
            return 400, {"error": f"bad payload: {error}"}

    @staticmethod
    def _route_label(path: str) -> str:
        """A bounded route label for the requests counter.

        Client-chosen strings (trace IDs, arbitrary paths) must never
        become label values — unbounded label cardinality is a metrics
        memory leak.
        """
        if path.startswith("/v1/trace/"):
            return "/v1/trace"
        if path.startswith("/v1/models/"):
            # Model IDs are client-visible strings: collapse them, but
            # keep the action suffix (facts/query) distinguishable.
            if path.endswith("/facts"):
                return "/v1/models/facts"
            if path.endswith("/query"):
                return "/v1/models/query"
            return "/v1/models/id"
        if path in (
            "/healthz",
            "/readyz",
            "/v1/stats",
            "/v1/implies",
            "/v1/batch",
            "/v1/models",
            "/metrics",
        ):
            return path
        return "other"

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, Union[Json, _TextResponse]]:
        path, _, query_string = path.partition("?")
        params = urllib.parse.parse_qs(query_string)
        debug = params.get("debug", ["0"])[-1] not in ("", "0", "false")
        self._http_requests.labels(route=self._route_label(path)).inc()
        if faults.fire("drop_conn", path):
            raise _DropConnection()
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {
                "status": "ok",
                "uptime_seconds": time.monotonic() - self.started_at,
            }
        if path == "/readyz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return self._readyz()
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self._stats_payload()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, _TextResponse(self.service.metrics.render_prometheus())
        if path.startswith("/v1/trace/"):
            if method != "GET":
                return 405, {"error": "use GET"}
            trace_id = path[len("/v1/trace/") :]
            trace = self.service.traces.get(trace_id)
            if trace is None:
                return 404, {
                    "error": f"no trace {trace_id!r} (expired or never ran?)"
                }
            return 200, trace.to_json()
        if path in ("/v1/implies", "/v1/batch") and faults.fire("shed", path):
            # Injected overload: take exactly the real shed path so the
            # chaos suite exercises the 429 contract without needing to
            # actually wedge the queue.
            self.stats.shed += 1
            self._shed_metric.inc()
            raise _Rejected(
                429,
                "admission queue is full (injected)",
                self.RETRY_AFTER_SECONDS,
            )
        if path == "/v1/implies":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._implies(body, debug=debug)
        if path == "/v1/batch":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._batch(body, debug=debug)
        if path == "/v1/models":
            if method == "GET":
                return 200, {
                    "models": self.models.list_models(),
                    "max_models": self.models.max_models,
                    "evictions": self.models.evictions,
                }
            if method == "POST":
                return await self._models_register(body)
            return 405, {"error": "use GET or POST"}
        if path.startswith("/v1/models/"):
            model_id, _, action = path[len("/v1/models/") :].partition("/")
            if not model_id:
                return 404, {"error": "missing model id"}
            return await self._models_dispatch(method, model_id, action, body)
        return 404, {"error": f"no route for {method} {path}"}

    def _readyz(self) -> tuple:
        """``GET /readyz``: can this instance usefully take traffic now?

        Distinct from ``/healthz`` (liveness: the process is up and the
        event loop turns): readiness goes 503 while the serving loop is
        not yet running and — crucially — during :meth:`stop`'s drain,
        so rotation out of a load-balancer pool happens before the
        socket disappears. Backpressure is *not* a readiness state:
        a full queue sheds individual requests with 429 instead of
        flipping the whole instance unready.
        """
        if self._stopping:
            return (
                503,
                {"status": "draining"},
                {"Retry-After": str(self.RETRY_AFTER_SECONDS)},
            )
        if self._batcher is None or self._queue is None:
            return (
                503,
                {"status": "starting"},
                {"Retry-After": str(self.RETRY_AFTER_SECONDS)},
            )
        return 200, {
            "status": "ready",
            "queued": self._queue.qsize(),
            "max_queue": self.max_queue,
        }

    def _stats_payload(self) -> Json:
        cache = self.service.cache
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            # asdict: a counter added to ServerStats shows up here (and
            # in monitoring) automatically.
            "server": dataclasses.asdict(self.stats),
            "cache": {
                "size": len(cache),
                "maxsize": cache.maxsize,
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "stale_unknown": cache.stats.stale,
                "evictions": cache.stats.evictions,
                "load_evictions": cache.stats.load_evictions,
            },
            "batching": {
                "window_seconds": self.batch_window,
                "max_batch": self.max_batch,
                "workers": self.service.workers,
                "default_budget": budget_to_json(self.default_budget),
                "queued": self._queue.qsize() if self._queue else 0,
                "max_queue": self.max_queue,
            },
            "models": {
                "active": len(self.models),
                "max_models": self.models.max_models,
                "evictions": self.models.evictions,
            },
            # Which join backend this process (and, by construction, its
            # worker pools) resolved — see repro.kernel.backend.
            "engines": join_backend_info(),
            # The full registry snapshot, JSON-shaped: everything
            # ``GET /metrics`` exposes, for clients that already speak
            # this wire format (``repro stats`` renders it).
            "metrics": self.service.metrics.snapshot().to_json(),
        }

    def _effective_budget(self, requested: Optional[Budget]) -> Budget:
        """The request's budget clamped into the server's ceiling."""
        if requested is None:
            return self.default_budget
        return budget_meet(requested, self.default_budget)

    @staticmethod
    def _decode_common(
        body: bytes,
    ) -> tuple[dict, tuple[Dependency, ...], Optional[Budget], bool, str]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except UnicodeDecodeError as error:
            raise _BadRequest(f"body is not UTF-8: {error}") from error
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        raw_dependencies = payload.get("dependencies", [])
        if not isinstance(raw_dependencies, list):
            raise _BadRequest("'dependencies' must be a list")
        dependencies = tuple(
            dependency_from_json(entry) for entry in raw_dependencies
        )
        budget = (
            budget_from_json(payload["budget"]) if "budget" in payload else None
        )
        include_certificates = bool(payload.get("certificates", True))
        trace_id = payload.get("trace_id")
        if trace_id is None:
            trace_id = new_trace_id()
        elif (
            not isinstance(trace_id, str)
            or not trace_id
            or len(trace_id) > 64
        ):
            raise _BadRequest(
                "'trace_id' must be a non-empty string of at most 64 chars"
            )
        return payload, dependencies, budget, include_certificates, trace_id

    async def _decode_request(self, body: bytes, parser):
        """Run a body parser inline, or on the executor for big bodies.

        Mirrors the encode side: a 64 MB ``/v1/batch`` parse must not
        stall every other connection behind its ``json.loads``.
        """
        if len(body) <= INLINE_DECODE_BYTES:
            return parser(body)
        return await asyncio.get_running_loop().run_in_executor(
            None, parser, body
        )

    def _parse_implies(self, body: bytes):
        payload, dependencies, budget, certificates, trace_id = (
            self._decode_common(body)
        )
        if "target" not in payload:
            raise _BadRequest("'target' is required")
        return (
            dependencies,
            dependency_from_json(payload["target"]),
            budget,
            certificates,
            trace_id,
        )

    def _parse_batch(self, body: bytes):
        payload, dependencies, budget, certificates, trace_id = (
            self._decode_common(body)
        )
        raw_targets = payload.get("targets")
        if not isinstance(raw_targets, list) or not raw_targets:
            raise _BadRequest("'targets' must be a non-empty list")
        targets = [dependency_from_json(entry) for entry in raw_targets]
        return dependencies, targets, budget, certificates, trace_id

    def _trace_payload(self, trace_id: str) -> Optional[Json]:
        """The stored trace for ``trace_id``, JSON-shaped (None if gone).

        A request larger than ``max_batch`` can span several service
        runs; the buffer keeps the newest run's view under this ID.
        """
        trace = self.service.traces.get(trace_id)
        return trace.to_json() if trace is not None else None

    async def _implies(
        self, body: bytes, *, debug: bool = False
    ) -> tuple[int, Json]:
        dependencies, target, budget, certificates, trace_id = (
            await self._decode_request(body, self._parse_implies)
        )
        items = await self._submit(dependencies, [target], budget, trace_id)
        # Certificate payloads can dwarf the verdict: encode off the
        # event loop so other connections keep being served meanwhile.
        payload = await asyncio.get_running_loop().run_in_executor(
            None, _item_payload, items[0], certificates
        )
        payload["trace_id"] = trace_id
        if debug:
            payload["trace"] = self._trace_payload(trace_id)
        return 200, payload

    async def _batch(
        self, body: bytes, *, debug: bool = False
    ) -> tuple[int, Json]:
        dependencies, targets, budget, certificates, trace_id = (
            await self._decode_request(body, self._parse_batch)
        )
        items = await self._submit(dependencies, targets, budget, trace_id)
        encoded = await asyncio.get_running_loop().run_in_executor(
            None,
            lambda: [_item_payload(item, certificates) for item in items],
        )
        payload: Json = {
            "items": encoded,
            "trace_id": trace_id,
            "stats": {
                "submitted": len(items),
                "from_cache": sum(1 for item in items if item.from_cache),
                "deduplicated": sum(1 for item in items if item.deduplicated),
            },
        }
        if debug:
            payload["trace"] = self._trace_payload(trace_id)
        return 200, payload

    # ------------------------------------------------------------------
    # Maintained models (/v1/models)
    # ------------------------------------------------------------------

    @staticmethod
    def _json_object(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except UnicodeDecodeError as error:
            raise _BadRequest(f"body is not UTF-8: {error}") from error
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    @staticmethod
    def _model_404(model_id: str) -> tuple[int, Json]:
        return 404, {
            "error": f"no model {model_id!r} (dropped, evicted or never "
            "registered?)"
        }

    async def _model_call(self, fn):
        """Run one model-store operation on the executor.

        Maintenance chases and core computations are real work — they
        must not run on the event loop. Library errors (arity
        mismatches, malformed programs) are the client's fault, so they
        surface as 400s; a missing model's KeyError propagates for the
        caller's 404.
        """
        try:
            return await asyncio.get_running_loop().run_in_executor(None, fn)
        except ReproError as error:
            raise _BadRequest(str(error)) from error

    def _parse_model_register(self, body: bytes):
        payload = self._json_object(body)
        if "schema" not in payload:
            raise _BadRequest("'schema' is required")
        schema = schema_from_json(payload["schema"])
        raw_dependencies = payload.get("dependencies", [])
        if not isinstance(raw_dependencies, list):
            raise _BadRequest("'dependencies' must be a list")
        dependencies = tuple(
            dependency_from_json(entry) for entry in raw_dependencies
        )
        rows = rows_from_json(payload.get("rows", []))
        budget = (
            budget_from_json(payload["budget"]) if "budget" in payload else None
        )
        return schema, dependencies, rows, budget

    async def _models_register(self, body: bytes) -> tuple[int, Json]:
        schema, dependencies, rows, budget = await self._decode_request(
            body, self._parse_model_register
        )
        model_id, report = await self._model_call(
            lambda: self.models.register(
                schema, dependencies, rows, budget=budget
            )
        )
        return 200, {
            "model_id": model_id,
            "report": report.to_json(),
            "model": self.models.info(model_id),
        }

    async def _models_dispatch(
        self, method: str, model_id: str, action: str, body: bytes
    ) -> tuple[int, Json]:
        if action == "":
            if method == "GET":
                try:
                    return 200, self.models.info(model_id)
                except KeyError:
                    return self._model_404(model_id)
            if method == "DELETE":
                if not self.models.drop(model_id):
                    return self._model_404(model_id)
                return 200, {"model_id": model_id, "deleted": True}
            return 405, {"error": "use GET or DELETE"}
        if action == "facts":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._models_facts(model_id, body)
        if action == "query":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._models_query(model_id, body)
        return 404, {
            "error": f"no route for {method} /v1/models/<id>/{action}"
        }

    def _parse_model_facts(self, body: bytes):
        payload = self._json_object(body)
        insert = rows_from_json(payload.get("insert", []))
        delete = rows_from_json(payload.get("delete", []))
        if not insert and not delete:
            raise _BadRequest("'insert' and/or 'delete' rows are required")
        return insert, delete

    async def _models_facts(
        self, model_id: str, body: bytes
    ) -> tuple[int, Json]:
        insert, delete = await self._decode_request(
            body, self._parse_model_facts
        )
        try:
            reports = await self._model_call(
                lambda: self.models.apply(
                    model_id, insert=insert, delete=delete
                )
            )
        except KeyError:
            return self._model_404(model_id)
        return 200, {
            "model_id": model_id,
            "reports": [report.to_json() for report in reports],
            "model": self.models.info(model_id),
        }

    def _parse_model_query(self, body: bytes):
        payload = self._json_object(body)
        has_query = "query" in payload
        has_target = "target" in payload
        if has_query == has_target:
            raise _BadRequest(
                "send exactly one of 'query' (a conjunctive query) or "
                "'target' (a dependency)"
            )
        if has_query:
            return cq_from_json(payload["query"]), None
        return None, dependency_from_json(payload["target"])

    async def _models_query(
        self, model_id: str, body: bytes
    ) -> tuple[int, Json]:
        query, target = await self._decode_request(
            body, self._parse_model_query
        )
        try:
            if query is not None:
                answers = await self._model_call(
                    lambda: self.models.answer(model_id, query)
                )
                return 200, {
                    "model_id": model_id,
                    "answers": rows_to_json(answers),
                    "count": len(answers),
                }
            implied = await self._model_call(
                lambda: self.models.implies(model_id, target)
            )
        except KeyError:
            return self._model_404(model_id)
        return 200, {"model_id": model_id, "implied": implied}


class ServerThread:
    """Host an :class:`InferenceServer` on a daemon thread.

    For tests and benchmarks that want a real HTTP server inside the
    current process::

        with ServerThread(InferenceService(), port=0) as handle:
            client = ServiceClient(handle.base_url)
            ...

    ``port=0`` binds an ephemeral port; :attr:`base_url` reports the one
    actually bound. :meth:`stop` tears the whole stack down, the
    service's worker pool included.
    """

    def __init__(self, service: Optional[InferenceService] = None, **server_kwargs):
        server_kwargs.setdefault("port", 0)
        self.server = InferenceServer(service, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        # Fork the worker pool from the calling thread, before the
        # server thread exists — warm_up's contract (fork away from
        # threaded context) would be unsatisfiable afterwards.
        self.server.service.warm_up()
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None or not self._ready.is_set():
            # Failed to come up (port taken, thread wedged): signal the
            # thread down — a slow start must not finish later and serve
            # with no stop handle — then drop the workers just forked.
            self.stop()
            self.server.service.close()
            if self._startup_error is not None:
                raise self._startup_error
            raise RuntimeError("server thread failed to start in time")
        return self

    def stop(self) -> None:
        exited = True
        if self._loop is not None and self._stop_event is not None:
            loop, stop_event = self._loop, self._stop_event
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            exited = not self._thread.is_alive()
            self._thread = None
        # The harness owns the whole lifecycle: shut the service's
        # worker pool down too, or every ServerThread with workers > 0
        # would leak its forked processes (close() is idempotent, so a
        # caller-owned service may still be closed again outside). Only
        # once the server thread is really gone, though — closing a pool
        # under a batch still draining on the orphaned executor would
        # break that batch and block here behind it.
        if exited:
            self.server.service.close()
        else:  # pragma: no cover - requires a wedged batch
            warnings.warn(
                "ServerThread: server thread still draining a batch after "
                "30s; leaving its worker pool open (close the service "
                "yourself once the batch finishes)",
                ResourceWarning,
                stacklevel=2,
            )

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - startup failures
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

"""The service's metric families, registered in one place.

Every layer of the serving pipeline (facade, scheduler, cache, HTTP
server) instruments itself through a :class:`ServiceInstruments` built
over one shared :class:`~repro.obs.metrics.MetricsRegistry` —
registration is idempotent, so each layer constructs its own view
without coordination and they all land on the same families. Keeping
the names, help strings and bucket choices here is what makes the
README's metric table and ``GET /metrics`` agree by construction.

Stage naming: ``repro_stage_seconds{stage=...}`` is the one histogram
family every pipeline stage reports into — ``canonicalize`` (hashing a
query), ``cache_lookup`` (verdict-cache probe), ``dedup`` (fingerprint
grouping), ``queue_wait`` (a payload waiting for a free worker),
``chase`` (one chase dispatch, wire round-trip included for pooled
runs), ``record`` (writing verdicts back to the cache) and ``verify``
(optional replay-verification of PROVED traces).
"""

from __future__ import annotations

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
    log_buckets,
)

#: Derived chase budgets span from tens of steps (tiny certified sets)
#: to the polynomial blowups of high-rank weakly acyclic programs; the
#: standard SIZE_BUCKETS top out at 256 and would flatten them all into
#: +Inf.
DERIVED_BUDGET_BUCKETS = log_buckets(10.0, 1e12)

#: Every stage reported into ``repro_stage_seconds``; children are
#: pre-created so a scrape lists the full pipeline even before traffic.
STAGES = (
    "canonicalize",
    "cache_lookup",
    "dedup",
    "queue_wait",
    "chase",
    "record",
    "verify",
)


class ServiceInstruments:
    """All serving-pipeline metric families on one registry."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.stage_seconds = registry.histogram(
            "repro_stage_seconds",
            "Per-stage pipeline latency in seconds",
            labels=("stage",),
            buckets=LATENCY_BUCKETS,
        )
        for stage in STAGES:
            self.stage_seconds.labels(stage=stage)
        self.queries = registry.counter(
            "repro_queries_total", "Queries submitted to the service"
        )
        self.batches = registry.counter(
            "repro_batches_total", "InferenceService.run calls"
        )
        self.cache_hits = registry.counter(
            "repro_cache_hits_total", "Queries answered from the verdict cache"
        )
        self.deduplicated = registry.counter(
            "repro_dedup_total",
            "Queries answered by another query's chase in the same batch",
        )
        self.executed = registry.counter(
            "repro_executed_total", "Deduplicated query groups actually chased"
        )
        self.batch_size = registry.histogram(
            "repro_batch_queries",
            "Queries per InferenceService.run call",
            buckets=SIZE_BUCKETS,
        )
        self.dedup_group_size = registry.histogram(
            "repro_dedup_group_size",
            "Structurally identical queries folded into one chase",
            buckets=SIZE_BUCKETS,
        )
        self.chase_run_seconds = registry.histogram(
            "repro_chase_run_seconds",
            "Wall seconds of one chase dispatch, by variant and verdict",
            labels=("variant", "verdict"),
            buckets=LATENCY_BUCKETS,
        )
        self.chase_steps = registry.counter(
            "repro_chase_steps_total",
            "Trigger firings reported by finished chases",
        )
        self.chase_rows = registry.counter(
            "repro_chase_rows_total",
            "Rows inserted by finished chases",
        )
        self.race_wins = registry.counter(
            "repro_race_wins_total",
            "Raced slots decided, by winning chase variant",
            labels=("variant",),
        )
        self.race_skipped = registry.counter(
            "repro_race_skipped_total",
            "Raced dispatches skipped because their slot was already decided",
        )
        self.start_reuses = registry.counter(
            "repro_start_reuses_total",
            "Race arms that reused a shared frozen start",
        )
        self.pool_restarts = registry.counter(
            "repro_pool_restarts_total",
            "Worker pools discarded after a BrokenProcessPool",
        )
        self.fault_pool_restarts = registry.counter(
            "repro_fault_pool_restarts_total",
            "Worker pools rebuilt in place after a crash, batch kept alive",
        )
        self.fault_redispatched = registry.counter(
            "repro_fault_redispatched_total",
            "Undecided payloads re-dispatched after a worker crash",
        )
        self.fault_quarantined = registry.counter(
            "repro_fault_quarantined_total",
            "Payloads quarantined (FAILED) after repeatedly crashing workers",
        )
        self.fault_shed = registry.counter(
            "repro_fault_shed_total",
            "Requests shed with 429 because the admission queue was full",
        )
        self.cache_torn_lines = registry.counter(
            "repro_cache_torn_lines_total",
            "Torn or malformed JSON lines skipped while loading the disk cache",
        )
        self.checkpoint_resumes = registry.counter(
            "repro_checkpoint_resumes_total",
            "UNKNOWN retries resumed from a cached chase checkpoint",
        )
        self.checkpoints_stored = registry.counter(
            "repro_checkpoints_stored_total",
            "Chase checkpoints written next to UNKNOWN cache entries",
        )
        self.proof_verifications = registry.counter(
            "repro_proof_verifications_total",
            "PROVED traces replay-verified before being served",
        )
        self.analysis_certified = registry.counter(
            "repro_analysis_certified_total",
            "Executed query groups whose premise set carried a termination certificate",
        )
        self.analysis_uncertified = registry.counter(
            "repro_analysis_uncertified_total",
            "Executed query groups the static analyzer could not certify",
        )
        self.analysis_pruned = registry.counter(
            "repro_analysis_pruned_total",
            "Dependencies dropped by goal-directed pruning across executed groups",
        )
        self.analysis_derived_budget_steps = registry.histogram(
            "repro_analysis_derived_budget_steps",
            "Analyzer-derived max chase steps for certified, budget-free queries",
            buckets=DERIVED_BUDGET_BUCKETS,
        )
        self.cache_compactions = registry.counter(
            "repro_cache_compactions_total",
            "Disk-tier compactions run by ResultCache.close",
        )
        self.cache_compaction_seconds = registry.histogram(
            "repro_cache_compaction_seconds",
            "Wall seconds per disk-tier compaction",
            buckets=LATENCY_BUCKETS,
        )
        self.join_backend = registry.gauge(
            "repro_join_backend",
            "Resolved join backend (info gauge: 1 on the active backend's label)",
            labels=("backend",),
        )
        from repro.kernel.backend import resolve_join_backend

        active = resolve_join_backend()
        for backend in ("native", "python"):
            self.join_backend.labels(backend=backend).set(
                1.0 if backend == active else 0.0
            )

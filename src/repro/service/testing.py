"""Harness utilities for driving a real ``repro serve`` subprocess.

Shared by the CI smoke script and benchmark E12 (and usable from any
test that wants a server with its own interpreter — and GIL — rather
than the in-process :class:`~repro.service.server.ServerThread`). The
startup-banner contract lives here in one place: ``repro serve`` prints
``listening on http://<host>:<port>`` as its first stdout line.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Optional

#: What `repro serve` prints once the socket is bound.
_BANNER = re.compile(r"http://[\d.]+:\d+")


class ServeSubprocess:
    """One ``repro serve`` child process on an ephemeral port.

    Boots ``python -m repro serve --port 0 <extra_args>`` with ``src/``
    on the child's ``PYTHONPATH``, blocks until the listening banner
    appears, and exposes :attr:`base_url`. Use as a context manager for
    teardown::

        with ServeSubprocess("--window-ms", "5") as server:
            client = ServiceClient(server.base_url)
    """

    def __init__(
        self,
        *extra_args: str,
        src_dir: Optional[Path] = None,
        startup_timeout: float = 60.0,
    ):
        src = str(
            src_dir
            if src_dir is not None
            else Path(__file__).resolve().parents[2]
        )
        environment = dict(os.environ)
        environment["PYTHONPATH"] = (
            src + os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else src
        )
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=environment,
        )
        # A drain thread owns stdout for the child's whole life: it
        # scans *successive* lines for the banner (warnings or other
        # pre-banner noise must not fail the boot), keeps consuming
        # afterwards so a chatty child can never block on a full pipe,
        # and pre-banner output is retained so a crash-on-boot fails
        # fast with the child's traceback instead of a blind timeout.
        self.banner = ""
        self.base_url = ""
        self._pre_banner: list[str] = []
        self._banner_seen = threading.Event()
        self._reader = threading.Thread(target=self._drain_stdout, daemon=True)
        self._reader.start()
        deadline = time.monotonic() + startup_timeout
        while not self._banner_seen.wait(timeout=0.05):
            if self.process.poll() is not None:
                self._reader.join(timeout=5)
                break
            if time.monotonic() >= deadline:
                break
        if not self._banner_seen.is_set():
            output = "".join(self._pre_banner).strip()
            exit_code = self.process.poll()
            self.stop()
            raise RuntimeError(
                "repro serve did not start "
                + (
                    f"(exited {exit_code})"
                    if exit_code is not None
                    else f"(no banner within {startup_timeout}s)"
                )
                + (f"; output:\n{output}" if output else "")
            )

    def _drain_stdout(self) -> None:
        for line in self.process.stdout:
            if not self._banner_seen.is_set():
                match = _BANNER.search(line)
                if match is not None:
                    self.banner = line
                    self.base_url = match.group(0)
                    self._banner_seen.set()
                else:
                    self._pre_banner.append(line)
            # post-banner output is discarded, never left to fill the pipe

    def stop(self) -> None:
        """Terminate the child (escalating to kill if it lingers)."""
        self.process.terminate()
        try:
            self.process.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            self.process.kill()
            self.process.wait(timeout=10)

    def __enter__(self) -> "ServeSubprocess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

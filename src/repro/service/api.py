"""The batch inference service facade.

:class:`InferenceService` turns many ``D ⊨ d`` questions into one
pipeline: canonical-hash every query, answer what the cache already
knows, deduplicate the rest (structurally identical queries chase once),
and dispatch the misses to the scheduler — serially or across a worker
pool, optionally racing chase variants.

Usage::

    service = InferenceService(workers=4)
    report = service.run_batch(dependencies, targets, budget=Budget())
    for item in report.items:
        print(item.target, item.outcome.status, item.from_cache)
    print(report.stats.describe())

Results come back aligned with submission order. A cache or dedup hit
returns the outcome of the *structurally equal* query actually executed:
same verdict and equally valid certificates (implication is invariant
under variable renaming), though the certificate's variable names are
those of the executed representative.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant
from repro.chase.implication import InferenceOutcome
from repro.dependencies.canonical import premise_key, query_fingerprint
from repro.dependencies.classify import Dependency
from repro.service.cache import ResultCache
from repro.service.scheduler import (
    RACING_VARIANTS,
    PoolRun,
    QueryTask,
    WorkerPool,
    divide_budget,
    serial_run,
)


@dataclass
class BatchItem:
    """One answered query, in submission order."""

    index: int
    target: Dependency
    fingerprint: str
    outcome: InferenceOutcome
    from_cache: bool = False
    deduplicated: bool = False


@dataclass
class BatchStats:
    """What one :meth:`InferenceService.run` actually did."""

    submitted: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    executed: int = 0
    #: Raced-variant dispatches never run because their slot was already
    #: decided by another variant when their turn came.
    skipped: int = 0
    #: Race arms that reused a shared frozen start (instance + intern
    #: table + compiled goal plan) instead of rebuilding it per arm.
    start_reuses: int = 0
    wall_seconds: float = 0.0

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        return (
            f"{self.submitted} queries: {self.cache_hits} cache hit(s), "
            f"{self.deduplicated} deduplicated, {self.executed} executed, "
            f"{self.skipped} raced dispatch(es) skipped, "
            f"{self.start_reuses} start rebuild(s) avoided "
            f"in {self.wall_seconds:.3f}s"
        )


@dataclass
class BatchReport:
    """Everything one batch produced."""

    items: list[BatchItem]
    stats: BatchStats

    @property
    def outcomes(self) -> list[InferenceOutcome]:
        """Just the outcomes, aligned with submission order."""
        return [item.outcome for item in self.items]


@dataclass
class _Pending:
    index: int
    dependencies: tuple[Dependency, ...]
    target: Dependency
    fingerprint: str


class InferenceService:
    """Batch ``D ⊨ d`` solving with dedup, caching and a worker pool.

    * ``cache`` — a :class:`~repro.service.cache.ResultCache`; a private
      in-memory one is created when omitted. Passing a disk-backed cache
      makes verdicts survive the process.
    * ``workers`` — 0 runs misses in-process (serial); ``n >= 1`` uses a
      persistent pool of ``n`` processes, forked on the first batch and
      reused by every later one (``close()`` — or using the service as a
      context manager — shuts it down).
    * ``race_variants`` — dispatch each miss under both the STANDARD and
      SEMI_NAIVE chase and keep the first decisive verdict.
    * ``record_trace`` — keep replayable proof traces (on by default; the
      cache stores them, so leave it on unless outcomes are throwaway).
    * ``share_budget`` — treat the budget handed to :meth:`run` as a
      *whole-batch* bound, divided evenly across every chase dispatched
      (cache misses times raced variants; cache hits are free), instead
      of the default per-query bound.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        workers: int = 0,
        variant: ChaseVariant = ChaseVariant.STANDARD,
        race_variants: bool = False,
        record_trace: bool = True,
        share_budget: bool = False,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.variants: tuple[ChaseVariant, ...] = (
            RACING_VARIANTS if race_variants else (variant,)
        )
        self.record_trace = record_trace
        self.share_budget = share_budget
        self._pending: list[_Pending] = []
        self._worker_pool: Optional[WorkerPool] = None
        # Premise sets repeat across a batch (run_batch shares one for
        # every target); memoize their canonical keys so hashing is
        # O(premises + targets), not O(premises x targets). Bounded LRU:
        # long-lived callers (the HTTP server) see many distinct premise
        # sets over their lifetime.
        self._premise_keys: "OrderedDict[tuple[Dependency, ...], tuple]" = (
            OrderedDict()
        )

    #: How many distinct premise tuples the canonical-key memo retains.
    PREMISE_MEMO_SIZE = 128

    def _premise_key(self, dependencies: tuple[Dependency, ...]) -> tuple:
        key = self._premise_keys.get(dependencies)
        if key is not None:
            self._premise_keys.move_to_end(dependencies)
            return key
        key = premise_key(dependencies)
        self._premise_keys[dependencies] = key
        while len(self._premise_keys) > self.PREMISE_MEMO_SIZE:
            self._premise_keys.popitem(last=False)
        return key

    def pool(self) -> Optional[WorkerPool]:
        """The persistent worker pool (created on first use; None when
        ``workers == 0``)."""
        if self.workers == 0:
            return None
        if self._worker_pool is None:
            self._worker_pool = WorkerPool(self.workers)
        return self._worker_pool

    def warm_up(self) -> "InferenceService":
        """Fork the worker processes now rather than on the first batch.

        Long-lived callers that dispatch from non-main threads (the HTTP
        server runs batches on an executor thread) should warm up from
        the main thread first.
        """
        pool = self.pool()
        if pool is not None:
            pool.start()
        return self

    def close(self) -> None:
        """Shut down the worker pool and close the cache.

        ``ResultCache.close`` compacts an oversized disk tier (a no-op
        for memory-only caches) and leaves the cache usable, so closing
        a service that shares its cache *object* with others is safe.
        Distinct processes sharing one cache *file* serialize their
        writes through the store's advisory lock where the platform
        provides one (see :class:`~repro.service.cache.JsonLinesStore`).
        """
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
        self.cache.close()

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def discard_pending(self) -> int:
        """Drop queued-but-unrun queries; returns how many were dropped.

        For callers that manage submission transactionally (the HTTP
        server): a submit() that failed partway must not leave orphans
        whose answers would misalign with a later batch's.
        """
        dropped = len(self._pending)
        self._pending.clear()
        return dropped

    def submit(
        self, dependencies: Sequence[Dependency], target: Dependency
    ) -> str:
        """Enqueue one query; returns its canonical fingerprint."""
        shared = tuple(dependencies)
        fingerprint = query_fingerprint(
            shared, target, premises=self._premise_key(shared)
        )
        self._pending.append(
            _Pending(
                index=len(self._pending),
                dependencies=shared,
                target=target,
                fingerprint=fingerprint,
            )
        )
        return fingerprint

    def run(self, budget: Optional[Budget] = None) -> BatchReport:
        """Answer every pending query; clears the queue."""
        budget = budget if budget is not None else Budget()
        started = time.perf_counter()
        pending, self._pending = self._pending, []
        stats = BatchStats(submitted=len(pending))
        items: list[Optional[BatchItem]] = [None] * len(pending)
        variant_values = tuple(variant.value for variant in self.variants)

        # Cache pass: serve what is already known, group the rest by
        # fingerprint so structurally identical queries chase once. In
        # share-budget mode UNKNOWN staleness is judged against the
        # pessimistic division (as if every pending query missed): a
        # cached run was given at least that much work, so identical
        # re-runs hit instead of eternally re-chasing their UNKNOWNs.
        lookup_budget = (
            divide_budget(budget, len(pending) * len(self.variants))
            if self.share_budget and pending
            else budget
        )
        groups: dict[str, list[_Pending]] = {}
        for query in pending:
            entry = self.cache.lookup(
                query.fingerprint,
                lookup_budget,
                require_trace=self.record_trace,
                variants=variant_values,
            )
            if entry is not None:
                stats.cache_hits += 1
                items[query.index] = BatchItem(
                    index=query.index,
                    target=query.target,
                    fingerprint=query.fingerprint,
                    outcome=entry.outcome(),
                    from_cache=True,
                )
                continue
            groups.setdefault(query.fingerprint, []).append(query)

        # Execute one representative per group, serially or on the pool.
        tasks = []
        representatives: list[tuple[str, list[_Pending]]] = []
        for slot, (fingerprint, members) in enumerate(sorted(groups.items())):
            representative = members[0]
            tasks.append(
                QueryTask(
                    slot=slot,
                    dependencies=representative.dependencies,
                    target=representative.target,
                )
            )
            representatives.append((fingerprint, members))
        # With share_budget the batch budget is split across every chase
        # actually dispatched — misses times variants, so racing cannot
        # overspend the whole-batch bound. The divided budget is also what
        # gets recorded (an UNKNOWN is only conclusive for the work its
        # chase was given).
        per_query = (
            divide_budget(budget, len(tasks) * len(self.variants))
            if self.share_budget and tasks
            else budget
        )
        if not tasks:
            run = PoolRun()
        elif self.workers == 0:
            run = serial_run(tasks, per_query, self.variants, self.record_trace)
        else:
            # The pool persists across run() calls: batch N+1 reuses the
            # worker processes batch N forked.
            run = self.pool().run(
                tasks, per_query, self.variants, self.record_trace
            )
        outcomes = run.outcomes
        stats.executed = len(tasks)
        stats.skipped = run.skipped
        stats.start_reuses = run.start_reuses

        for slot, (fingerprint, members) in enumerate(representatives):
            outcome = outcomes[slot]
            self.cache.record(
                fingerprint,
                outcome,
                per_query,
                traced=self.record_trace,
                variants=variant_values,
            )
            for position, query in enumerate(members):
                if position > 0:
                    stats.deduplicated += 1
                items[query.index] = BatchItem(
                    index=query.index,
                    target=query.target,
                    fingerprint=fingerprint,
                    outcome=outcome,
                    deduplicated=position > 0,
                )

        stats.wall_seconds = time.perf_counter() - started
        answered: list[BatchItem] = []
        for item in items:
            if item is None:  # every slot is a cache hit or a group member
                raise RuntimeError("batch bookkeeping left a query unanswered")
            answered.append(item)
        return BatchReport(items=answered, stats=stats)

    def run_batch(
        self,
        dependencies: Sequence[Dependency],
        targets: Sequence[Dependency],
        budget: Optional[Budget] = None,
    ) -> BatchReport:
        """Submit every ``dependencies ⊨ target`` pair and run the batch.

        The parallel, cached, deduplicating counterpart of
        :func:`repro.chase.implication.implies_all`: outcome statuses
        agree query-for-query.
        """
        shared = tuple(dependencies)
        for target in targets:
            self.submit(shared, target)
        return self.run(budget)

"""The batch inference service facade.

:class:`InferenceService` turns many ``D ⊨ d`` questions into one
pipeline: canonical-hash every query, answer what the cache already
knows, deduplicate the rest (structurally identical queries chase once),
and dispatch the misses to the scheduler — serially or across a worker
pool, optionally racing chase variants.

Usage::

    service = InferenceService(workers=4)
    report = service.run_batch(dependencies, targets, budget=Budget())
    for item in report.items:
        print(item.target, item.outcome.status, item.from_cache)
    print(report.stats.describe())

Results come back aligned with submission order. A cache or dedup hit
returns the outcome of the *structurally equal* query actually executed:
same verdict and equally valid certificates (implication is invariant
under variable renaming), though the certificate's variable names are
those of the executed representative.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.checkpoint import resume_implies
from repro.chase.engine import ChaseVariant, replay
from repro.chase.implication import (
    InferenceOutcome,
    InferenceStatus,
    conclusion_satisfied,
)
from repro.chase.maintain import (
    MaintainedModel,
    MaintainInstruments,
    MaintenanceReport,
)
from repro.dependencies.canonical import premise_key, query_fingerprint
from repro.dependencies.classify import Dependency
from repro.errors import ReproError
from repro.io.json_codec import (
    CodecError,
    checkpoint_from_json,
    encode_checkpoint,
)
from repro.obs.metrics import MetricsRegistry, Stopwatch
from repro.obs.trace import RunTrace, Span, TraceBuffer, new_trace_id
from repro.service.cache import ResultCache, budget_meet
from repro.service.instruments import ServiceInstruments
from repro.service.scheduler import (
    RACING_VARIANTS,
    PoolRun,
    QueryTask,
    WorkerPool,
    divide_budget,
    serial_run,
)


class ProofVerificationError(ReproError):
    """A chase-produced PROVED trace failed its replay verification."""


@dataclass
class BatchItem:
    """One answered query, in submission order."""

    index: int
    target: Dependency
    fingerprint: str
    outcome: InferenceOutcome
    from_cache: bool = False
    deduplicated: bool = False


@dataclass
class BatchStats:
    """What one :meth:`InferenceService.run` actually did."""

    submitted: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    executed: int = 0
    #: Raced-variant dispatches never run because their slot was already
    #: decided by another variant when their turn came.
    skipped: int = 0
    #: Race arms that reused a shared frozen start (instance + intern
    #: table + compiled goal plan) instead of rebuilding it per arm.
    start_reuses: int = 0
    #: Stale-UNKNOWN retries answered by resuming a cached chase
    #: checkpoint instead of re-chasing from row zero.
    resumed: int = 0
    #: Queries answered FAILED (quarantined payloads, exhausted restart
    #: budget) — operational failures, never cached, never verdicts.
    failed: int = 0
    wall_seconds: float = 0.0
    #: Wall seconds spent inside chase dispatches (summed per dispatch,
    #: so racing and parallelism can push this above ``wall_seconds``).
    #: Distinct from ``wall_seconds``, which also covers hashing, cache
    #: traffic and scheduling.
    chase_seconds: float = 0.0

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        extras = ""
        if self.resumed:
            extras += f", {self.resumed} resumed from checkpoint"
        if self.failed:
            extras += f", {self.failed} failed"
        return (
            f"{self.submitted} queries: {self.cache_hits} cache hit(s), "
            f"{self.deduplicated} deduplicated, {self.executed} executed, "
            f"{self.skipped} raced dispatch(es) skipped, "
            f"{self.start_reuses} start rebuild(s) avoided"
            f"{extras} "
            f"in {self.wall_seconds:.3f}s "
            f"({self.chase_seconds:.3f}s chasing)"
        )


@dataclass
class BatchReport:
    """Everything one batch produced."""

    items: list[BatchItem]
    stats: BatchStats
    #: The run-level trace ID: queries submitted without an explicit
    #: ``trace_id`` are recorded under this one (see
    #: :attr:`InferenceService.traces`). Empty for a report that
    #: answered nothing.
    trace_id: str = ""

    @property
    def outcomes(self) -> list[InferenceOutcome]:
        """Just the outcomes, aligned with submission order."""
        return [item.outcome for item in self.items]


@dataclass
class _Pending:
    index: int
    dependencies: tuple[Dependency, ...]
    target: Dependency
    fingerprint: str
    trace_id: Optional[str] = None
    #: Seconds spent canonical-hashing this query at submit time.
    canon_seconds: float = 0.0


class InferenceService:
    """Batch ``D ⊨ d`` solving with dedup, caching and a worker pool.

    * ``cache`` — a :class:`~repro.service.cache.ResultCache`; a private
      in-memory one is created when omitted. Passing a disk-backed cache
      makes verdicts survive the process.
    * ``workers`` — 0 runs misses in-process (serial); ``n >= 1`` uses a
      persistent pool of ``n`` processes, forked on the first batch and
      reused by every later one (``close()`` — or using the service as a
      context manager — shuts it down).
    * ``race_variants`` — dispatch each miss under both the STANDARD and
      SEMI_NAIVE chase and keep the first decisive verdict.
    * ``record_trace`` — keep replayable proof traces (on by default; the
      cache stores them, so leave it on unless outcomes are throwaway).
    * ``share_budget`` — treat the budget handed to :meth:`run` as a
      *whole-batch* bound, divided evenly across every chase dispatched
      (cache misses times raced variants; cache hits are free), instead
      of the default per-query bound.
    * ``metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry`
      every pipeline stage reports into; a private one is created when
      omitted. Pass a shared registry to aggregate several services
      onto one ``/metrics`` surface.
    * ``verify_proofs`` — replay-verify the trace of every freshly
      chased PROVED outcome (step-by-step validity plus conclusion
      derivation) before recording or serving it; a failure raises
      :class:`ProofVerificationError`. Off by default — it re-does a
      bounded version of the chase's work — but it is what gives the
      ``verify`` stage of ``repro_stage_seconds`` real semantics.
    * ``checkpoints`` — store suspended-chase checkpoints next to
      UNKNOWN cache entries and *resume* them when a retry arrives with
      a budget the entry does not cover, instead of re-chasing from row
      zero (on by default; capture and resume are limited to
      single-variant runs — a resumed chase only replays the variant it
      suspended, so claiming it for a race would be unsound).
    * ``trace_capacity`` — how many recent run traces :attr:`traces`
      retains for ``GET /v1/trace/<id>``.
    * ``max_restarts`` — how many in-place worker-pool rebuilds one
      batch may consume after worker crashes before its remaining
      undecided queries are answered FAILED (crash containment lives in
      :meth:`~repro.service.scheduler.WorkerPool.run`; this is its
      retry budget).
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        *,
        workers: int = 0,
        variant: ChaseVariant = ChaseVariant.STANDARD,
        race_variants: bool = False,
        record_trace: bool = True,
        share_budget: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        verify_proofs: bool = False,
        checkpoints: bool = True,
        trace_capacity: int = 256,
        max_restarts: int = 3,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.max_restarts = max_restarts
        self.variants: tuple[ChaseVariant, ...] = (
            RACING_VARIANTS if race_variants else (variant,)
        )
        self.record_trace = record_trace
        self.share_budget = share_budget
        self.verify_proofs = verify_proofs
        self.checkpoints = checkpoints
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.traces = TraceBuffer(trace_capacity)
        self._instruments = ServiceInstruments(self.metrics)
        self.cache.bind_metrics(self.metrics)
        self._pending: list[_Pending] = []
        self._worker_pool: Optional[WorkerPool] = None
        # Premise sets repeat across a batch (run_batch shares one for
        # every target); memoize their canonical keys so hashing is
        # O(premises + targets), not O(premises x targets). Bounded LRU:
        # long-lived callers (the HTTP server) see many distinct premise
        # sets over their lifetime.
        self._premise_keys: "OrderedDict[tuple[Dependency, ...], tuple]" = (
            OrderedDict()
        )

    #: How many distinct premise tuples the canonical-key memo retains.
    PREMISE_MEMO_SIZE = 128

    def _premise_key(self, dependencies: tuple[Dependency, ...]) -> tuple:
        key = self._premise_keys.get(dependencies)
        if key is not None:
            self._premise_keys.move_to_end(dependencies)
            return key
        key = premise_key(dependencies)
        self._premise_keys[dependencies] = key
        while len(self._premise_keys) > self.PREMISE_MEMO_SIZE:
            self._premise_keys.popitem(last=False)
        return key

    def pool(self) -> Optional[WorkerPool]:
        """The persistent worker pool (created on first use; None when
        ``workers == 0``)."""
        if self.workers == 0:
            return None
        if self._worker_pool is None:
            self._worker_pool = WorkerPool(
                self.workers,
                metrics=self.metrics,
                max_restarts=self.max_restarts,
            )
        return self._worker_pool

    def warm_up(self) -> "InferenceService":
        """Fork the worker processes now rather than on the first batch.

        Long-lived callers that dispatch from non-main threads (the HTTP
        server runs batches on an executor thread) should warm up from
        the main thread first.
        """
        pool = self.pool()
        if pool is not None:
            pool.start()
        return self

    def close(self) -> None:
        """Shut down the worker pool and close the cache.

        ``ResultCache.close`` compacts an oversized disk tier (a no-op
        for memory-only caches) and leaves the cache usable, so closing
        a service that shares its cache *object* with others is safe.
        Distinct processes sharing one cache *file* serialize their
        writes through the store's advisory lock where the platform
        provides one (see :class:`~repro.service.cache.JsonLinesStore`).
        """
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
        self.cache.close()

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def discard_pending(self) -> int:
        """Drop queued-but-unrun queries; returns how many were dropped.

        For callers that manage submission transactionally (the HTTP
        server): a submit() that failed partway must not leave orphans
        whose answers would misalign with a later batch's.
        """
        dropped = len(self._pending)
        self._pending.clear()
        return dropped

    def submit(
        self,
        dependencies: Sequence[Dependency],
        target: Dependency,
        *,
        trace_id: Optional[str] = None,
    ) -> str:
        """Enqueue one query; returns its canonical fingerprint.

        ``trace_id`` tags the query for run tracing: after the batch
        runs, ``self.traces.get(trace_id)`` returns this query's view of
        the run. Untagged queries land under the report's run-level ID.
        """
        shared = tuple(dependencies)
        canon_started = time.perf_counter()
        fingerprint = query_fingerprint(
            shared, target, premises=self._premise_key(shared)
        )
        canon_seconds = time.perf_counter() - canon_started
        self._instruments.stage_seconds.labels(stage="canonicalize").observe(
            canon_seconds
        )
        self._pending.append(
            _Pending(
                index=len(self._pending),
                dependencies=shared,
                target=target,
                fingerprint=fingerprint,
                trace_id=trace_id,
                canon_seconds=canon_seconds,
            )
        )
        return fingerprint

    def _verify_proof(self, outcome: InferenceOutcome) -> bool:
        """Replay-verify one PROVED outcome's trace; False when N/A.

        Freezes the target independently (freezing is deterministic),
        replays the recorded trace with per-step verification, and
        checks the final instance derives the frozen conclusion —
        exactly what an untrusting client would do with the
        certificate. Raises :class:`ProofVerificationError` (or the
        replay's own ``VerificationError``) on a bad trace.
        """
        if not outcome.proved or outcome.chase_result is None:
            return False
        verify_started = time.perf_counter()
        start, frozen = outcome.target.freeze()
        final = replay(start, outcome.chase_result.steps, verify=True)
        satisfied = conclusion_satisfied(final, outcome.target, frozen)
        self._instruments.stage_seconds.labels(stage="verify").observe(
            time.perf_counter() - verify_started
        )
        self._instruments.proof_verifications.inc()
        if not satisfied:
            raise ProofVerificationError(
                "replayed trace does not derive the conclusion of "
                f"{outcome.target!r}"
            )
        return True

    @property
    def _capture_checkpoints(self) -> bool:
        """Capture/resume only for single-variant runs (see ctor doc)."""
        return self.checkpoints and len(self.variants) == 1

    def _resume_from_checkpoint(
        self, fingerprint: str, budget: Budget
    ) -> Optional[tuple[InferenceOutcome, float]]:
        """Resume a stale UNKNOWN's suspended chase under ``budget``.

        Returns ``(outcome, seconds)`` when the cache held a usable
        checkpoint, None otherwise (no checkpoint, undecodable payload,
        or a checkpoint that cannot rebuild — all of which simply fall
        back to a from-scratch chase). The resumed run charges the
        checkpoint's prior steps/rows/time against ``budget``, so its
        verdict matches an uninterrupted run under the same budget.
        """
        if not self._capture_checkpoints:
            return None
        payload = self.cache.checkpoint_for(fingerprint)
        if payload is None:
            return None
        try:
            checkpoint = checkpoint_from_json(payload)
        except CodecError:
            return None
        resume_started = time.perf_counter()
        try:
            outcome = resume_implies(
                checkpoint, budget=budget, record_trace=self.record_trace
            )
        except (ValueError, ReproError):
            return None
        seconds = time.perf_counter() - resume_started
        instruments = self._instruments
        instruments.checkpoint_resumes.inc()
        instruments.stage_seconds.labels(stage="chase").observe(seconds)
        instruments.chase_run_seconds.labels(
            variant=self.variants[0].value, verdict=outcome.status.value
        ).observe(seconds)
        if outcome.chase_result is not None:
            chase_stats = outcome.chase_result.stats
            if chase_stats is not None:
                # The outcome's stats are cumulative (prior + resumed);
                # the work counters want only what this run added.
                instruments.chase_steps.inc(
                    max(0, chase_stats.steps - checkpoint.steps)
                )
                instruments.chase_rows.inc(
                    max(0, chase_stats.rows_added - checkpoint.rows_added)
                )
        return outcome, seconds

    def run(
        self,
        budget: Optional[Budget] = None,
        *,
        derive_budgets: bool = False,
    ) -> BatchReport:
        """Answer every pending query; clears the queue.

        Every stage lands in :attr:`metrics`
        (``repro_stage_seconds{stage=...}`` and friends), and one
        :class:`~repro.obs.trace.RunTrace` per distinct trace ID is
        stored in :attr:`traces` — under the report's run-level
        :attr:`~BatchReport.trace_id` for untagged queries.

        ``derive_budgets`` marks this batch as having no caller-chosen
        budget: queries whose premise set the static analyzer certifies
        (:mod:`repro.analysis`) then chase to fixpoint under the
        analyzer-derived bound and answer decisively instead of
        UNKNOWN. Off by default so an explicit budget — starvation
        tests, checkpoint flows — behaves exactly as before.
        """
        budget = budget if budget is not None else Budget()
        instruments = self._instruments
        started = time.perf_counter()
        started_at = time.time()
        pending, self._pending = self._pending, []
        stats = BatchStats(submitted=len(pending))
        items: list[Optional[BatchItem]] = [None] * len(pending)
        variant_values = tuple(variant.value for variant in self.variants)
        run_trace_id = new_trace_id()
        spans: list[Span] = []
        #: Per-query trace rows, indexed by submission order.
        query_rows: list[dict] = [{} for _ in pending]

        instruments.batches.inc()
        instruments.queries.inc(len(pending))
        instruments.batch_size.observe(len(pending))
        if pending:
            # Canonicalization happened at submit time; surface its total
            # here so the trace timeline covers the whole pipeline.
            spans.append(
                Span(
                    "canonicalize",
                    sum(query.canon_seconds for query in pending),
                    {"queries": len(pending)},
                )
            )

        # Cache pass: serve what is already known, group the rest by
        # fingerprint so structurally identical queries chase once. In
        # share-budget mode UNKNOWN staleness is judged against the
        # pessimistic division (as if every pending query missed): a
        # cached run was given at least that much work, so identical
        # re-runs hit instead of eternally re-chasing their UNKNOWNs.
        watch = Stopwatch()
        lookup_budget = (
            divide_budget(budget, len(pending) * len(self.variants))
            if self.share_budget and pending
            else budget
        )
        lookup_stage = instruments.stage_seconds.labels(stage="cache_lookup")
        groups: dict[str, list[_Pending]] = {}
        for query in pending:
            lookup_started = time.perf_counter()
            entry = self.cache.lookup(
                query.fingerprint,
                lookup_budget,
                require_trace=self.record_trace,
                variants=variant_values,
            )
            lookup_stage.observe(time.perf_counter() - lookup_started)
            if entry is not None and derive_budgets:
                # A budget-free query over a certified set can chase to
                # a decisive verdict; a cached UNKNOWN (recorded under
                # some explicit budget) must not preempt that.
                if entry.outcome().status is InferenceStatus.UNKNOWN:
                    entry = None
            if entry is not None:
                stats.cache_hits += 1
                outcome = entry.outcome()
                items[query.index] = BatchItem(
                    index=query.index,
                    target=query.target,
                    fingerprint=query.fingerprint,
                    outcome=outcome,
                    from_cache=True,
                )
                query_rows[query.index] = {
                    "index": query.index,
                    "fingerprint": query.fingerprint,
                    "status": outcome.status.value,
                    "source": "cache",
                }
                continue
            groups.setdefault(query.fingerprint, []).append(query)
        instruments.cache_hits.inc(stats.cache_hits)
        if pending:
            spans.append(
                Span(
                    "cache_lookup",
                    watch.split(),
                    {"lookups": len(pending), "hits": stats.cache_hits},
                )
            )

        # Resume pass: a stale UNKNOWN whose entry carries a suspended
        # chase is continued under the requested budget instead of
        # re-chased from row zero. Judged against the same pessimistic
        # lookup budget as the cache pass, and recorded back exactly as
        # a from-scratch chase under that budget would be (with a fresh
        # chained checkpoint if the new budget also ran out).
        resume_seconds = 0.0
        # A derive batch skips checkpoint resume: certified sets chase
        # straight to fixpoint, and uncertified ones re-chase under the
        # batch budget exactly as a non-derive miss would after the
        # resume found nothing.
        for fingerprint in [] if derive_budgets else list(groups):
            hit = self._resume_from_checkpoint(fingerprint, lookup_budget)
            if hit is None:
                continue
            outcome, seconds = hit
            members = groups.pop(fingerprint)
            stats.resumed += 1
            stats.chase_seconds += seconds
            resume_seconds += seconds
            steps = (
                outcome.chase_result.steps
                if outcome.chase_result is not None
                else []
            )
            if self.verify_proofs and outcome.proved and steps:
                self._verify_proof(outcome)
            next_checkpoint = encode_checkpoint(outcome)
            self.cache.record(
                fingerprint,
                outcome,
                lookup_budget,
                # A resumed run records a replayable trace only when the
                # checkpoint carried the prior steps; don't claim one
                # for a PROVED outcome that cannot replay.
                traced=self.record_trace
                and (not outcome.proved or bool(steps)),
                variants=variant_values,
                checkpoint=next_checkpoint,
            )
            if next_checkpoint is not None:
                instruments.checkpoints_stored.inc()
            for position, query in enumerate(members):
                if position > 0:
                    stats.deduplicated += 1
                items[query.index] = BatchItem(
                    index=query.index,
                    target=query.target,
                    fingerprint=fingerprint,
                    outcome=outcome,
                    deduplicated=position > 0,
                )
                query_rows[query.index] = {
                    "index": query.index,
                    "fingerprint": fingerprint,
                    "status": outcome.status.value,
                    "source": "dedup" if position > 0 else "resume",
                }
        if stats.resumed:
            spans.append(
                Span(
                    "resume",
                    resume_seconds,
                    {"resumed": stats.resumed},
                )
            )

        # Execute one representative per group, serially or on the pool.
        tasks = []
        representatives: list[tuple[str, list[_Pending]]] = []
        for slot, (fingerprint, members) in enumerate(sorted(groups.items())):
            representative = members[0]
            tasks.append(
                QueryTask(
                    slot=slot,
                    dependencies=representative.dependencies,
                    target=representative.target,
                    derive=derive_budgets,
                )
            )
            representatives.append((fingerprint, members))
            instruments.dedup_group_size.observe(len(members))
        dedup_seconds = watch.split()
        instruments.stage_seconds.labels(stage="dedup").observe(dedup_seconds)
        if groups:
            spans.append(
                Span(
                    "dedup",
                    dedup_seconds,
                    {
                        "groups": len(tasks),
                        "folded": len(pending) - stats.cache_hits - len(tasks),
                    },
                )
            )
        # With share_budget the batch budget is split across every chase
        # actually dispatched — misses times variants, so racing cannot
        # overspend the whole-batch bound. The divided budget is also what
        # gets recorded (an UNKNOWN is only conclusive for the work its
        # chase was given).
        per_query = (
            divide_budget(budget, len(tasks) * len(self.variants))
            if self.share_budget and tasks
            else budget
        )
        if not tasks:
            run = PoolRun()
        elif self.workers == 0:
            run = serial_run(
                tasks,
                per_query,
                self.variants,
                self.record_trace,
                metrics=self.metrics,
                capture_checkpoints=self._capture_checkpoints,
            )
        else:
            # The pool persists across run() calls: batch N+1 reuses the
            # worker processes batch N forked.
            run = self.pool().run(
                tasks,
                per_query,
                self.variants,
                self.record_trace,
                capture_checkpoints=self._capture_checkpoints,
            )
        outcomes = run.outcomes
        stats.executed = len(tasks)
        stats.skipped = run.skipped
        stats.start_reuses = run.start_reuses
        stats.chase_seconds = run.chase_seconds
        instruments.executed.inc(len(tasks))
        instruments.race_skipped.inc(run.skipped)
        instruments.start_reuses.inc(run.start_reuses)
        if tasks:
            spans.append(
                Span(
                    "dispatch",
                    watch.split(),
                    {
                        "executed": len(tasks),
                        "skipped": run.skipped,
                        "chase_seconds": round(run.chase_seconds, 6),
                        "workers": self.workers,
                    },
                )
            )

        if self.verify_proofs and tasks:
            verified = sum(
                self._verify_proof(outcomes[slot]) for slot in range(len(tasks))
            )
            spans.append(
                Span("verify", watch.split(), {"proofs_verified": verified})
            )

        record_stage = instruments.stage_seconds.labels(stage="record")
        record_seconds = 0.0
        for slot, (fingerprint, members) in enumerate(representatives):
            outcome = outcomes[slot]
            record_started = time.perf_counter()
            if outcome.status is InferenceStatus.FAILED:
                # An operational accident, not a verdict: caching it
                # would keep serving the accident after the fault is
                # gone. The client sees it once, structured, and retries.
                stats.failed += len(members)
            else:
                checkpoint_payload = run.checkpoints.get(slot)
                self.cache.record(
                    fingerprint,
                    outcome,
                    per_query,
                    traced=self.record_trace,
                    variants=variant_values,
                    checkpoint=checkpoint_payload,
                )
                if checkpoint_payload is not None:
                    instruments.checkpoints_stored.inc()
            elapsed = time.perf_counter() - record_started
            record_seconds += elapsed
            record_stage.observe(elapsed)
            # Static-analysis provenance travels on the outcome (it
            # survives the worker wire and UNKNOWN slimming), so one
            # executed group lands in exactly one certified bucket.
            provenance = outcome.analysis
            if isinstance(provenance, dict):
                if provenance.get("certified"):
                    instruments.analysis_certified.inc()
                    derived_steps = provenance.get("derived_max_steps")
                    if derived_steps is not None:
                        instruments.analysis_derived_budget_steps.observe(
                            float(min(int(derived_steps), 10**300))
                        )
                else:
                    instruments.analysis_uncertified.inc()
                pruned = provenance.get("pruned")
                if pruned:
                    instruments.analysis_pruned.inc(int(pruned))
            # Snapshot the chase stats once per group: ``elapsed_seconds``
            # is live wall-clock for in-process runs, and every member of
            # the group must report the identical chase.
            chase_row = None
            if outcome.chase_result is not None:
                chase_stats = outcome.chase_result.stats
                chase_row = {
                    "steps": chase_stats.steps,
                    "rows_added": chase_stats.rows_added,
                    "seconds": round(chase_stats.elapsed_seconds, 6),
                }
            for position, query in enumerate(members):
                if position > 0:
                    stats.deduplicated += 1
                items[query.index] = BatchItem(
                    index=query.index,
                    target=query.target,
                    fingerprint=fingerprint,
                    outcome=outcome,
                    deduplicated=position > 0,
                )
                row = {
                    "index": query.index,
                    "fingerprint": fingerprint,
                    "status": outcome.status.value,
                    "source": "dedup" if position > 0 else "chase",
                }
                if chase_row is not None:
                    row["chase"] = dict(chase_row)
                query_rows[query.index] = row
        instruments.deduplicated.inc(stats.deduplicated)
        if representatives:
            spans.append(
                Span("record", record_seconds, {"recorded": len(representatives)})
            )

        stats.wall_seconds = time.perf_counter() - started
        answered: list[BatchItem] = []
        for item in items:
            if item is None:  # every slot is a cache hit or a group member
                raise RuntimeError("batch bookkeeping left a query unanswered")
            answered.append(item)

        if pending:
            # One stored trace per distinct trace ID: shared batch-level
            # spans, but only that ID's per-query rows.
            batch_summary = dataclasses.asdict(stats)
            by_trace: "OrderedDict[str, list[dict]]" = OrderedDict()
            for query in pending:
                trace_id = query.trace_id or run_trace_id
                by_trace.setdefault(trace_id, []).append(
                    query_rows[query.index]
                )
            for trace_id, rows in by_trace.items():
                self.traces.put(
                    RunTrace(
                        trace_id=trace_id,
                        started_at=started_at,
                        wall_seconds=stats.wall_seconds,
                        spans=list(spans),
                        queries=rows,
                        batch=batch_summary,
                    )
                )
        return BatchReport(
            items=answered,
            stats=stats,
            trace_id=run_trace_id if pending else "",
        )

    def run_batch(
        self,
        dependencies: Sequence[Dependency],
        targets: Sequence[Dependency],
        budget: Optional[Budget] = None,
    ) -> BatchReport:
        """Submit every ``dependencies ⊨ target`` pair and run the batch.

        The parallel, cached, deduplicating counterpart of
        :func:`repro.chase.implication.implies_all`: outcome statuses
        agree query-for-query.
        """
        shared = tuple(dependencies)
        for target in targets:
            self.submit(shared, target)
        return self.run(budget)


class ModelStore:
    """Registered :class:`~repro.chase.maintain.MaintainedModel`\\ s.

    The service-layer home of maintained universal models: clients
    register a dependency program plus base facts once, then stream
    inserts/deletes and ask conjunctive-query / implication questions
    against the *maintained* chase fixpoint instead of re-chasing per
    request (``POST /v1/models`` and friends on the HTTP server).

    * Capacity is bounded (``max_models``) with LRU eviction — any
      touch (facts, query, info) refreshes a model; registration past
      capacity evicts the least recently used one. Evicted IDs answer
      404, and clients re-register (the base facts are theirs).
    * Every operation holds one lock: maintained models are stateful
      (kernel view, trigger memos, derivation records), and the HTTP
      server runs model operations on executor threads, so two requests
      against one model must serialize. Coarse by design — maintenance
      runs are budget-bounded, and one store serves one process.
    * ``metrics`` wires the :class:`~repro.chase.maintain.MaintainInstruments`
      families (operation latency, row counters, the
      ``repro_models_active`` gauge) into the same registry the rest of
      the service reports to.
    """

    def __init__(
        self,
        *,
        max_models: int = 32,
        default_budget: Optional[Budget] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_models < 1:
            raise ValueError("max_models must be positive")
        self.max_models = max_models
        self.default_budget = (
            default_budget if default_budget is not None else Budget()
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.instruments = MaintainInstruments(self.metrics)
        self._models: "OrderedDict[str, MaintainedModel]" = OrderedDict()
        self._lock = threading.RLock()
        self._next_id = itertools.count(1)
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._models)

    def register(
        self,
        schema,
        dependencies: Sequence[Dependency],
        rows: Sequence = (),
        *,
        budget: Optional[Budget] = None,
    ) -> tuple[str, "MaintenanceReport"]:
        """Create a model, chase its base facts, return (id, report).

        The requested budget is clamped into the store's default — the
        same requests-can-only-narrow policy the verdict endpoints
        apply — and becomes the model's per-maintenance-run budget.
        """
        budget = (
            budget_meet(budget, self.default_budget)
            if budget is not None
            else self.default_budget
        )
        watch = Stopwatch()
        model = MaintainedModel(
            schema,
            dependencies,
            budget=budget,
            instruments=self.instruments,
        )
        report = model.insert(rows)
        report = dataclasses.replace(
            report, op="register", elapsed_seconds=watch.elapsed()
        )
        with self._lock:
            model_id = f"m-{next(self._next_id):06d}"
            self._models[model_id] = model
            while len(self._models) > self.max_models:
                __, evicted = self._models.popitem(last=False)
                self.instruments.rows_base.dec(len(evicted.base))
                self.evictions += 1
            self.instruments.active_models.set(len(self._models))
        self.instruments.maintain_seconds.labels(op="register").observe(
            report.elapsed_seconds
        )
        return model_id, report

    def get(self, model_id: str) -> "MaintainedModel":
        """The model under ``model_id`` (LRU-touched); KeyError if gone."""
        with self._lock:
            model = self._models[model_id]
            self._models.move_to_end(model_id)
            return model

    def drop(self, model_id: str) -> bool:
        """Forget a model; True when it existed."""
        with self._lock:
            model = self._models.pop(model_id, None)
            if model is not None:
                # The gauge tracks live base facts: release this model's.
                self.instruments.rows_base.dec(len(model.base))
            self.instruments.active_models.set(len(self._models))
            return model is not None

    def apply(
        self,
        model_id: str,
        *,
        insert: Sequence = (),
        delete: Sequence = (),
    ) -> list["MaintenanceReport"]:
        """Deletes then inserts, serialized under the store lock.

        Delete-before-insert gives one ``apply`` upsert semantics: a row
        in both lists ends up present.
        """
        with self._lock:
            model = self.get(model_id)
            reports = []
            if delete:
                reports.append(model.delete(delete))
            if insert:
                reports.append(model.insert(insert))
            return reports

    def answer(self, model_id: str, query) -> set:
        """Certain answers of ``query`` on the maintained model."""
        with self._lock:
            return self.get(model_id).answer(query)

    def implies(self, model_id: str, dependency: Dependency) -> bool:
        """Does ``dependency`` hold in the maintained model's core?"""
        with self._lock:
            return self.get(model_id).implies(dependency)

    def info(self, model_id: str) -> dict:
        """A JSON-shaped summary of one model (LRU-touched)."""
        with self._lock:
            model = self.get(model_id)
            return {
                "model_id": model_id,
                "schema": list(model.schema.attributes),
                "dependencies": len(model.dependencies),
                "base_rows": len(model.base),
                "rows": len(model.instance),
                "status": model.status.value,
                "saturated": model.saturated,
            }

    def list_models(self) -> list[dict]:
        """Summaries of every registered model, oldest-touched first."""
        with self._lock:
            return [
                {
                    "model_id": model_id,
                    "schema": list(model.schema.attributes),
                    "dependencies": len(model.dependencies),
                    "base_rows": len(model.base),
                    "rows": len(model.instance),
                    "status": model.status.value,
                    "saturated": model.saturated,
                }
                for model_id, model in self._models.items()
            ]

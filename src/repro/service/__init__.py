"""Batch inference service (system S8).

Serving ``D ⊨ d`` at scale needs more than a correct solver: structurally
identical queries must be answered once, verdicts must be memoized with
certificates that remain independently checkable, and independent chases
must fan out across cores. This package layers exactly that on top of
:mod:`repro.chase`:

* :mod:`repro.service.cache` — a content-addressed verdict cache (LRU +
  optional append-only JSON-lines disk tier), keyed by the canonical
  query hashes of :mod:`repro.dependencies.canonical`;
* :mod:`repro.service.scheduler` — serial and multiprocessing execution
  with optional STANDARD-vs-SEMI_NAIVE variant racing and budget
  division;
* :mod:`repro.service.api` — the :class:`InferenceService` facade with
  ``submit()`` / ``run()`` / ``run_batch()``.

The CLI's ``batch`` command (``python -m repro batch``) is a thin wrapper
over :class:`InferenceService`.
"""

from repro.service.api import (
    BatchItem,
    BatchReport,
    BatchStats,
    InferenceService,
)
from repro.service.cache import (
    CacheEntry,
    CacheStats,
    JsonLinesStore,
    ResultCache,
    budget_covers,
)
from repro.service.scheduler import (
    QueryTask,
    RACING_VARIANTS,
    divide_budget,
    run_pool,
    run_serial,
    run_tasks,
)

__all__ = [
    "InferenceService",
    "BatchItem",
    "BatchReport",
    "BatchStats",
    "ResultCache",
    "CacheEntry",
    "CacheStats",
    "JsonLinesStore",
    "budget_covers",
    "QueryTask",
    "RACING_VARIANTS",
    "divide_budget",
    "run_serial",
    "run_pool",
    "run_tasks",
]

"""Batch inference service (system S8).

Serving ``D ⊨ d`` at scale needs more than a correct solver: structurally
identical queries must be answered once, verdicts must be memoized with
certificates that remain independently checkable, and independent chases
must fan out across cores. This package layers exactly that on top of
:mod:`repro.chase`:

* :mod:`repro.service.cache` — a content-addressed verdict cache (LRU +
  optional append-only JSON-lines disk tier), keyed by the canonical
  query hashes of :mod:`repro.dependencies.canonical`;
* :mod:`repro.service.scheduler` — serial and multiprocessing execution
  through a persistent :class:`WorkerPool` (submit/drain, raced-variant
  skipping) with optional STANDARD-vs-SEMI_NAIVE racing and budget
  division;
* :mod:`repro.service.api` — the :class:`InferenceService` facade with
  ``submit()`` / ``run()`` / ``run_batch()``;
* :mod:`repro.service.server` — a long-lived stdlib-asyncio HTTP
  front-end that micro-batches concurrent clients into shared
  :meth:`InferenceService.run` calls;
* :mod:`repro.service.client` — the synchronous :class:`ServiceClient`
  speaking the server's ``repro.io.json_codec`` wire format;
* :mod:`repro.service.instruments` — every pipeline layer's metric
  families (:mod:`repro.obs`) registered in one place, behind the
  server's ``GET /metrics`` and ``repro stats``.

The CLI's ``batch`` command (``python -m repro batch``) is a thin wrapper
over :class:`InferenceService`; ``python -m repro serve`` boots the HTTP
server.
"""

from repro.service.api import (
    BatchItem,
    BatchReport,
    BatchStats,
    InferenceService,
    ProofVerificationError,
)
from repro.service.instruments import STAGES, ServiceInstruments
from repro.service.cache import (
    CacheEntry,
    CacheStats,
    JsonLinesStore,
    ResultCache,
    budget_covers,
    budget_join,
    budget_meet,
    fold_entries,
    merge_unknown_entries,
)
from repro.service.client import (
    RemoteBatch,
    RemoteVerdict,
    RetryPolicy,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    ServiceHTTPError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.service.scheduler import (
    PoolRun,
    QueryTask,
    RACING_VARIANTS,
    WorkerPool,
    divide_budget,
    run_pool,
    run_serial,
    run_tasks,
    serial_run,
)
from repro.service.server import InferenceServer, ServerStats, ServerThread

__all__ = [
    "InferenceService",
    "BatchItem",
    "BatchReport",
    "BatchStats",
    "ResultCache",
    "CacheEntry",
    "CacheStats",
    "JsonLinesStore",
    "budget_covers",
    "budget_join",
    "budget_meet",
    "fold_entries",
    "merge_unknown_entries",
    "QueryTask",
    "PoolRun",
    "WorkerPool",
    "RACING_VARIANTS",
    "divide_budget",
    "run_serial",
    "serial_run",
    "run_pool",
    "run_tasks",
    "InferenceServer",
    "ServerStats",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceConnectionError",
    "ServiceHTTPError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "RetryPolicy",
    "RemoteVerdict",
    "RemoteBatch",
    "ProofVerificationError",
    "ServiceInstruments",
    "STAGES",
]

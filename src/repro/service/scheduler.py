"""Chase scheduling: serial execution and a persistent worker pool.

Independent ``D ⊨ d`` queries share nothing, so they parallelize
embarrassingly well. The pool ships each query to a worker as a JSON
payload (dependencies, target, budget) and gets the full outcome JSON
back — crossing the process boundary through
:mod:`repro.io.json_codec` instead of pickle keeps workers agnostic of
in-process object identity and exercises exactly the representation the
result cache stores.

**Persistent pool**: :class:`WorkerPool` owns long-lived worker
processes with a submit/drain scheduler, so callers that dispatch many
batches (the batch CLI looping over files, the HTTP server coalescing
micro-batches) pay the fork cost once, not per batch. The one-shot
:func:`run_pool` wrapper keeps the old construct-per-call API.

**Variant racing**: because the inference problem is undecidable, no
chase discipline dominates; with ``variants`` given more than one entry
the scheduler dispatches each query once per variant and keeps the first
*decisive* (PROVED/DISPROVED) verdict, falling back to an UNKNOWN only
when every variant exhausted its budget. Dispatch is variant-major
(every query's first variant before any second variant) and lazily
submitted, so raced payloads for slots that are already decided are
*skipped* rather than chased to budget exhaustion; skips are reported in
:class:`PoolRun`.

**Budget-aware division**: :func:`divide_budget` splits one global budget
fairly across ``n`` queries, for callers that want a whole-batch bound
rather than a per-query one.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import faults
from repro.chase.budget import Budget
from repro.obs.metrics import MetricsRegistry
from repro.service.instruments import ServiceInstruments
from repro.chase.engine import ChaseVariant
from repro.chase.implication import (
    FrozenStart,
    InferenceOutcome,
    InferenceStatus,
    implies,
)
from repro.dependencies.classify import Dependency
from repro.kernel.backend import resolve_join_backend, set_join_backend
from repro.kernel.joins import memoized
from repro.io.json_codec import (
    Json,
    budget_from_json,
    budget_to_json,
    dependency_from_json,
    dependency_to_json,
    encode_checkpoint,
    outcome_from_json,
    outcome_to_json,
    slim_unknown_outcome,
)

#: Default variant pair raced by ``race_variants`` mode.
RACING_VARIANTS: tuple[ChaseVariant, ...] = (
    ChaseVariant.STANDARD,
    ChaseVariant.SEMI_NAIVE,
)


def _race_kernel(
    variant: ChaseVariant, variants: Sequence[ChaseVariant]
) -> Optional[str]:
    """The chase kernel to pin for ``variant`` inside a race.

    The compiled kernel folds STANDARD and SEMI_NAIVE onto one
    delta-driven path, so racing both under the default kernel would
    chase the byte-identical run twice for zero diversity. Inside a
    race the SEMI_NAIVE arm is pinned to the legacy engine — a
    genuinely different trigger order, which is the whole point of
    racing an undecidable problem. Outside a race (one variant), None
    keeps the process default (compiled).
    """
    if len(variants) > 1 and variant is ChaseVariant.SEMI_NAIVE:
        return "legacy"
    return None


@dataclass(frozen=True)
class QueryTask:
    """One deduplicated query: a slot number plus its ``(D, d)`` pair.

    ``derive`` marks a query whose caller supplied no budget of their
    own: when the static analyzer certifies the premise set, the chase
    runs under the analyzer-derived budget (``analysis="derive"``) and
    returns a decisive verdict instead of UNKNOWN. Queries with an
    explicit caller budget keep it exactly (``analysis="auto"`` only
    annotates them).
    """

    slot: int
    dependencies: tuple[Dependency, ...]
    target: Dependency
    derive: bool = False


@dataclass
class PoolRun:
    """What one scheduler dispatch produced.

    ``outcomes`` maps each task's slot to its best verdict; ``skipped``
    counts raced-variant dispatches that were never executed because
    their slot was already decided when their turn came;
    ``start_reuses`` counts race arms that reused a shared
    :class:`~repro.chase.implication.FrozenStart` (frozen instance,
    intern table, compiled goal plan) instead of rebuilding it.
    """

    outcomes: dict[int, InferenceOutcome] = field(default_factory=dict)
    skipped: int = 0
    start_reuses: int = 0
    #: Wall seconds of the chase dispatches actually executed (summed
    #: per dispatch; racing and parallelism can make this exceed the
    #: batch's own wall time). For pooled runs each dispatch is timed
    #: parent-side, submit to completion, so the wire round-trip is
    #: included — the time a query really spent being chased for.
    chase_seconds: float = 0.0
    #: Encoded suspended-chase checkpoints for slots whose best outcome
    #: is UNKNOWN, captured only when the caller asked for them. The
    #: facade stores these next to the UNKNOWN cache entries so retries
    #: resume instead of re-chasing.
    checkpoints: dict[int, Json] = field(default_factory=dict)
    #: Worker pools rebuilt in place during this run (crash containment).
    pool_restarts: int = 0
    #: Undecided payloads re-dispatched after a worker crash.
    redispatched: int = 0
    #: Payloads quarantined after repeatedly crashing workers; their
    #: slots (unless another variant answered) hold FAILED outcomes.
    quarantined: int = 0


def divide_budget(budget: Budget, ways: int) -> Budget:
    """Split one budget evenly across ``ways`` queries (axes floor at 1)."""
    if ways < 1:
        raise ValueError("cannot divide a budget zero ways")

    def split(limit: Optional[int]) -> Optional[int]:
        return None if limit is None else max(1, limit // ways)

    return Budget(
        max_steps=split(budget.max_steps),
        max_rows=split(budget.max_rows),
        max_seconds=None if budget.max_seconds is None else budget.max_seconds / ways,
    )


def _decisive(outcome: InferenceOutcome) -> bool:
    """PROVED or DISPROVED — a real verdict about ``D |= d``.

    FAILED is *not* decisive: it reports an operational accident (a
    quarantined payload), asserts nothing about the implication, and
    must lose to any actual chase result.
    """
    return outcome.status in (
        InferenceStatus.PROVED,
        InferenceStatus.DISPROVED,
    )


def _prefer(
    current: Optional[InferenceOutcome], candidate: InferenceOutcome
) -> InferenceOutcome:
    """Keep a decisive verdict over an UNKNOWN; first decisive wins.

    FAILED ranks below everything: any chase that actually finished —
    even UNKNOWN — beats an operational failure, and a failure never
    displaces knowledge.
    """
    if current is None:
        return candidate
    if current.status is InferenceStatus.FAILED:
        return candidate
    if candidate.status is InferenceStatus.FAILED:
        return current
    if _decisive(current):
        return current
    return candidate


def _observe_dispatch(
    instruments: Optional[ServiceInstruments],
    variant_value: str,
    verdict_value: str,
    seconds: float,
    outcome: Optional[InferenceOutcome] = None,
) -> None:
    """Record one executed chase dispatch into the metric families.

    The chase kernel's own work counters (trigger firings, rows
    inserted) are surfaced from the outcome's :class:`ChaseResult`
    stats rather than re-measured — UNKNOWN outcomes that crossed the
    wire travel slim and simply contribute nothing here.
    """
    if instruments is None:
        return
    instruments.stage_seconds.labels(stage="chase").observe(seconds)
    instruments.chase_run_seconds.labels(
        variant=variant_value, verdict=verdict_value
    ).observe(seconds)
    if outcome is not None and outcome.chase_result is not None:
        stats = outcome.chase_result.stats
        if stats is not None:
            instruments.chase_steps.inc(stats.steps)
            instruments.chase_rows.inc(stats.rows_added)


def serial_run(
    tasks: Sequence[QueryTask],
    budget: Budget,
    variants: Sequence[ChaseVariant],
    record_trace: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    *,
    capture_checkpoints: bool = False,
) -> PoolRun:
    """Run every task in-process, trying variants until one is decisive.

    Variants a task never needed (it was decided earlier in the race
    order) count as skipped, mirroring the pool's accounting. Race arms
    of one task chase the *same* frozen start: a shared
    :class:`~repro.chase.implication.FrozenStart` freezes the target
    once, and each arm copies it with the intern table and compiled
    goal plan intact (``start_reuses`` counts the arms that skipped the
    rebuild). With ``metrics`` given, each dispatch lands in the
    registry's chase histograms exactly like a pooled one.
    """
    instruments = ServiceInstruments(metrics) if metrics is not None else None
    run = PoolRun()
    for task in tasks:
        best: Optional[InferenceOutcome] = None
        start = FrozenStart(task.target)
        for position, variant in enumerate(variants):
            dispatched = time.perf_counter()
            outcome = implies(
                list(task.dependencies),
                task.target,
                budget=budget,
                variant=variant,
                record_trace=record_trace,
                kernel=_race_kernel(variant, variants),
                start=start,
                checkpoint=capture_checkpoints,
                analysis="derive" if task.derive else "auto",
            )
            elapsed = time.perf_counter() - dispatched
            run.chase_seconds += elapsed
            _observe_dispatch(
                instruments,
                variant.value,
                outcome.status.value,
                elapsed,
                outcome,
            )
            best = _prefer(best, outcome)
            if _decisive(best):
                run.skipped += len(variants) - position - 1
                if instruments is not None and len(variants) > 1:
                    instruments.race_wins.labels(variant=variant.value).inc()
                break
        run.start_reuses += start.reuses
        assert best is not None
        run.outcomes[task.slot] = best
        if (
            capture_checkpoints
            and best.status is InferenceStatus.UNKNOWN
        ):
            checkpoint_payload = encode_checkpoint(best)
            if checkpoint_payload is not None:
                run.checkpoints[task.slot] = checkpoint_payload
    return run


def run_serial(
    tasks: Sequence[QueryTask],
    budget: Budget,
    variants: Sequence[ChaseVariant],
    record_trace: bool = True,
) -> dict[int, InferenceOutcome]:
    """:func:`serial_run`, returning just the slot-to-outcome mapping."""
    return serial_run(tasks, budget, variants, record_trace).outcomes


#: What crosses the process boundary: (slot, variant, pinned kernel or
#: None, premises, target, budget, record_trace, capture_checkpoint,
#: derive_budget) outbound and (slot, outcome JSON, start_reused,
#: checkpoint JSON or None) back. Premises — and, since the
#: frozen-start sharing, the target too — travel as pre-serialized
#: JSON *strings*: encoded once per distinct value, pickled cheaply per
#: payload, and — crucially — usable as worker-side memo keys so each
#: worker decodes a batch's shared premise set (and freezes each raced
#: target's start instance) once, not once per payload.
_WirePayload = tuple[int, str, Optional[str], str, str, Json, bool, bool, bool]


def _encode_payloads(
    tasks: Sequence[QueryTask],
    variants: Sequence[ChaseVariant],
    budget: Budget,
    record_trace: bool,
    capture_checkpoints: bool = False,
) -> list[_WirePayload]:
    """Encode every (task, variant) wire payload, variant-major.

    Batches typically share one premise tuple across every task, so the
    premise JSON is encoded once per distinct tuple rather than once per
    payload (which would be O(premises x tasks x variants) before any
    worker starts).

    The variant-major order (every task's first variant before any
    task's second) matters for racing: by the time a second-variant
    payload comes up for submission its slot has often been decided by
    the first variant, letting the pool skip it entirely.
    """
    budget_payload = budget_to_json(budget)
    premise_payloads: dict[tuple[Dependency, ...], str] = {}
    encoded_tasks = []
    for task in tasks:
        premises = premise_payloads.get(task.dependencies)
        if premises is None:
            premises = json.dumps(
                [
                    dependency_to_json(dependency)
                    for dependency in task.dependencies
                ],
                separators=(",", ":"),
            )
            premise_payloads[task.dependencies] = premises
        encoded_tasks.append(
            (
                task.slot,
                premises,
                json.dumps(dependency_to_json(task.target), separators=(",", ":")),
                task.derive,
            )
        )
    payloads = []
    for variant in variants:
        kernel = _race_kernel(variant, variants)
        for slot, premises, target_payload, derive in encoded_tasks:
            payloads.append(
                (
                    slot,
                    variant.value,
                    kernel,
                    premises,
                    target_payload,
                    budget_payload,
                    record_trace,
                    capture_checkpoints,
                    derive,
                )
            )
    return payloads


def _warm_worker() -> None:
    """No-op shipped to each worker so ``WorkerPool.start`` can force
    the lazily-spawning executor to actually create its processes."""


def _init_worker(fault_env: dict, join_backend: str) -> None:
    """Worker initializer: mirror the parent's fault-injection arming.

    Forkserver children inherit the environment the *forkserver* saw
    when it first launched — not the parent's current one — so fault
    points armed after the first pool in a process would silently never
    reach workers. Shipping the ``REPRO_FAULT_*`` slice explicitly at
    pool (re)start makes arming deterministic, including across the
    in-place rebuilds of crash containment.

    The join backend travels the same way, and as the parent's
    *resolved* answer rather than the raw environment: a pool can never
    run a different backend than the parent that scheduled the work
    (``REPRO_JOIN_BACKEND=auto`` resolving differently across processes
    would silently mix provenance within one batch).
    """
    for key in [k for k in os.environ if k.startswith(faults.PREFIX)]:
        del os.environ[key]
    os.environ.update(fault_env)
    set_join_backend(join_backend)


#: Worker-side memo of decoded premise tuples, keyed by their wire
#: string. One batch ships the same premise JSON in every payload; each
#: worker decodes it once, and the decoded Dependency objects then hit
#: the compiled kernel's structural plan cache instead of forcing a
#: recompile per payload. Bounded: a long-lived worker serving many
#: distinct premise sets must not grow without limit.
_PREMISE_MEMO: dict[str, list[Dependency]] = {}
_PREMISE_MEMO_MAX = 64


def _decode_premises(premises_wire: str) -> list[Dependency]:
    # memoized() evicts oldest-first, never wholesale: a worker cycling
    # through many premise sets must not periodically lose the hot ones.
    return memoized(
        _PREMISE_MEMO,
        premises_wire,
        lambda wire: [
            dependency_from_json(entry) for entry in json.loads(wire)
        ],
        _PREMISE_MEMO_MAX,
    )


#: Worker-side memo of frozen starts, keyed by the target's wire
#: string. A raced query reaches a worker once per variant with an
#: identical target payload; the memoized
#: :class:`~repro.chase.implication.FrozenStart` lets the second arm
#: reuse the first arm's frozen instance, intern table and compiled
#: goal plan. Bounded like the premise memo.
_START_MEMO: dict[str, FrozenStart] = {}
_START_MEMO_MAX = 64


def _frozen_start(target_wire: str) -> FrozenStart:
    return memoized(
        _START_MEMO,
        target_wire,
        lambda wire: FrozenStart(dependency_from_json(json.loads(wire))),
        _START_MEMO_MAX,
    )


def _execute_payload(
    payload: _WirePayload,
) -> tuple[int, Json, bool, Optional[Json]]:
    """Worker entry point: decode, chase, encode. Must stay module-level
    (and exception-free) so every start method can dispatch to it."""
    (
        slot,
        variant_value,
        kernel,
        premises_wire,
        target_wire,
        budget_payload,
        record,
        capture,
        derive,
    ) = payload
    if faults.fire("worker_kill", slot):
        # Chaos hook: die the way a segfault or the OOM killer would —
        # no exception, no cleanup, just a vanished process.
        os._exit(1)
    start = _frozen_start(target_wire)
    reuses_before = start.reuses
    outcome = implies(
        _decode_premises(premises_wire),
        start.target,
        budget=budget_from_json(budget_payload),
        variant=ChaseVariant(variant_value),
        record_trace=record,
        kernel=kernel,
        start=start,
        checkpoint=capture,
        analysis="derive" if derive else "auto",
    )
    # UNKNOWN payloads cross the process boundary slim: the exhausted
    # chase result can dwarf the chase itself on the wire. The
    # checkpoint (when captured and under the size cap) rides beside
    # the slim payload, not inside it.
    return (
        slot,
        slim_unknown_outcome(outcome_to_json(outcome)),
        start.reuses > reuses_before,
        encode_checkpoint(outcome) if capture else None,
    )


class WorkerPool:
    """A persistent worker-process pool with a submit/drain scheduler.

    Worker processes are created lazily on first use (:meth:`start`
    forces it) and reused across :meth:`run` calls until :meth:`close`,
    so repeated batches — the HTTP server's micro-batches, a CLI loop —
    amortize process startup instead of re-forking per batch. The
    backend is :class:`concurrent.futures.ProcessPoolExecutor` rather
    than ``multiprocessing.Pool`` because a killed worker (OOM,
    segfault) there surfaces as :class:`BrokenProcessPool` instead of a
    silently lost callback — a long-lived server must contain the crash,
    not wedge forever.

    **Crash containment**: a worker death breaks the whole executor and
    voids every in-flight future, but verdicts already collected are
    untouched — so :meth:`run` keeps them, rebuilds the pool in place
    (up to ``max_restarts`` times per batch) and re-dispatches only the
    still-undecided payloads. Each payload that was in flight during a
    crash collects one unit of blame; a payload blamed
    ``CRASH_LIMIT`` times is *quarantined* — its slot reports a
    structured FAILED outcome (never cached, never a verdict about
    ``D |= d``) instead of crashing the pool forever. When the restart
    budget itself runs out, every remaining undecided slot fails the
    same structured way; :meth:`run` raises only for non-crash errors.

    Submission is throttled to the worker count: a payload is handed to
    the pool only when a worker can take it, and each hand-off first
    checks whether the payload's slot was decided by an earlier result.
    Still-queued raced-variant payloads for decided slots are discarded
    (counted in :attr:`PoolRun.skipped`) instead of chasing to budget
    exhaustion.
    """

    #: In-flight crashes a single payload survives before quarantine.
    #: Two, not one: a payload sharing the pool with a genuine killer
    #: gets blamed once by collateral, and innocence means its re-run
    #: completes before a second crash can blame it again.
    CRASH_LIMIT = 2

    def __init__(
        self,
        workers: int,
        metrics: Optional[MetricsRegistry] = None,
        *,
        max_restarts: int = 3,
    ):
        if workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        if max_restarts < 0:
            raise ValueError("max_restarts cannot be negative")
        self.workers = workers
        self.max_restarts = max_restarts
        self._pool: Optional[ProcessPoolExecutor] = None
        self._instruments = (
            ServiceInstruments(metrics) if metrics is not None else None
        )

    def start(self) -> "WorkerPool":
        """Create the worker processes now (idempotent).

        ``ProcessPoolExecutor`` spawns workers lazily on first submit,
        which would silently defeat :meth:`InferenceService.warm_up`'s
        fork-before-threads contract — so this submits one no-op per
        worker and waits, forcing the processes into existence here.
        Where the platform offers it, workers come from a ``forkserver``
        context: children then fork from a dedicated single-threaded
        server process, which keeps even later re-forks (after a
        :class:`BrokenProcessPool` reset on a threaded server) safe.
        """
        if self._pool is None:
            context = (
                multiprocessing.get_context("forkserver")
                if "forkserver" in multiprocessing.get_all_start_methods()
                else None
            )
            fault_env = {
                key: value
                for key, value in os.environ.items()
                if key.startswith(faults.PREFIX)
            }
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(fault_env, resolve_join_backend()),
            )
            wait([self._pool.submit(_warm_worker) for _ in range(self.workers)])
        return self

    def close(self) -> None:
        """Shut the worker processes down (idempotent; pool restartable)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        tasks: Sequence[QueryTask],
        budget: Budget,
        variants: Sequence[ChaseVariant],
        record_trace: bool = True,
        *,
        capture_checkpoints: bool = False,
    ) -> PoolRun:
        """Fan tasks out over the workers; first decisive verdict wins.

        With several variants each query is dispatched once per variant
        in variant-major order (results arrive unordered); raced
        payloads whose slot is decided before they are submitted are
        skipped, and late-arriving raced losers are discarded. A dead
        worker is *contained*: collected verdicts survive, the pool is
        rebuilt, undecided payloads are re-dispatched, and repeat
        offenders come back as structured FAILED outcomes (see the
        class docstring) — only non-crash errors raise.
        """
        run = PoolRun()
        if not tasks:
            return run
        instruments = self._instruments
        pool = self.start()._pool
        assert pool is not None
        pending = deque(
            _encode_payloads(
                tasks, variants, budget, record_trace, capture_checkpoints
            )
        )
        decided: set[int] = set()
        failure: Optional[BaseException] = None
        # future -> (payload, submit time): the payload rides along so a
        # crash can re-dispatch exactly what was lost; payloads queue
        # from the run's start, so submit-minus-start is the queue wait.
        in_flight: dict[Future, tuple[_WirePayload, float]] = {}
        # (slot, variant) -> times that payload was in flight during a
        # crash. Blame is collective (the killer is indistinguishable
        # from its pool-mates), which is why quarantine needs
        # CRASH_LIMIT strikes rather than one.
        crash_blame: dict[tuple[int, str], int] = {}
        lost: list[_WirePayload] = []
        started = time.perf_counter()

        def fail_slot(payload: _WirePayload, reason: str) -> None:
            """Quarantine one payload: its slot answers FAILED unless
            some other variant produced a real outcome."""
            slot = payload[0]
            run.quarantined += 1
            if instruments is not None:
                instruments.fault_quarantined.inc()
            current = run.outcomes.get(slot)
            if current is not None:
                return  # any real outcome (even UNKNOWN) beats FAILED
            run.outcomes[slot] = InferenceOutcome(
                status=InferenceStatus.FAILED,
                target=dependency_from_json(json.loads(payload[4])),
                error=reason,
            )

        def contain_crash() -> bool:
            """Absorb a BrokenProcessPool: keep decided verdicts,
            rebuild the pool, requeue or quarantine the undelivered
            payloads. False when the restart budget is spent (the batch
            finishes with FAILED leftovers instead of an exception)."""
            nonlocal pool, failure
            failure = None
            suspects = lost + [payload for payload, __ in in_flight.values()]
            lost.clear()
            in_flight.clear()
            broken, self._pool = self._pool, None
            if broken is not None:
                broken.shutdown(wait=False)
            if instruments is not None:
                instruments.pool_restarts.inc()
            if run.pool_restarts >= self.max_restarts:
                for payload in suspects + list(pending):
                    if payload[0] not in decided:
                        fail_slot(
                            payload,
                            "worker pool crashed and its restart budget "
                            f"({self.max_restarts}) is exhausted",
                        )
                pending.clear()
                return False
            run.pool_restarts += 1
            if instruments is not None:
                instruments.fault_pool_restarts.inc()
            for payload in suspects:
                key = (payload[0], payload[1])
                crash_blame[key] = crash_blame.get(key, 0) + 1
                if payload[0] in decided:
                    continue  # nothing left to redo for this slot
                if crash_blame[key] >= self.CRASH_LIMIT:
                    fail_slot(
                        payload,
                        "query quarantined: it was in flight for "
                        f"{crash_blame[key]} worker-pool crashes",
                    )
                    continue
                pending.appendleft(payload)
                run.redispatched += 1
                if instruments is not None:
                    instruments.fault_redispatched.inc()
            pool = self.start()._pool
            assert pool is not None
            return True

        # In-flight is capped at exactly `workers` — a deliberate trade:
        # a prefetch margin (workers*2) would hide the ~sub-ms dispatch
        # round-trip, but every prefetched raced payload is one the
        # decided-slot check can no longer skip, and skipping a chase
        # (ms-to-budget-exhaustion) is worth far more than hiding the
        # hand-off latency.
        def refill() -> None:
            nonlocal failure
            while pending and len(in_flight) < self.workers and failure is None:
                payload = pending.popleft()
                if payload[0] in decided:
                    run.skipped += 1
                    continue
                try:
                    future = pool.submit(_execute_payload, payload)
                except BaseException as error:  # broken/closing pool
                    lost.append(payload)
                    failure = error
                    return
                now = time.perf_counter()
                in_flight[future] = (payload, now)
                if instruments is not None:
                    instruments.stage_seconds.labels(
                        stage="queue_wait"
                    ).observe(now - started)

        refill()
        while in_flight or failure is not None:
            if failure is not None:
                if isinstance(failure, BrokenProcessPool):
                    if not contain_crash():
                        break
                    refill()
                    continue
                break  # non-crash errors still raise below
            done, __ = wait(in_flight, return_when=FIRST_COMPLETED)
            drained = time.perf_counter()
            arrivals = []
            for future in done:
                payload, submitted = in_flight.pop(future)
                try:
                    arrivals.append(
                        future.result() + (payload[1], drained - submitted)
                    )
                except BaseException as error:
                    # The payload's result is gone; remember it so a
                    # crash can re-dispatch rather than drop it.
                    lost.append(payload)
                    failure = failure if failure is not None else error
            # Peek decisiveness from the raw statuses and hand the
            # freed workers their next payloads *before* the (possibly
            # heavy) outcome decodes, so workers never idle behind them.
            for slot, outcome_payload, __, __cp, variant_value, __s in arrivals:
                if (
                    isinstance(outcome_payload, dict)
                    and outcome_payload.get("status")
                    != InferenceStatus.UNKNOWN.value
                ):
                    if (
                        instruments is not None
                        and len(variants) > 1
                        and slot not in decided
                    ):
                        instruments.race_wins.labels(
                            variant=variant_value
                        ).inc()
                    decided.add(slot)
            if failure is None:
                refill()
            for (
                slot,
                outcome_payload,
                start_reused,
                checkpoint_payload,
                variant_value,
                seconds,
            ) in arrivals:
                if start_reused:
                    run.start_reuses += 1
                run.chase_seconds += seconds
                current = run.outcomes.get(slot)
                if current is not None and _decisive(current):
                    # Raced loser that was already in flight: timed, but
                    # its verdict is discarded.
                    _observe_dispatch(
                        instruments,
                        variant_value,
                        (
                            outcome_payload.get("status", "unknown")
                            if isinstance(outcome_payload, dict)
                            else "unknown"
                        ),
                        seconds,
                    )
                    continue
                outcome = _prefer(current, outcome_from_json(outcome_payload))
                _observe_dispatch(
                    instruments,
                    variant_value,
                    outcome.status.value,
                    seconds,
                    outcome,
                )
                run.outcomes[slot] = outcome
                if _decisive(outcome):
                    run.checkpoints.pop(slot, None)
                elif checkpoint_payload is not None:
                    held = run.checkpoints.get(slot)
                    if held is None or int(
                        checkpoint_payload.get("steps", 0)
                    ) > int(held.get("steps", 0)):
                        run.checkpoints[slot] = checkpoint_payload
        if failure is not None:
            # Only non-crash errors reach here (crashes are contained).
            raise failure
        return run


def run_pool(
    tasks: Sequence[QueryTask],
    budget: Budget,
    workers: int,
    variants: Sequence[ChaseVariant],
    record_trace: bool = True,
) -> dict[int, InferenceOutcome]:
    """One-shot :class:`WorkerPool` dispatch (constructs and tears down).

    A pool of one process still isolates chase memory from the caller.
    Long-lived callers should hold a :class:`WorkerPool` instead and
    reuse it across batches.
    """
    if workers < 1:
        raise ValueError("run_pool needs at least one worker")
    if not tasks:
        return {}
    with WorkerPool(workers) as pool:
        return pool.run(tasks, budget, variants, record_trace).outcomes


def run_tasks(
    tasks: Sequence[QueryTask],
    budget: Budget,
    *,
    workers: int = 0,
    variants: Sequence[ChaseVariant] = (ChaseVariant.STANDARD,),
    record_trace: bool = True,
) -> dict[int, InferenceOutcome]:
    """Dispatch tasks serially (``workers == 0``) or through the pool."""
    if workers == 0:
        return run_serial(tasks, budget, variants, record_trace)
    return run_pool(tasks, budget, workers, variants, record_trace)

"""Chase scheduling: serial execution and a multiprocessing worker pool.

Independent ``D ⊨ d`` queries share nothing, so they parallelize
embarrassingly well. The pool ships each query to a worker as a JSON
payload (dependencies, target, budget) and gets the full outcome JSON
back — crossing the process boundary through
:mod:`repro.io.json_codec` instead of pickle keeps workers agnostic of
in-process object identity and exercises exactly the representation the
result cache stores.

**Variant racing**: because the inference problem is undecidable, no
chase discipline dominates; with ``variants`` given more than one entry
the scheduler dispatches each query once per variant and keeps the first
*decisive* (PROVED/DISPROVED) verdict, falling back to an UNKNOWN only
when every variant exhausted its budget.

**Budget-aware division**: :func:`divide_budget` splits one global budget
fairly across ``n`` queries, for callers that want a whole-batch bound
rather than a per-query one.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.engine import ChaseVariant
from repro.chase.implication import InferenceOutcome, InferenceStatus, implies
from repro.dependencies.classify import Dependency
from repro.io.json_codec import (
    Json,
    budget_from_json,
    budget_to_json,
    dependency_from_json,
    dependency_to_json,
    outcome_from_json,
    outcome_to_json,
)

#: Default variant pair raced by ``race_variants`` mode.
RACING_VARIANTS: tuple[ChaseVariant, ...] = (
    ChaseVariant.STANDARD,
    ChaseVariant.SEMI_NAIVE,
)


@dataclass(frozen=True)
class QueryTask:
    """One deduplicated query: a slot number plus its ``(D, d)`` pair."""

    slot: int
    dependencies: tuple[Dependency, ...]
    target: Dependency


def divide_budget(budget: Budget, ways: int) -> Budget:
    """Split one budget evenly across ``ways`` queries (axes floor at 1)."""
    if ways < 1:
        raise ValueError("cannot divide a budget zero ways")

    def split(limit: Optional[int]) -> Optional[int]:
        return None if limit is None else max(1, limit // ways)

    return Budget(
        max_steps=split(budget.max_steps),
        max_rows=split(budget.max_rows),
        max_seconds=None if budget.max_seconds is None else budget.max_seconds / ways,
    )


def _decisive(outcome: InferenceOutcome) -> bool:
    return outcome.status is not InferenceStatus.UNKNOWN


def _prefer(
    current: Optional[InferenceOutcome], candidate: InferenceOutcome
) -> InferenceOutcome:
    """Keep a decisive verdict over an UNKNOWN; first decisive wins."""
    if current is None:
        return candidate
    if _decisive(current):
        return current
    return candidate


def run_serial(
    tasks: Sequence[QueryTask],
    budget: Budget,
    variants: Sequence[ChaseVariant],
    record_trace: bool = True,
) -> dict[int, InferenceOutcome]:
    """Run every task in-process, trying variants until one is decisive."""
    results: dict[int, InferenceOutcome] = {}
    for task in tasks:
        best: Optional[InferenceOutcome] = None
        for variant in variants:
            outcome = implies(
                list(task.dependencies),
                task.target,
                budget=budget,
                variant=variant,
                record_trace=record_trace,
            )
            best = _prefer(best, outcome)
            if _decisive(best):
                break
        assert best is not None
        results[task.slot] = best
    return results


#: What crosses the process boundary, both directions JSON-codec encoded.
_WirePayload = tuple[int, str, list, Json, Json, bool]


def _encode_payloads(
    tasks: Sequence[QueryTask],
    variants: Sequence[ChaseVariant],
    budget: Budget,
    record_trace: bool,
) -> list[_WirePayload]:
    """Encode every (task, variant) wire payload.

    Batches typically share one premise tuple across every task, so the
    premise JSON is encoded once per distinct tuple rather than once per
    payload (which would be O(premises x tasks x variants) before any
    worker starts).
    """
    budget_payload = budget_to_json(budget)
    premise_payloads: dict[tuple[Dependency, ...], list] = {}
    payloads = []
    for task in tasks:
        premises = premise_payloads.get(task.dependencies)
        if premises is None:
            premises = [
                dependency_to_json(dependency) for dependency in task.dependencies
            ]
            premise_payloads[task.dependencies] = premises
        target_payload = dependency_to_json(task.target)
        for variant in variants:
            payloads.append(
                (
                    task.slot,
                    variant.value,
                    premises,
                    target_payload,
                    budget_payload,
                    record_trace,
                )
            )
    return payloads


def _execute_payload(payload: _WirePayload) -> tuple[int, Json]:
    """Worker entry point: decode, chase, encode. Must stay module-level
    (and exception-free) so every start method can dispatch to it."""
    slot, variant_value, deps_payload, target_payload, budget_payload, record = payload
    outcome = implies(
        [dependency_from_json(entry) for entry in deps_payload],
        dependency_from_json(target_payload),
        budget=budget_from_json(budget_payload),
        variant=ChaseVariant(variant_value),
        record_trace=record,
    )
    return slot, outcome_to_json(outcome)


def run_pool(
    tasks: Sequence[QueryTask],
    budget: Budget,
    workers: int,
    variants: Sequence[ChaseVariant],
    record_trace: bool = True,
) -> dict[int, InferenceOutcome]:
    """Fan tasks out over ``workers`` processes; first decisive verdict wins.

    With several variants each query is dispatched once per variant
    (results arrive unordered; losers are discarded). A pool of one
    process still isolates chase memory from the caller.
    """
    if workers < 1:
        raise ValueError("run_pool needs at least one worker")
    if not tasks:
        return {}
    payloads = _encode_payloads(tasks, variants, budget, record_trace)
    results: dict[int, InferenceOutcome] = {}
    with multiprocessing.Pool(processes=workers) as pool:
        for slot, outcome_payload in pool.imap_unordered(_execute_payload, payloads):
            current = results.get(slot)
            if current is not None and _decisive(current):
                continue
            results[slot] = _prefer(current, outcome_from_json(outcome_payload))
    return results


def run_tasks(
    tasks: Sequence[QueryTask],
    budget: Budget,
    *,
    workers: int = 0,
    variants: Sequence[ChaseVariant] = (ChaseVariant.STANDARD,),
    record_trace: bool = True,
) -> dict[int, InferenceOutcome]:
    """Dispatch tasks serially (``workers == 0``) or through the pool."""
    if workers == 0:
        return run_serial(tasks, budget, variants, record_trace)
    return run_pool(tasks, budget, workers, variants, record_trace)

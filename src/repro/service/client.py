"""Synchronous HTTP client for the inference server (stdlib ``urllib``).

:class:`ServiceClient` speaks the wire format of
:mod:`repro.service.server`: requests and responses are
:mod:`repro.io.json_codec` payloads, so a verdict fetched over HTTP
decodes to the same :class:`~repro.chase.implication.InferenceOutcome`
— certificates included — that a local
:class:`~repro.service.api.InferenceService` would return, and PROVED
traces replay client-side.

Usage::

    client = ServiceClient("http://127.0.0.1:8765")
    client.health()                      # {"status": "ok", ...}
    verdict = client.implies([transitivity], target)
    verdict.status                       # InferenceStatus.PROVED
    verdict.outcome.chase_result.steps   # replayable certificate
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.implication import InferenceOutcome, InferenceStatus
from repro.dependencies.classify import Dependency
from repro.errors import ReproError
from repro.io.json_codec import (
    CodecError,
    Json,
    budget_to_json,
    cq_to_json,
    dependency_to_json,
    outcome_from_json,
    rows_from_json,
    rows_to_json,
    schema_to_json,
)


class ServiceError(ReproError):
    """The server was unreachable or answered with an HTTP error.

    Base of the client's typed error hierarchy; callers that do not
    care why a call failed keep catching this one class.
    """


class ServiceConnectionError(ServiceError):
    """No HTTP response at all: refused, reset, dropped mid-response,
    DNS failure or timeout. Always safe to retry — either the request
    never reached the server or the response never made it back (and
    the inference API is idempotent either way)."""


class ServiceHTTPError(ServiceError):
    """The server answered with a >= 400 status.

    Carries the status code, the server's JSON ``error`` detail (when
    the body had one) and any ``Retry-After`` hint, so callers can
    branch on *what* failed instead of parsing the message string.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int,
        detail: str = "",
        retry_after: Optional[int] = None,
    ):
        super().__init__(message)
        self.status = status
        self.detail = detail
        self.retry_after = retry_after


class ServiceOverloadedError(ServiceHTTPError):
    """HTTP 429: the admission queue was full and the request was shed.
    Retryable — back off (honoring :attr:`retry_after`) and resubmit."""


class ServiceUnavailableError(ServiceHTTPError):
    """HTTP 503: the server is starting or draining. Retryable against
    the same instance (it may finish starting) or a peer."""


#: Errors a retry can plausibly fix: the connection never carried a
#: verdict, or the server explicitly said "later". Anything else (400s,
#: 404s, 500s) would fail identically on resend.
RETRYABLE_ERRORS = (
    ServiceConnectionError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for :class:`ServiceClient`.

    Opt-in: clients retry nothing unless constructed with a policy.
    Attempt ``n`` (0-based) failing retryably sleeps
    ``min(max_delay, base_delay * multiplier**n)``, stretched to any
    server ``Retry-After`` hint (still capped by ``max_delay``), then
    scaled by a uniform jitter in ``[1 - jitter, 1]`` so a herd of
    shed clients does not resynchronize on the retry.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay(
        self,
        attempt: int,
        retry_after: Optional[int] = None,
        rng: Callable[[], float] = random.random,
    ) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (0-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if retry_after is not None:
            delay = min(max(delay, float(retry_after)), self.max_delay)
        return delay * (1 - self.jitter * rng())


def _typed_http_error(
    method: str, path: str, error: urllib.error.HTTPError
) -> ServiceHTTPError:
    """Wrap an HTTPError in the matching typed class, body included."""
    detail = ""
    try:
        detail = json.loads(error.read().decode("utf-8")).get("error", "")
    except (ValueError, AttributeError, OSError):
        pass
    retry_after: Optional[int] = None
    raw = error.headers.get("Retry-After") if error.headers else None
    if raw is not None:
        try:
            retry_after = int(raw)
        except ValueError:
            pass
    cls = {429: ServiceOverloadedError, 503: ServiceUnavailableError}.get(
        error.code, ServiceHTTPError
    )
    return cls(
        f"{method} {path} -> HTTP {error.code}: {detail or error.reason}",
        status=error.code,
        detail=detail,
        retry_after=retry_after,
    )


@dataclass
class RemoteVerdict:
    """One query's answer as served over HTTP."""

    status: InferenceStatus
    fingerprint: str
    from_cache: bool
    deduplicated: bool
    outcome: InferenceOutcome
    #: The trace ID this query ran under; feed it to
    #: :meth:`ServiceClient.trace` while the server still buffers it.
    trace_id: str = ""
    #: The inline run trace (``debug=True`` requests only).
    trace: Optional[dict] = None

    @staticmethod
    def from_payload(payload: Json) -> "RemoteVerdict":
        if not isinstance(payload, dict) or "outcome" not in payload:
            raise ServiceError(f"malformed verdict payload {payload!r}")
        try:
            return RemoteVerdict(
                status=InferenceStatus(payload["status"]),
                fingerprint=payload.get("fingerprint", ""),
                from_cache=bool(payload.get("from_cache", False)),
                deduplicated=bool(payload.get("deduplicated", False)),
                outcome=outcome_from_json(payload["outcome"]),
                trace_id=str(payload.get("trace_id", "")),
                trace=payload.get("trace"),
            )
        except (KeyError, ValueError, TypeError, CodecError) as error:
            raise ServiceError(
                f"malformed verdict payload: {error}"
            ) from error


@dataclass
class RemoteBatch:
    """A ``/v1/batch`` answer: verdicts in submission order plus the
    request's slice of the batch statistics."""

    items: list[RemoteVerdict]
    stats: dict
    trace_id: str = ""
    #: The inline run trace (``debug=True`` requests only).
    trace: Optional[dict] = None

    @property
    def statuses(self) -> list[InferenceStatus]:
        return [item.status for item in self.items]


class ServiceClient:
    """Blocking client for one server base URL.

    Each call is one HTTP request on a fresh connection (the server
    answers ``Connection: close``), so instances are safe to share
    across threads — the benchmark's concurrent clients do.

    Failures raise the typed hierarchy under :class:`ServiceError`:
    :class:`ServiceConnectionError` when no response arrived,
    :class:`ServiceHTTPError` (or its 429/503 subclasses
    :class:`ServiceOverloadedError` / :class:`ServiceUnavailableError`)
    when one did. Pass ``retry=RetryPolicy()`` to transparently retry
    exactly the retryable ones with exponential backoff; ``sleep`` and
    ``rng`` exist so tests can retry without wall-clock waits.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 120.0,
        *,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] = random.random,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self._sleep = sleep
        self._rng = rng
        #: Lifetime count of retry sleeps taken (observability/tests).
        self.retries = 0

    # ------------------------------------------------------------------
    # Raw HTTP
    # ------------------------------------------------------------------

    def request(self, method: str, path: str, payload: Optional[Json] = None) -> Json:
        """One JSON-in/JSON-out request; :class:`ServiceError` on failure.

        With a :class:`RetryPolicy`, retryable failures (connect
        errors, 429, 503) are retried under its backoff schedule before
        the last attempt's error propagates.
        """
        return self._with_retries(
            lambda: self._request_once(method, path, payload)
        )

    def _with_retries(self, call):
        if self.retry is None:
            return call()
        attempt = 0
        while True:
            try:
                return call()
            except RETRYABLE_ERRORS as error:
                if attempt + 1 >= self.retry.max_attempts:
                    raise
                retry_after = getattr(error, "retry_after", None)
                self.retries += 1
                self._sleep(
                    self.retry.delay(attempt, retry_after, rng=self._rng)
                )
                attempt += 1

    def _request_once(
        self, method: str, path: str, payload: Optional[Json]
    ) -> Json:
        data = (
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            if payload is not None
            else None
        )
        http_request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                http_request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise _typed_http_error(method, path, error) from error
        except urllib.error.URLError as error:
            raise ServiceConnectionError(
                f"{method} {path} failed: {error.reason}"
            ) from error
        except (http.client.HTTPException, TimeoutError, OSError) as error:
            # A connection torn down mid-response surfaces as a bare
            # HTTPException/OSError, not a URLError: same typed class,
            # so retry policies treat "dropped before" and "dropped
            # during" the response identically.
            raise ServiceConnectionError(
                f"{method} {path} failed: {error}"
            ) from error

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def ready(self) -> dict:
        """``GET /readyz``: :class:`ServiceUnavailableError` while the
        server is starting or draining."""
        return self.request("GET", "/readyz")

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self.request("GET", "/v1/stats")

    def trace(self, trace_id: str) -> dict:
        """``GET /v1/trace/<id>``: one request's stage-level run trace.

        :class:`ServiceError` (HTTP 404) once the server's bounded
        trace buffer has dropped it.
        """
        return self.request("GET", f"/v1/trace/{trace_id}")

    def metrics_text(self) -> str:
        """``GET /metrics``: the Prometheus text exposition, verbatim."""
        return self._with_retries(self._metrics_once)

    def _metrics_once(self) -> str:
        url = self.base_url + "/metrics"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise _typed_http_error("GET", "/metrics", error) from error
        except urllib.error.URLError as error:
            raise ServiceConnectionError(
                f"GET /metrics failed: {error.reason}"
            ) from error

    def implies(
        self,
        dependencies: Sequence[Dependency],
        target: Dependency,
        budget: Optional[Budget] = None,
        *,
        certificates: bool = True,
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> RemoteVerdict:
        """``POST /v1/implies``: one ``D ⊨ d`` question.

        ``trace_id`` tags the query for later ``/v1/trace`` retrieval
        (the server generates one otherwise — see the verdict's
        ``trace_id``); ``debug`` asks for the run trace inline.
        """
        payload: dict = {
            "dependencies": [dependency_to_json(d) for d in dependencies],
            "target": dependency_to_json(target),
        }
        if budget is not None:
            payload["budget"] = budget_to_json(budget)
        if not certificates:
            payload["certificates"] = False
        if trace_id is not None:
            payload["trace_id"] = trace_id
        path = "/v1/implies" + ("?debug=1" if debug else "")
        return RemoteVerdict.from_payload(self.request("POST", path, payload))

    def batch(
        self,
        dependencies: Sequence[Dependency],
        targets: Sequence[Dependency],
        budget: Optional[Budget] = None,
        *,
        certificates: bool = True,
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> RemoteBatch:
        """``POST /v1/batch``: many targets against one premise set."""
        payload: dict = {
            "dependencies": [dependency_to_json(d) for d in dependencies],
            "targets": [dependency_to_json(t) for t in targets],
        }
        if budget is not None:
            payload["budget"] = budget_to_json(budget)
        if not certificates:
            payload["certificates"] = False
        if trace_id is not None:
            payload["trace_id"] = trace_id
        path = "/v1/batch" + ("?debug=1" if debug else "")
        answer = self.request("POST", path, payload)
        if not isinstance(answer, dict) or "items" not in answer:
            raise ServiceError(f"malformed batch payload {answer!r}")
        return RemoteBatch(
            items=[RemoteVerdict.from_payload(item) for item in answer["items"]],
            stats=answer.get("stats", {}),
            trace_id=str(answer.get("trace_id", "")),
            trace=answer.get("trace"),
        )

    # ------------------------------------------------------------------
    # Maintained models (/v1/models)
    # ------------------------------------------------------------------

    def register_model(
        self,
        schema,
        dependencies: Sequence[Dependency],
        rows: Sequence = (),
        budget: Optional[Budget] = None,
    ) -> dict:
        """``POST /v1/models``: register a maintained universal model.

        Returns the server payload; ``payload["model_id"]`` addresses
        the model in every later call.
        """
        payload: dict = {
            "schema": schema_to_json(schema),
            "dependencies": [dependency_to_json(d) for d in dependencies],
            "rows": rows_to_json(rows),
        }
        if budget is not None:
            payload["budget"] = budget_to_json(budget)
        return self.request("POST", "/v1/models", payload)

    def models(self) -> dict:
        """``GET /v1/models``: summaries of every registered model."""
        return self.request("GET", "/v1/models")

    def model_info(self, model_id: str) -> dict:
        """``GET /v1/models/<id>`` (:class:`ServiceError` 404 if gone)."""
        return self.request("GET", f"/v1/models/{model_id}")

    def drop_model(self, model_id: str) -> dict:
        """``DELETE /v1/models/<id>``."""
        return self.request("DELETE", f"/v1/models/{model_id}")

    def model_facts(
        self, model_id: str, *, insert: Sequence = (), delete: Sequence = ()
    ) -> dict:
        """``POST /v1/models/<id>/facts``: stream base-fact changes.

        Deletes apply before inserts (upsert semantics); the answer
        carries one maintenance report per applied direction.
        """
        payload: dict = {}
        if insert:
            payload["insert"] = rows_to_json(insert)
        if delete:
            payload["delete"] = rows_to_json(delete)
        return self.request("POST", f"/v1/models/{model_id}/facts", payload)

    def model_query(self, model_id: str, query) -> set:
        """``POST /v1/models/<id>/query``: certain answers of a CQ.

        Decodes the answer rows back to value tuples, matching
        :meth:`~repro.chase.maintain.MaintainedModel.answer` locally.
        """
        answer = self.request(
            "POST",
            f"/v1/models/{model_id}/query",
            {"query": cq_to_json(query)},
        )
        if not isinstance(answer, dict) or "answers" not in answer:
            raise ServiceError(f"malformed query payload {answer!r}")
        try:
            return {tuple(row) for row in rows_from_json(answer["answers"])}
        except CodecError as error:
            raise ServiceError(
                f"malformed query payload: {error}"
            ) from error

    def model_implies(self, model_id: str, target: Dependency) -> bool:
        """``POST /v1/models/<id>/query`` with a dependency target."""
        answer = self.request(
            "POST",
            f"/v1/models/{model_id}/query",
            {"target": dependency_to_json(target)},
        )
        if not isinstance(answer, dict) or "implied" not in answer:
            raise ServiceError(f"malformed query payload {answer!r}")
        return bool(answer["implied"])

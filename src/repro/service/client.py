"""Synchronous HTTP client for the inference server (stdlib ``urllib``).

:class:`ServiceClient` speaks the wire format of
:mod:`repro.service.server`: requests and responses are
:mod:`repro.io.json_codec` payloads, so a verdict fetched over HTTP
decodes to the same :class:`~repro.chase.implication.InferenceOutcome`
— certificates included — that a local
:class:`~repro.service.api.InferenceService` would return, and PROVED
traces replay client-side.

Usage::

    client = ServiceClient("http://127.0.0.1:8765")
    client.health()                      # {"status": "ok", ...}
    verdict = client.implies([transitivity], target)
    verdict.status                       # InferenceStatus.PROVED
    verdict.outcome.chase_result.steps   # replayable certificate
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chase.budget import Budget
from repro.chase.implication import InferenceOutcome, InferenceStatus
from repro.dependencies.classify import Dependency
from repro.errors import ReproError
from repro.io.json_codec import (
    CodecError,
    Json,
    budget_to_json,
    cq_to_json,
    dependency_to_json,
    outcome_from_json,
    rows_from_json,
    rows_to_json,
    schema_to_json,
)


class ServiceError(ReproError):
    """The server was unreachable or answered with an HTTP error."""


@dataclass
class RemoteVerdict:
    """One query's answer as served over HTTP."""

    status: InferenceStatus
    fingerprint: str
    from_cache: bool
    deduplicated: bool
    outcome: InferenceOutcome
    #: The trace ID this query ran under; feed it to
    #: :meth:`ServiceClient.trace` while the server still buffers it.
    trace_id: str = ""
    #: The inline run trace (``debug=True`` requests only).
    trace: Optional[dict] = None

    @staticmethod
    def from_payload(payload: Json) -> "RemoteVerdict":
        if not isinstance(payload, dict) or "outcome" not in payload:
            raise ServiceError(f"malformed verdict payload {payload!r}")
        try:
            return RemoteVerdict(
                status=InferenceStatus(payload["status"]),
                fingerprint=payload.get("fingerprint", ""),
                from_cache=bool(payload.get("from_cache", False)),
                deduplicated=bool(payload.get("deduplicated", False)),
                outcome=outcome_from_json(payload["outcome"]),
                trace_id=str(payload.get("trace_id", "")),
                trace=payload.get("trace"),
            )
        except (KeyError, ValueError, TypeError, CodecError) as error:
            raise ServiceError(
                f"malformed verdict payload: {error}"
            ) from error


@dataclass
class RemoteBatch:
    """A ``/v1/batch`` answer: verdicts in submission order plus the
    request's slice of the batch statistics."""

    items: list[RemoteVerdict]
    stats: dict
    trace_id: str = ""
    #: The inline run trace (``debug=True`` requests only).
    trace: Optional[dict] = None

    @property
    def statuses(self) -> list[InferenceStatus]:
        return [item.status for item in self.items]


class ServiceClient:
    """Blocking client for one server base URL.

    Each call is one HTTP request on a fresh connection (the server
    answers ``Connection: close``), so instances are safe to share
    across threads — the benchmark's concurrent clients do.
    """

    def __init__(self, base_url: str, timeout: float = 120.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw HTTP
    # ------------------------------------------------------------------

    def request(self, method: str, path: str, payload: Optional[Json] = None) -> Json:
        """One JSON-in/JSON-out request; :class:`ServiceError` on failure."""
        data = (
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
            if payload is not None
            else None
        )
        http_request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                http_request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except (ValueError, AttributeError):
                pass
            raise ServiceError(
                f"{method} {path} -> HTTP {error.code}: {detail or error.reason}"
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"{method} {path} failed: {error.reason}") from error

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self.request("GET", "/v1/stats")

    def trace(self, trace_id: str) -> dict:
        """``GET /v1/trace/<id>``: one request's stage-level run trace.

        :class:`ServiceError` (HTTP 404) once the server's bounded
        trace buffer has dropped it.
        """
        return self.request("GET", f"/v1/trace/{trace_id}")

    def metrics_text(self) -> str:
        """``GET /metrics``: the Prometheus text exposition, verbatim."""
        url = self.base_url + "/metrics"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(
                f"GET /metrics -> HTTP {error.code}: {error.reason}"
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"GET /metrics failed: {error.reason}") from error

    def implies(
        self,
        dependencies: Sequence[Dependency],
        target: Dependency,
        budget: Optional[Budget] = None,
        *,
        certificates: bool = True,
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> RemoteVerdict:
        """``POST /v1/implies``: one ``D ⊨ d`` question.

        ``trace_id`` tags the query for later ``/v1/trace`` retrieval
        (the server generates one otherwise — see the verdict's
        ``trace_id``); ``debug`` asks for the run trace inline.
        """
        payload: dict = {
            "dependencies": [dependency_to_json(d) for d in dependencies],
            "target": dependency_to_json(target),
        }
        if budget is not None:
            payload["budget"] = budget_to_json(budget)
        if not certificates:
            payload["certificates"] = False
        if trace_id is not None:
            payload["trace_id"] = trace_id
        path = "/v1/implies" + ("?debug=1" if debug else "")
        return RemoteVerdict.from_payload(self.request("POST", path, payload))

    def batch(
        self,
        dependencies: Sequence[Dependency],
        targets: Sequence[Dependency],
        budget: Optional[Budget] = None,
        *,
        certificates: bool = True,
        trace_id: Optional[str] = None,
        debug: bool = False,
    ) -> RemoteBatch:
        """``POST /v1/batch``: many targets against one premise set."""
        payload: dict = {
            "dependencies": [dependency_to_json(d) for d in dependencies],
            "targets": [dependency_to_json(t) for t in targets],
        }
        if budget is not None:
            payload["budget"] = budget_to_json(budget)
        if not certificates:
            payload["certificates"] = False
        if trace_id is not None:
            payload["trace_id"] = trace_id
        path = "/v1/batch" + ("?debug=1" if debug else "")
        answer = self.request("POST", path, payload)
        if not isinstance(answer, dict) or "items" not in answer:
            raise ServiceError(f"malformed batch payload {answer!r}")
        return RemoteBatch(
            items=[RemoteVerdict.from_payload(item) for item in answer["items"]],
            stats=answer.get("stats", {}),
            trace_id=str(answer.get("trace_id", "")),
            trace=answer.get("trace"),
        )

    # ------------------------------------------------------------------
    # Maintained models (/v1/models)
    # ------------------------------------------------------------------

    def register_model(
        self,
        schema,
        dependencies: Sequence[Dependency],
        rows: Sequence = (),
        budget: Optional[Budget] = None,
    ) -> dict:
        """``POST /v1/models``: register a maintained universal model.

        Returns the server payload; ``payload["model_id"]`` addresses
        the model in every later call.
        """
        payload: dict = {
            "schema": schema_to_json(schema),
            "dependencies": [dependency_to_json(d) for d in dependencies],
            "rows": rows_to_json(rows),
        }
        if budget is not None:
            payload["budget"] = budget_to_json(budget)
        return self.request("POST", "/v1/models", payload)

    def models(self) -> dict:
        """``GET /v1/models``: summaries of every registered model."""
        return self.request("GET", "/v1/models")

    def model_info(self, model_id: str) -> dict:
        """``GET /v1/models/<id>`` (:class:`ServiceError` 404 if gone)."""
        return self.request("GET", f"/v1/models/{model_id}")

    def drop_model(self, model_id: str) -> dict:
        """``DELETE /v1/models/<id>``."""
        return self.request("DELETE", f"/v1/models/{model_id}")

    def model_facts(
        self, model_id: str, *, insert: Sequence = (), delete: Sequence = ()
    ) -> dict:
        """``POST /v1/models/<id>/facts``: stream base-fact changes.

        Deletes apply before inserts (upsert semantics); the answer
        carries one maintenance report per applied direction.
        """
        payload: dict = {}
        if insert:
            payload["insert"] = rows_to_json(insert)
        if delete:
            payload["delete"] = rows_to_json(delete)
        return self.request("POST", f"/v1/models/{model_id}/facts", payload)

    def model_query(self, model_id: str, query) -> set:
        """``POST /v1/models/<id>/query``: certain answers of a CQ.

        Decodes the answer rows back to value tuples, matching
        :meth:`~repro.chase.maintain.MaintainedModel.answer` locally.
        """
        answer = self.request(
            "POST",
            f"/v1/models/{model_id}/query",
            {"query": cq_to_json(query)},
        )
        if not isinstance(answer, dict) or "answers" not in answer:
            raise ServiceError(f"malformed query payload {answer!r}")
        try:
            return {tuple(row) for row in rows_from_json(answer["answers"])}
        except CodecError as error:
            raise ServiceError(
                f"malformed query payload: {error}"
            ) from error

    def model_implies(self, model_id: str, target: Dependency) -> bool:
        """``POST /v1/models/<id>/query`` with a dependency target."""
        answer = self.request(
            "POST",
            f"/v1/models/{model_id}/query",
            {"target": dependency_to_json(target)},
        )
        if not isinstance(answer, dict) or "implied" not in answer:
            raise ServiceError(f"malformed query payload {answer!r}")
        return bool(answer["implied"])

"""Content-addressed result cache for inference outcomes.

Verdicts are keyed by :func:`repro.dependencies.canonical.query_fingerprint`,
so alpha-renamed and reordered queries share one entry. Entries store the
outcome as its JSON payload (:func:`repro.io.json_codec.outcome_to_json`),
which keeps them cheap to persist and — more importantly — keeps cached
PROVED traces and DISPROVED counterexamples *independently checkable*: a
hit decodes to a full :class:`~repro.chase.implication.InferenceOutcome`
whose certificates replay exactly like freshly computed ones.

Caching policy by status:

* **PROVED / DISPROVED** — final answers; reusable under any budget. A
  PROVED entry recorded with tracing off is flagged (``traced=False``)
  and treated as stale for callers that require a replayable proof.
* **UNKNOWN** — only means "not decided *within this budget, by these
  chase variants*", so the entry remembers both and is served only to
  requests whose budget it covers and whose variant set it tried; a
  bigger budget — or a variant the entry never ran (racing can decide
  queries a lone STANDARD chase cannot) — is a miss and retries.

The in-memory tier is a bounded LRU. An optional on-disk tier
(:class:`JsonLinesStore`, append-only JSON lines) makes verdicts survive
the process: later lines win on reload, so re-running an UNKNOWN with a
bigger budget simply appends the better entry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

import json

from repro.chase.budget import Budget
from repro.chase.implication import InferenceOutcome, InferenceStatus
from repro.io.json_codec import (
    CodecError,
    Json,
    budget_from_json,
    budget_to_json,
    outcome_from_json,
    outcome_to_json,
)


def budget_covers(cached: Budget, requested: Budget) -> bool:
    """Does work done under ``cached`` subsume a request under ``requested``?

    True when every axis of ``cached`` is at least as generous as the
    corresponding axis of ``requested`` (``None`` = unlimited). An UNKNOWN
    computed under a covering budget cannot be improved by the request, so
    it is safe to serve from cache.
    """
    axes = (
        (cached.max_steps, requested.max_steps),
        (cached.max_rows, requested.max_rows),
        (cached.max_seconds, requested.max_seconds),
    )
    for have, want in axes:
        if have is None:
            continue
        if want is None or want > have:
            return False
    return True


@dataclass
class CacheEntry:
    """One cached verdict: fingerprint, status, budget and outcome payload."""

    fingerprint: str
    status: InferenceStatus
    budget: Budget
    payload: Json
    #: Whether the outcome was computed with trace recording on. A PROVED
    #: entry recorded without traces carries no replayable certificate and
    #: is stale for callers that want one.
    traced: bool = True
    #: The chase variants the verdict was computed under (enum values).
    #: An UNKNOWN is only conclusive for requests whose variants it tried.
    variants: tuple[str, ...] = ("standard",)
    #: Decoded-outcome memo (seeded with the live object on ``record``),
    #: so repeated hits don't re-decode. Treat the outcome as read-only.
    decoded: Optional[InferenceOutcome] = field(
        default=None, repr=False, compare=False
    )

    def outcome(self) -> InferenceOutcome:
        """The stored outcome (certificates included), decoded at most once."""
        if self.decoded is None:
            self.decoded = outcome_from_json(self.payload)
        return self.decoded

    def to_json(self) -> Json:
        """The entry as one JSON-lines record."""
        return {
            "fingerprint": self.fingerprint,
            "status": self.status.value,
            "budget": budget_to_json(self.budget),
            "traced": self.traced,
            "variants": list(self.variants),
            "outcome": self.payload,
        }

    @staticmethod
    def from_json(payload: Json) -> "CacheEntry":
        """Decode one JSON-lines record; :class:`CodecError` on anything malformed."""
        if not isinstance(payload, dict) or "fingerprint" not in payload:
            raise CodecError(f"bad cache entry payload {payload!r}")
        try:
            return CacheEntry(
                fingerprint=payload["fingerprint"],
                status=InferenceStatus(payload["status"]),
                budget=budget_from_json(payload["budget"]),
                payload=payload["outcome"],
                traced=bool(payload.get("traced", True)),
                variants=tuple(payload.get("variants", ("standard",))),
            )
        except (KeyError, ValueError, TypeError) as error:
            raise CodecError(f"bad cache entry payload: {error}") from error


@dataclass
class CacheStats:
    """Hit/miss counters for one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    stale: int = 0
    evictions: int = 0

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        return (
            f"hits={self.hits} misses={self.misses} "
            f"stale_unknown={self.stale} evictions={self.evictions}"
        )


class JsonLinesStore:
    """Append-only on-disk tier: one JSON cache entry per line."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def load(self) -> Iterator[CacheEntry]:
        """Yield stored entries in file order (later entries override).

        Undecodable lines — a torn append after a crash, or hand edits —
        are skipped rather than raised: losing one verdict is recompute
        work, but refusing to open the cache would defeat its purpose.
        """
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield CacheEntry.from_json(json.loads(line))
                except (json.JSONDecodeError, CodecError):
                    continue

    def append(self, entry: CacheEntry) -> None:
        """Persist one entry (parent directory created on demand)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry.to_json(), separators=(",", ":")))
            handle.write("\n")


class ResultCache:
    """Bounded LRU of verdicts, optionally backed by a :class:`JsonLinesStore`."""

    def __init__(
        self,
        maxsize: int = 4096,
        store: Optional[JsonLinesStore] = None,
    ):
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._store = store
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        if store is not None:
            for entry in store.load():
                self._insert(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._entries

    def lookup(
        self,
        fingerprint: str,
        budget: Budget,
        *,
        require_trace: bool = False,
        variants: Optional[tuple[str, ...]] = None,
    ) -> Optional[CacheEntry]:
        """Return a usable entry for ``fingerprint`` under ``budget``, or None.

        Three kinds of entries count as *stale* (the caller should
        recompute and re-record, which overwrites): an UNKNOWN whose
        recorded budget does not cover the request; an UNKNOWN that never
        tried one of the request's ``variants`` (a different chase
        discipline may decide what this one could not); and — with
        ``require_trace`` — a PROVED computed with tracing off, which
        carries no replayable certificate.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.status is InferenceStatus.UNKNOWN:
            if not budget_covers(entry.budget, budget):
                self.stats.stale += 1
                return None
            if variants is not None and not set(variants) <= set(entry.variants):
                self.stats.stale += 1
                return None
        if (
            require_trace
            and entry.status is InferenceStatus.PROVED
            and not entry.traced
        ):
            self.stats.stale += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.stats.hits += 1
        return entry

    def record(
        self,
        fingerprint: str,
        outcome: InferenceOutcome,
        budget: Budget,
        *,
        traced: bool = True,
        variants: tuple[str, ...] = ("standard",),
    ) -> CacheEntry:
        """Store ``outcome`` under ``fingerprint`` (and on disk, if tiered).

        An UNKNOWN carries no reusable certificate — only its status,
        budget and variants matter for later lookups — so its payload is
        stripped of the (potentially huge, budget-exhausted) chase result
        before encoding. The in-process memo still holds the full outcome.
        """
        payload = outcome_to_json(outcome)
        if outcome.status is InferenceStatus.UNKNOWN and isinstance(payload, dict):
            payload.pop("chase_result", None)
        entry = CacheEntry(
            fingerprint=fingerprint,
            status=outcome.status,
            budget=budget,
            payload=payload,
            traced=traced,
            variants=tuple(variants),
            decoded=outcome,
        )
        if not self._insert(entry):
            return self._entries[entry.fingerprint]
        if self._store is not None:
            self._store.append(entry)
        return entry

    def _insert(self, entry: CacheEntry) -> bool:
        """Insert unless it would demote a decisive verdict; True if stored.

        PROVED/DISPROVED are final answers, so an UNKNOWN (some caller
        recomputed under a tighter budget or stricter trace requirement)
        must never replace one — in memory or, via the skipped disk
        append, in the later-lines-win on-disk tier.
        """
        existing = self._entries.get(entry.fingerprint)
        if (
            existing is not None
            and entry.status is InferenceStatus.UNKNOWN
            and existing.status is not InferenceStatus.UNKNOWN
        ):
            self._entries.move_to_end(entry.fingerprint)
            return False
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return True

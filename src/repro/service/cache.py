"""Content-addressed result cache for inference outcomes.

Verdicts are keyed by :func:`repro.dependencies.canonical.query_fingerprint`,
so alpha-renamed and reordered queries share one entry. Entries store the
outcome as its JSON payload (:func:`repro.io.json_codec.outcome_to_json`),
which keeps them cheap to persist and — more importantly — keeps cached
PROVED traces and DISPROVED counterexamples *independently checkable*: a
hit decodes to a full :class:`~repro.chase.implication.InferenceOutcome`
whose certificates replay exactly like freshly computed ones.

Caching policy by status:

* **PROVED / DISPROVED** — final answers; reusable under any budget. A
  PROVED entry recorded with tracing off is flagged (``traced=False``)
  and treated as stale for callers that require a replayable proof.
* **UNKNOWN** — only means "not decided *within this budget, by these
  chase variants*", so the entry remembers both and is served only to
  requests whose budget it covers and whose variant set it tried; a
  bigger budget — or a variant the entry never ran (racing can decide
  queries a lone STANDARD chase cannot) — is a miss and retries.
  Re-recording an UNKNOWN never discards knowledge: a narrower
  recording *merges* into the existing entry instead of overwriting it,
  so a broad UNKNOWN survives narrow re-records and identical queries
  keep hitting. The merge is per-variant — each variant remembers the
  budget it was actually chased under, and the entry never claims a
  (budget, variant) combination no chase ran.

The in-memory tier is a bounded LRU. An optional on-disk tier
(:class:`JsonLinesStore`, append-only JSON lines) makes verdicts survive
the process: later lines win on reload, so re-running an UNKNOWN with a
bigger budget simply appends the better entry.
"""

from __future__ import annotations

import contextlib
import logging
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

import json

try:  # POSIX advisory locking; absent on some platforms (Windows).
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

from repro import faults
from repro.chase.budget import Budget
from repro.chase.implication import InferenceOutcome, InferenceStatus
from repro.obs.metrics import MetricsRegistry
from repro.service.instruments import ServiceInstruments
from repro.io.json_codec import (
    CodecError,
    Json,
    budget_from_json,
    budget_to_json,
    outcome_from_json,
    outcome_to_json,
    slim_unknown_outcome,
)


def budget_covers(cached: Budget, requested: Budget) -> bool:
    """Does work done under ``cached`` subsume a request under ``requested``?

    True when every axis of ``cached`` is at least as generous as the
    corresponding axis of ``requested`` (``None`` = unlimited). An UNKNOWN
    computed under a covering budget cannot be improved by the request, so
    it is safe to serve from cache.
    """
    axes = (
        (cached.max_steps, requested.max_steps),
        (cached.max_rows, requested.max_rows),
        (cached.max_seconds, requested.max_seconds),
    )
    for have, want in axes:
        if have is None:
            continue
        if want is None or want > have:
            return False
    return True


def budget_join(first: Budget, second: Budget) -> Budget:
    """The axis-wise most generous of two budgets (``None`` = unlimited).

    The join covers both inputs; UNKNOWN entries use it as their
    summary budget (the per-variant antichain is what staleness reads).
    """

    def join(a: Optional[float], b: Optional[float]) -> Optional[float]:
        if a is None or b is None:
            return None
        return max(a, b)

    steps = join(first.max_steps, second.max_steps)
    rows = join(first.max_rows, second.max_rows)
    return Budget(
        max_steps=None if steps is None else int(steps),
        max_rows=None if rows is None else int(rows),
        max_seconds=join(first.max_seconds, second.max_seconds),
    )


def budget_meet(first: Budget, second: Budget) -> Budget:
    """The axis-wise *least* generous of two budgets (``None`` loses).

    Both inputs cover the meet, so clamping a request against a ceiling
    (``budget_meet(requested, ceiling)``) can only narrow it — the HTTP
    server uses this to keep client-supplied budgets inside its own.
    """

    def meet(a: Optional[float], b: Optional[float]) -> Optional[float]:
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    steps = meet(first.max_steps, second.max_steps)
    rows = meet(first.max_rows, second.max_rows)
    return Budget(
        max_steps=None if steps is None else int(steps),
        max_rows=None if rows is None else int(rows),
        max_seconds=meet(first.max_seconds, second.max_seconds),
    )


@dataclass
class CacheEntry:
    """One cached verdict: fingerprint, status, budget and outcome payload."""

    fingerprint: str
    status: InferenceStatus
    budget: Budget
    payload: Json
    #: Whether the outcome was computed with trace recording on. A PROVED
    #: entry recorded without traces carries no replayable certificate and
    #: is stale for callers that want one.
    traced: bool = True
    #: The chase variants the verdict was computed under (enum values).
    #: An UNKNOWN is only conclusive for requests whose variants it tried.
    variants: tuple[str, ...] = ("standard",)
    #: Per-variant budgets the chases actually ran under — for each
    #: variant, the *antichain* of mutually incomparable budgets tried
    #: (dominated ones are pruned on merge). UNKNOWN staleness is judged
    #: against these — never against a synthesized combination no chase
    #: ran — and keeping every maximal recording means clients with
    #: incomparable budgets (more steps vs more seconds) all hit instead
    #: of alternately re-chasing. ``None`` derives the uniform mapping
    #: ``{variant: (budget,)}`` (every pre-merge recording is uniform).
    variant_budgets: Optional[dict[str, tuple[Budget, ...]]] = field(
        default=None, repr=False
    )
    #: Suspended-chase checkpoint (encoded,
    #: :func:`repro.io.json_codec.checkpoint_to_json`) for UNKNOWN
    #: entries only. Lives *outside* ``payload`` so it survives
    #: :func:`~repro.io.json_codec.slim_unknown_outcome`; a later
    #: covering-budget retry resumes from it instead of re-chasing
    #: from row zero.
    checkpoint: Optional[Json] = field(default=None, repr=False)
    #: Decoded-outcome memo (seeded with the live object on ``record``),
    #: so repeated hits don't re-decode. Treat the outcome as read-only.
    decoded: Optional[InferenceOutcome] = field(
        default=None, repr=False, compare=False
    )

    def outcome(self) -> InferenceOutcome:
        """The stored outcome (certificates included), decoded at most once."""
        if self.decoded is None:
            self.decoded = outcome_from_json(self.payload)
        return self.decoded

    def tried(self) -> dict[str, tuple[Budget, ...]]:
        """What was actually chased: variant -> budgets it ran under."""
        if self.variant_budgets is None:
            self.variant_budgets = {
                variant: (self.budget,) for variant in self.variants
            }
        return self.variant_budgets

    def to_json(self) -> Json:
        """The entry as one JSON-lines record."""
        record: dict = {
            "fingerprint": self.fingerprint,
            "status": self.status.value,
            "budget": budget_to_json(self.budget),
            "traced": self.traced,
            "variants": list(self.variants),
            "outcome": self.payload,
        }
        if self.status is InferenceStatus.UNKNOWN:
            record["variant_budgets"] = {
                variant: [budget_to_json(budget) for budget in budgets]
                for variant, budgets in self.tried().items()
            }
            if self.checkpoint is not None:
                record["checkpoint"] = self.checkpoint
        return record

    @staticmethod
    def from_json(payload: Json) -> "CacheEntry":
        """Decode one JSON-lines record; :class:`CodecError` on anything malformed."""
        if not isinstance(payload, dict) or "fingerprint" not in payload:
            raise CodecError(f"bad cache entry payload {payload!r}")
        try:
            tried_payload = payload.get("variant_budgets")
            return CacheEntry(
                fingerprint=payload["fingerprint"],
                status=InferenceStatus(payload["status"]),
                budget=budget_from_json(payload["budget"]),
                payload=payload["outcome"],
                traced=bool(payload.get("traced", True)),
                variants=tuple(payload.get("variants", ("standard",))),
                variant_budgets=(
                    {
                        variant: tuple(
                            budget_from_json(entry) for entry in entries
                        )
                        for variant, entries in tried_payload.items()
                    }
                    if isinstance(tried_payload, dict)
                    else None
                ),
                checkpoint=payload.get("checkpoint"),
            )
        except (KeyError, ValueError, TypeError, AttributeError) as error:
            raise CodecError(f"bad cache entry payload: {error}") from error


@dataclass
class CacheStats:
    """Hit/miss counters for one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    stale: int = 0
    evictions: int = 0
    #: LRU evictions incurred while replaying the disk store into memory.
    #: Kept apart from ``evictions`` so lifetime serving stats start at
    #: zero instead of inheriting load-time churn.
    load_evictions: int = 0

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        return (
            f"hits={self.hits} misses={self.misses} "
            f"stale_unknown={self.stale} evictions={self.evictions} "
            f"load_evictions={self.load_evictions}"
        )


def _checkpoint_steps(checkpoint: Optional[Json]) -> int:
    """Chase steps a stored checkpoint has behind it (0 when absent)."""
    if not isinstance(checkpoint, dict):
        return -1
    steps = checkpoint.get("steps", 0)
    return int(steps) if isinstance(steps, (int, float)) else 0


def merge_unknown_entries(
    existing: CacheEntry, entry: CacheEntry
) -> Optional[CacheEntry]:
    """Combine two UNKNOWN recordings for one fingerprint.

    Returns None when ``entry`` adds nothing (every variant it tried
    was already tried under a covering budget); otherwise an entry
    whose per-variant budgets accumulate both recordings, so knowledge
    is never overwritten by whichever caller recorded last. Each kept
    (variant, budget) pair is one that really chased: a fresh budget
    joins its variant's antichain (pruning budgets it covers) rather
    than replacing it, so clients with mutually incomparable budgets
    (more steps vs more seconds) all keep hitting — a synthesized join
    of two recordings would be unsound, and picking just one would make
    the others re-chase forever.

    Shared by the live cache (:meth:`ResultCache._insert`) and disk
    compaction (:func:`fold_entries`), so both agree on what a merged
    line means.
    """
    merged = dict(existing.tried())
    changed = False
    for variant, fresh_budgets in entry.tried().items():
        held = merged.get(variant, ())
        for fresh in fresh_budgets:
            if any(budget_covers(kept, fresh) for kept in held):
                continue  # a prior chase subsumes this one
            held = tuple(
                kept for kept in held if not budget_covers(fresh, kept)
            ) + (fresh,)
            changed = True
        merged[variant] = held
    if not changed:
        return None
    budget = entry.budget
    for chased in merged.values():
        for each in chased:
            budget = budget_join(budget, each)
    # Keep whichever suspended chase got further: resuming from the
    # deeper checkpoint skips more recomputation, and both are sound.
    checkpoint = existing.checkpoint
    if _checkpoint_steps(entry.checkpoint) > _checkpoint_steps(checkpoint):
        checkpoint = entry.checkpoint
    return CacheEntry(
        fingerprint=entry.fingerprint,
        status=InferenceStatus.UNKNOWN,
        # The entry-level budget is a summary (the join of what ran,
        # for logs and humans); staleness reads variant_budgets.
        budget=budget,
        payload=entry.payload,
        traced=entry.traced,
        variants=existing.variants
        + tuple(
            variant
            for variant in entry.variants
            if variant not in existing.variants
        ),
        variant_budgets=merged,
        checkpoint=checkpoint,
        decoded=entry.decoded,
    )


def fold_entries(entries: Iterator[CacheEntry]) -> "OrderedDict[str, CacheEntry]":
    """Fold a file-ordered entry stream to its last-wins survivors.

    Applies exactly the live cache's insert invariants: decisive
    verdicts are final (an UNKNOWN never replaces one), later decisive
    entries win, and UNKNOWN re-records *merge* per-variant knowledge.
    The result is what a fresh unbounded :class:`ResultCache` would
    hold after replaying the stream.
    """
    folded: "OrderedDict[str, CacheEntry]" = OrderedDict()
    for entry in entries:
        existing = folded.get(entry.fingerprint)
        if existing is None:
            folded[entry.fingerprint] = entry
            continue
        if entry.status is InferenceStatus.UNKNOWN:
            if existing.status is InferenceStatus.UNKNOWN:
                merged = merge_unknown_entries(existing, entry)
                if merged is not None:
                    folded[entry.fingerprint] = merged
            # else: never downgrade a decisive verdict
        else:
            folded[entry.fingerprint] = entry
        # Every touch refreshes recency, exactly as ``_insert`` does, so
        # a bounded cache reloading the compacted file evicts the same
        # fingerprints it would have evicted from the original.
        folded.move_to_end(entry.fingerprint)
    return folded


class JsonLinesStore:
    """Append-only on-disk tier: one JSON cache entry per line.

    Appends never rewrite history (a crash can at worst tear the final
    line), so merged UNKNOWN re-records grow the file over time.
    :meth:`compact` folds the file to its last-wins survivors — one
    line per live fingerprint — via an atomic replace; callers trigger
    it through :meth:`ResultCache.close`.

    **Cross-process sharing**: compaction is the one operation that
    rewrites history, so writers (``append``/``compact``) serialize
    through an advisory ``flock`` on a sidecar ``.lock`` file where the
    platform provides one — without it, an append racing another
    process's compaction could vanish from the rewritten file. Readers
    need no lock (the replace is atomic, so they see the old or the new
    file, never a torn one). A second store object on the same path may
    hold stale line counters after another process compacts; that only
    skews *when* its own trigger fires, never what a compaction keeps.
    On platforms without ``fcntl`` the store is single-writer only.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        #: Lines currently in the file and the distinct fingerprints
        #: they mention (counted by ``load``, bumped per ``append``,
        #: reset by ``compact``); None before the first load. Both
        #: exist so the compaction trigger is an O(1) decision instead
        #: of a shutdown-time full-file decode.
        self._lines: Optional[int] = None
        self._fingerprints: Optional[set[str]] = None
        #: Cumulative undecodable lines skipped across every load — a
        #: torn append after a crash, or hand edits. Surfaced as the
        #: ``repro_cache_torn_lines_total`` metric via
        #: :meth:`ResultCache.bind_metrics`.
        self.torn_lines = 0

    def load(self) -> Iterator[CacheEntry]:
        """Yield stored entries in file order (later entries override).

        Undecodable lines — a torn append after a crash, or hand edits —
        are skipped rather than raised: losing one verdict is recompute
        work, but refusing to open the cache would defeat its purpose.
        """
        self._lines = 0
        self._fingerprints = set()
        if not self.path.exists():
            return
        torn = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                self._lines += 1
                try:
                    entry = CacheEntry.from_json(json.loads(line))
                except (json.JSONDecodeError, CodecError):
                    torn += 1
                    continue
                self._fingerprints.add(entry.fingerprint)
                yield entry
        if torn:
            self.torn_lines += torn
            # One line per load, however many lines tore: enough to
            # notice a crashed writer without flooding the log.
            logger.warning(
                "skipped %d torn cache line%s loading %s",
                torn,
                "" if torn == 1 else "s",
                self.path,
            )

    def append(self, entry: CacheEntry) -> None:
        """Persist one entry (parent directory created on demand)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry.to_json(), separators=(",", ":"))
        if faults.fire("cache_tear", entry.fingerprint):
            # Chaos hook: simulate a writer crashing mid-append by
            # persisting only a prefix of the record.
            line = line[: max(1, len(line) // 2)]
        with self._write_lock():
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)
                handle.write("\n")
        if self._lines is not None:
            self._lines += 1
        if self._fingerprints is not None:
            self._fingerprints.add(entry.fingerprint)

    @contextlib.contextmanager
    def _write_lock(self):
        """Exclusive advisory lock for writers (no-op without fcntl)."""
        if fcntl is None:  # pragma: no cover - platform-dependent
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_name(self.path.name + ".lock")
        with lock_path.open("w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _ensure_scanned(self) -> None:
        if self._lines is None:
            for __ in self.load():
                pass

    def line_count(self) -> int:
        """Entry lines in the file (scans once when not yet known)."""
        self._ensure_scanned()
        assert self._lines is not None
        return self._lines

    def distinct_count(self) -> int:
        """Distinct fingerprints in the file (scans once when not known)."""
        self._ensure_scanned()
        assert self._fingerprints is not None
        return len(self._fingerprints)

    def compact(self) -> int:
        """Rewrite the file keeping only last-wins lines; returns lines kept.

        The fold applies the cache's own insert invariants (decisive
        verdicts final, UNKNOWNs merged per-variant), so a reload of the
        compacted file reconstructs the identical cache state. The
        rewrite goes through a sibling temp file and an atomic
        ``replace``, so a crash mid-compaction leaves the original
        intact.
        """
        with self._write_lock():
            folded = fold_entries(self.load())
            tmp = self.path.with_name(self.path.name + ".compact")
            tmp.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("w", encoding="utf-8") as handle:
                for entry in folded.values():
                    handle.write(
                        json.dumps(entry.to_json(), separators=(",", ":"))
                    )
                    handle.write("\n")
            tmp.replace(self.path)
        self._lines = len(folded)
        self._fingerprints = set(folded)
        return self._lines


class ResultCache:
    """Bounded LRU of verdicts, optionally backed by a :class:`JsonLinesStore`.

    ``compact_min_lines`` is the disk tier's size trigger: on
    :meth:`close`, a file holding at least that many lines — and at
    least twice as many lines as live fingerprints — is rewritten to
    last-wins form. Both conditions keep routine closes from rewriting
    a file that is already (near) minimal.
    """

    #: Default disk-tier compaction trigger (lines).
    COMPACT_MIN_LINES = 256

    def __init__(
        self,
        maxsize: int = 4096,
        store: Optional[JsonLinesStore] = None,
        *,
        compact_min_lines: Optional[int] = None,
    ):
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.compact_min_lines = (
            compact_min_lines
            if compact_min_lines is not None
            else self.COMPACT_MIN_LINES
        )
        self.stats = CacheStats()
        self._store = store
        self._instruments = None
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        if store is not None:
            for entry in store.load():
                self._insert(entry)
            # Evictions while replaying the store are load churn, not
            # serving behaviour; segregate them so lifetime stats start
            # clean.
            self.stats.load_evictions = self.stats.evictions
            self.stats.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._entries

    def bind_metrics(self, registry: MetricsRegistry) -> "ResultCache":
        """Expose this cache through ``registry`` (idempotent).

        The hit/miss/stale/eviction counters are *function-backed*: the
        registry reads :attr:`stats` at scrape time, so the hot lookup
        path pays nothing for telemetry. Compaction work (the one
        genuinely slow cache operation) is timed live on :meth:`close`.
        """
        self._instruments = ServiceInstruments(registry)
        registry.gauge(
            "repro_cache_entries",
            "Verdicts currently held in the in-memory tier",
            fn=lambda: float(len(self._entries)),
        )
        registry.gauge(
            "repro_cache_max_entries",
            "In-memory tier capacity (LRU bound)",
            fn=lambda: float(self.maxsize),
        )
        registry.counter(
            "repro_cache_lookup_hits_total",
            "Cache lookups served from a usable entry",
            fn=lambda: float(self.stats.hits),
        )
        registry.counter(
            "repro_cache_lookup_misses_total",
            "Cache lookups that found no entry",
            fn=lambda: float(self.stats.misses),
        )
        registry.counter(
            "repro_cache_stale_unknown_total",
            "Cache lookups that found only a stale entry",
            fn=lambda: float(self.stats.stale),
        )
        registry.counter(
            "repro_cache_evictions_total",
            "LRU evictions while serving (load churn excluded)",
            fn=lambda: float(self.stats.evictions),
        )
        if self._store is not None:
            store = self._store
            registry.counter(
                "repro_cache_torn_lines_total",
                "Torn or malformed JSON lines skipped while loading "
                "the disk cache",
                fn=lambda: float(store.torn_lines),
            )
        return self

    def close(self, *, force_compact: bool = False) -> bool:
        """Compact the disk tier if it has outgrown its live content.

        The append-only tier grows on every merged UNKNOWN re-record;
        compaction folds it back to one line per fingerprint (see
        :meth:`JsonLinesStore.compact` — the reload after a fold is
        state-identical). Triggered when the file holds at least
        ``compact_min_lines`` lines *and* at least twice as many lines
        as distinct fingerprints, or always with ``force_compact``.
        Idempotent; the cache stays fully usable afterwards. Returns
        True when a compaction ran.
        """
        store = self._store
        if store is None:
            return False
        if force_compact:
            self._timed_compact(store)
            return True
        # O(1) trigger: the store tracks line and distinct-fingerprint
        # counts incrementally, so a no-op close never re-reads the file.
        lines = store.line_count()
        if lines < self.compact_min_lines:
            return False
        if lines < 2 * max(store.distinct_count(), 1):
            return False
        self._timed_compact(store)
        return True

    def _timed_compact(self, store: JsonLinesStore) -> None:
        started = time.perf_counter()
        store.compact()
        if self._instruments is not None:
            self._instruments.cache_compactions.inc()
            self._instruments.cache_compaction_seconds.observe(
                time.perf_counter() - started
            )

    def lookup(
        self,
        fingerprint: str,
        budget: Budget,
        *,
        require_trace: bool = False,
        variants: Optional[tuple[str, ...]] = None,
    ) -> Optional[CacheEntry]:
        """Return a usable entry for ``fingerprint`` under ``budget``, or None.

        Three kinds of entries count as *stale* (the caller should
        recompute and re-record, which merges): an UNKNOWN some of whose
        requested ``variants`` were never chased under a budget covering
        the request (a different discipline — or more work — may decide
        what the recorded chases could not; with ``variants=None`` any
        one covered variant suffices); and — with ``require_trace`` — a
        PROVED computed with tracing off, which carries no replayable
        certificate.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.status is InferenceStatus.UNKNOWN:
            tried = entry.tried()

            def covered(chased: tuple[Budget, ...]) -> bool:
                return any(budget_covers(b, budget) for b in chased)

            if variants is None:
                # A variant-agnostic caller is served when *some* chase
                # already did at least the requested work.
                usable = any(covered(chased) for chased in tried.values())
            else:
                # A variant-specific caller needs *every* requested
                # variant to have been chased with covering work.
                usable = all(
                    variant in tried and covered(tried[variant])
                    for variant in variants
                )
            if not usable:
                self.stats.stale += 1
                return None
        if (
            require_trace
            and entry.status is InferenceStatus.PROVED
            and not entry.traced
        ):
            self.stats.stale += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.stats.hits += 1
        return entry

    def checkpoint_for(self, fingerprint: str) -> Optional[Json]:
        """The stored suspended-chase checkpoint for a stale UNKNOWN.

        Called after :meth:`lookup` returned None for an UNKNOWN whose
        budgets the request is not covered by: instead of re-chasing
        from row zero, the caller can resume the suspended chase under
        its own budget. Returns the encoded checkpoint, or None when
        the entry is missing, decisive, or was recorded without one.
        """
        entry = self._entries.get(fingerprint)
        if entry is None or entry.status is not InferenceStatus.UNKNOWN:
            return None
        return entry.checkpoint

    def record(
        self,
        fingerprint: str,
        outcome: InferenceOutcome,
        budget: Budget,
        *,
        traced: bool = True,
        variants: tuple[str, ...] = ("standard",),
        checkpoint: Optional[Json] = None,
    ) -> CacheEntry:
        """Store ``outcome`` under ``fingerprint`` (and on disk, if tiered).

        An UNKNOWN carries no reusable certificate — only its status,
        budget and variants matter for later lookups — so its payload is
        stripped of the (potentially huge, budget-exhausted) chase result
        before encoding. The in-process memo still holds the full outcome.
        An encoded ``checkpoint`` rides along with UNKNOWN entries so a
        later covering-budget retry resumes rather than restarts.

        FAILED outcomes are operational accidents (a quarantined
        payload, a crashed worker), not verdicts about ``D |= d`` —
        caching one would keep serving the accident after the fault is
        gone, so recording them is a programming error here.
        """
        if outcome.status is InferenceStatus.FAILED:
            raise ValueError("FAILED outcomes must not be cached")
        payload = slim_unknown_outcome(outcome_to_json(outcome))
        entry = CacheEntry(
            fingerprint=fingerprint,
            status=outcome.status,
            budget=budget,
            payload=payload,
            traced=traced,
            variants=tuple(variants),
            variant_budgets={variant: (budget,) for variant in variants},
            checkpoint=(
                checkpoint
                if outcome.status is InferenceStatus.UNKNOWN
                else None
            ),
            decoded=outcome,
        )
        stored = self._insert(entry)
        if stored is None:
            return self._entries[entry.fingerprint]
        if self._store is not None:
            # The *stored* entry goes to disk: when an UNKNOWN was merged
            # with an earlier one, the appended line carries the joined
            # budget and the variant union, so a later-lines-win reload
            # keeps the merged knowledge rather than the narrow re-record.
            self._store.append(stored)
        return stored

    def _merge_unknown(
        self, existing: CacheEntry, entry: CacheEntry
    ) -> Optional[CacheEntry]:
        """See :func:`merge_unknown_entries` (shared with compaction)."""
        return merge_unknown_entries(existing, entry)

    def _insert(self, entry: CacheEntry) -> Optional[CacheEntry]:
        """Insert ``entry``; returns what was stored, or None for a no-op.

        Two invariants protect accumulated knowledge:

        * PROVED/DISPROVED are final answers, so an UNKNOWN (some caller
          recomputed under a tighter budget or stricter trace
          requirement) must never replace one — in memory or, via the
          skipped disk append, in the later-lines-win on-disk tier.
        * An UNKNOWN must never *downgrade* an UNKNOWN: re-recording
          under a narrower budget or fewer variants merges per-variant
          knowledge instead of overwriting, otherwise the staleness
          logic in :meth:`lookup` sees only the narrow entry and
          identical queries re-chase forever.
        """
        existing = self._entries.get(entry.fingerprint)
        if existing is not None and entry.status is InferenceStatus.UNKNOWN:
            if existing.status is not InferenceStatus.UNKNOWN:
                self._entries.move_to_end(entry.fingerprint)
                return None
            merged = self._merge_unknown(existing, entry)
            if merged is None:
                self._entries.move_to_end(entry.fingerprint)
                return None
            entry = merged
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return entry

"""The shared join kernel: interned rows, compiled atom steps, walkers.

Every decision procedure in this library bottoms out in *homomorphism
search* — the chase fires triggers (antecedent homomorphisms without a
conclusion extension), model checking looks for violations (the same
match shape), core computation retracts an instance onto itself, and
conjunctive-query containment folds one query body onto another. PR 3/4
compiled two of those consumers (:mod:`repro.chase.plan`,
:mod:`repro.chase.checkplan`) onto one set of primitives; this module is
that machinery extracted into a dedicated engine layer so the remaining
consumers (:mod:`repro.relational.homplan`: cores, homomorphic
equivalence, CQ evaluation/containment/minimization) run on the same
kernel instead of the generic backtracking search.

The primitives:

* :class:`AtomStep` — one precompiled join step over flat integer
  *slots*: probe columns (already bound), bind columns (first
  occurrences) and check columns (repeats within the atom), with
  single-probe and all-bound-membership fast paths;
* :func:`compile_steps` — the greedy most-constrained-first atom order,
  decided once per structure instead of per backtracking node;
* :class:`KernelState` — the interned int-row view of a live
  :class:`~repro.relational.instance.Instance`, kept in sync as the
  chase fires;
* the walkers — :func:`extend_matches` (collect completed matches),
  :func:`has_extension` (existence, early exit) — plus
  :func:`memoized`, the one structural-cache implementation every
  compiled-artifact cache shares.

NOTE: the candidate loop (smallest-bucket probe selection, single-probe
no-verify and all-bound-membership fast paths, bind-then-check order) is
deliberately inlined in :func:`extend_matches`, :func:`has_extension`,
:func:`repro.chase.checkplan._violation_walk`, and the walkers of
:mod:`repro.relational.homplan` — a shared per-candidate helper costs
the kernel its measured speedup. Any change to the step semantics must
be applied to all of them; the differential suites
(``tests/chase/test_kernel_differential.py``,
``tests/chase/test_checker_differential.py``,
``tests/relational/test_homplan.py``) exist to catch a one-sided edit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.relational.instance import Instance, Row

#: An interned row: one dense int per column.
IntRow = tuple[int, ...]


class AtomStep:
    """One precompiled join step: match one atom against the index.

    ``probes`` are ``(column, slot)`` pairs whose slots are bound before
    this step — candidate rows come from the smallest matching index
    bucket and are verified against the rest. ``binds`` are the first
    occurrences of newly bound slots; ``checks`` are repeat occurrences
    of slots bound earlier *within this same atom* (verified after
    binding). When every column is a probe (``membership`` True) the
    whole step degenerates to one O(1) set-membership test — the common
    case for full-dependency activity checks and implication goals.
    """

    __slots__ = (
        "probes",
        "binds",
        "checks",
        "membership",
        "probe_slots",
        "verify_probes",
    )

    def __init__(
        self,
        probes: tuple[tuple[int, int], ...],
        binds: tuple[tuple[int, int], ...],
        checks: tuple[tuple[int, int], ...],
    ):
        self.probes = probes
        self.binds = binds
        self.checks = checks
        self.membership = not binds and not checks
        #: Slot per column, for the membership fast path (probes are in
        #: column order by construction).
        self.probe_slots = tuple(slot for __, slot in probes)
        #: With a single probe the index bucket already guarantees the
        #: match — candidate rows need no re-verification.
        self.verify_probes = probes if len(probes) > 1 else ()


def atom_equality_pattern(atom: Sequence) -> tuple[tuple[int, int], ...]:
    """Column pairs a row must agree on to unify with ``atom``.

    Works over any hashable atom terms — the compiled kernel passes
    integer slots, the legacy delta enumeration
    (:func:`repro.chase.trigger.iter_triggers_touching`) passes
    :class:`~repro.dependencies.template.Variable` atoms. A repeated
    term is the only way an all-variable atom can reject a row, so this
    pattern is the complete row-level dispatch filter.
    """
    first: dict = {}
    pattern = []
    for column, term in enumerate(atom):
        seen = first.get(term)
        if seen is None:
            first[term] = column
        else:
            pattern.append((seen, column))
    return tuple(pattern)


def compile_atom(
    slots: Sequence[int], bound: set[int]
) -> tuple[AtomStep, set[int]]:
    """Compile one atom given the already-bound slot set (updated)."""
    probes = []
    binds = []
    checks = []
    bound_here: set[int] = set()
    for column, slot in enumerate(slots):
        if slot in bound:
            probes.append((column, slot))
        elif slot in bound_here:
            checks.append((column, slot))
        else:
            binds.append((column, slot))
            bound_here.add(slot)
    bound |= bound_here
    return AtomStep(tuple(probes), tuple(binds), tuple(checks)), bound


def compile_steps(
    atom_slots: list[tuple[int, ...]], bound: set[int]
) -> tuple[AtomStep, ...]:
    """Greedy most-constrained-first order over ``atom_slots``.

    Mirrors the generic engine's heuristic, decided once: prefer the
    atom with the most already-bound cells, tie-break on fewer new
    slots, then on input order (deterministic).
    """
    remaining = list(range(len(atom_slots)))
    steps = []
    bound = set(bound)
    while remaining:
        best = max(
            remaining,
            key=lambda i: (
                sum(1 for slot in atom_slots[i] if slot in bound),
                -len({slot for slot in atom_slots[i] if slot not in bound}),
                -i,
            ),
        )
        remaining.remove(best)
        step, bound = compile_atom(atom_slots[best], bound)
        steps.append(step)
    return tuple(steps)


def memoized(cache: dict, key, build, max_size: int):
    """Structural memo with oldest-first eviction.

    One implementation for every compiled-artifact cache (the plan and
    program caches in :mod:`repro.chase.plan`, the check cache in
    :mod:`repro.chase.checkplan`, the homomorphism-plan cache in
    :mod:`repro.relational.homplan`), so the eviction policy cannot
    drift between them. ``build`` receives ``key`` on a miss.
    """
    value = cache.get(key)
    if value is None:
        value = build(key)
        while len(cache) >= max_size:
            del cache[next(iter(cache))]  # oldest-first
        cache[key] = value
    return value


class KernelState:
    """The interned view of a live :class:`Instance`, kept in sync.

    Rows are tuples of dense ints (via ``instance.intern_table``); the
    inverted index maps ``(column, value id)`` to a list of int rows.

    Historically each compiled consumer built a fresh ``KernelState``
    per call and was then the only mutator; the canonical way to obtain
    one now is :meth:`Instance.kernel_view`, which caches the view on
    the instance and keeps it in sync through the instance's own
    ``add``/``discard`` hooks — so the view survives out-of-band
    mutation and repeated calls stop paying O(instance) construction.
    Constructing ``KernelState(instance)`` directly still works (tests
    and one-shot callers do) but such a detached view is *not*
    subscribed to the instance and goes stale on mutation.
    """

    __slots__ = (
        "instance",
        "values",
        "_intern",
        "index",
        "irows",
        "rows_list",
        "_pos",
    )

    def __init__(self, instance: Instance):
        self.instance = instance
        table = instance.intern_table
        self.values = table.values
        self._intern = table.intern
        self.index: dict[tuple[int, int], list[IntRow]] = {}
        self.irows: set[IntRow] = set()
        self.rows_list: list[IntRow] = []
        #: Position of each int row in ``rows_list`` (swap-remove on
        #: retraction keeps the scan list dense without an O(n) shift).
        self._pos: dict[IntRow, int] = {}
        for row in instance:
            self._admit(tuple(map(self._intern, row)))

    def _admit(self, irow: IntRow) -> None:
        self.irows.add(irow)
        self._pos[irow] = len(self.rows_list)
        self.rows_list.append(irow)
        index = self.index
        for column, vid in enumerate(irow):
            key = (column, vid)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [irow]
            else:
                bucket.append(irow)

    def _retract(self, irow: IntRow) -> None:
        """Drop ``irow`` from the view (no-op when absent).

        Called by :meth:`Instance.discard` on the subscribed view; the
        index buckets pay an O(bucket) list removal, which is fine on
        the (cold) deletion path.
        """
        pos = self._pos.pop(irow, None)
        if pos is None:
            return
        self.irows.discard(irow)
        rows_list = self.rows_list
        last = rows_list.pop()
        if pos < len(rows_list):
            rows_list[pos] = last
            self._pos[last] = pos
        index = self.index
        for column, vid in enumerate(irow):
            key = (column, vid)
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(irow)
                if not bucket:
                    del index[key]

    def intern_row(self, row: Row) -> IntRow:
        return tuple(map(self._intern, row))

    def add(self, row: Row) -> Optional[IntRow]:
        """Insert ``row`` into instance and view; None when already present."""
        irow = tuple(map(self._intern, row))
        return irow if self.add_interned(irow) is not None else None

    def add_interned(self, irow: IntRow) -> Optional[Row]:
        """Insert a row already expressed as interned ids (the fire path).

        The kernel holds conclusion rows as registers of interned ids,
        so presence is one int-tuple set test and the Value row is only
        materialized for genuinely new rows (returned; None when the
        row was already present). Bypasses :meth:`Instance.add`'s arity
        check (kernel rows come from compiled conclusion templates,
        correct by construction) but keeps the instance's row set,
        inverted index and snapshot invalidation exactly in sync — the
        goal predicate and every post-chase consumer see a normal
        instance. Relies on the class invariant that ``irows`` mirrors
        the instance's row set exactly.
        """
        if irow in self.irows:
            return None
        values = self.values
        row = tuple(values[vid] for vid in irow)
        instance = self.instance
        instance._rows.add(row)
        instance._snapshot = None
        instance._epoch += 1
        index = instance._index
        for column, value in enumerate(row):
            key = (column, value)
            bucket = index.get(key)
            if bucket is None:
                index[key] = {row}
            else:
                bucket.add(row)
        self._admit(irow)
        view = instance._view
        if view is not None and view is not self:
            # A detached state is mutating an instance that also has a
            # subscribed view — keep the subscribed view honest too
            # (interned ids are shared through the instance's table).
            view._admit(irow)
        return row


def extend_matches(
    state: KernelState,
    steps: tuple[AtomStep, ...],
    depth: int,
    regs: list[int],
    n_universal: int,
    seen: set[tuple[int, ...]],
    out: list[tuple[int, ...]],
) -> None:
    """Backtracking join over ``steps``; completed matches land in ``out``.

    Matches are deduplicated on their first ``n_universal`` registers
    (the chase's trigger key). See the module NOTE about the
    deliberately inlined candidate loop.
    """
    if depth == len(steps):
        key = tuple(regs[:n_universal])
        if key not in seen:
            seen.add(key)
            out.append(key)
        return
    step = steps[depth]
    probes = step.probes
    if step.membership:
        if tuple(regs[slot] for slot in step.probe_slots) in state.irows:
            extend_matches(
                state, steps, depth + 1, regs, n_universal, seen, out
            )
        return
    if probes:
        index = state.index
        best = None
        for column, slot in probes:
            bucket = index.get((column, regs[slot]))
            if not bucket:
                return
            if best is None or len(bucket) < len(best):
                best = bucket
    else:
        best = state.rows_list
    verify = step.verify_probes
    binds = step.binds
    checks = step.checks
    next_depth = depth + 1
    for irow in best:
        ok = True
        for column, slot in verify:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        for column, slot in binds:
            regs[slot] = irow[column]
        for column, slot in checks:
            if irow[column] != regs[slot]:
                ok = False
                break
        if ok:
            extend_matches(
                state, steps, next_depth, regs, n_universal, seen, out
            )


def has_extension(
    state: KernelState,
    steps: tuple[AtomStep, ...],
    depth: int,
    regs: list[int],
) -> bool:
    """Does some assignment of the remaining slots embed the atoms?

    Early-exits on the first complete match; a True return unwinds
    without touching ``regs`` again, so the caller can read the
    satisfying assignment straight out of the registers. See the module
    NOTE about the deliberately inlined candidate loop.
    """
    if depth == len(steps):
        return True
    step = steps[depth]
    probes = step.probes
    if step.membership:
        if tuple(regs[slot] for slot in step.probe_slots) in state.irows:
            return has_extension(state, steps, depth + 1, regs)
        return False
    if probes:
        index = state.index
        best = None
        for column, slot in probes:
            bucket = index.get((column, regs[slot]))
            if not bucket:
                return False
            if best is None or len(bucket) < len(best):
                best = bucket
    else:
        best = state.rows_list
    verify = step.verify_probes
    binds = step.binds
    checks = step.checks
    next_depth = depth + 1
    for irow in best:
        ok = True
        for column, slot in verify:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        for column, slot in binds:
            regs[slot] = irow[column]
        for column, slot in checks:
            if irow[column] != regs[slot]:
                ok = False
                break
        if ok and has_extension(state, steps, next_depth, regs):
            return True
    return False

"""The shared join kernel: interned rows, compiled atom steps, walkers.

Every decision procedure in this library bottoms out in *homomorphism
search* — the chase fires triggers (antecedent homomorphisms without a
conclusion extension), model checking looks for violations (the same
match shape), core computation retracts an instance onto itself, and
conjunctive-query containment folds one query body onto another. PR 3/4
compiled two of those consumers (:mod:`repro.chase.plan`,
:mod:`repro.chase.checkplan`) onto one set of primitives; this module is
that machinery extracted into a dedicated engine layer so the remaining
consumers (:mod:`repro.relational.homplan`: cores, homomorphic
equivalence, CQ evaluation/containment/minimization) run on the same
kernel instead of the generic backtracking search.

The primitives:

* :class:`AtomStep` — one precompiled join step over flat integer
  *slots*: probe columns (already bound), bind columns (first
  occurrences) and check columns (repeats within the atom), with
  single-probe and all-bound-membership fast paths;
* :func:`compile_steps` — the greedy most-constrained-first atom order,
  decided once per structure instead of per backtracking node;
* :class:`KernelState` (:mod:`repro.kernel.state`) — the interned
  int-row view of a live :class:`~repro.relational.instance.Instance`,
  kept in sync as the chase fires;
* the walkers — :func:`extend_matches` (collect completed matches),
  :func:`has_extension` (existence, early exit),
  :func:`violation_walk` (first antecedent match with no conclusion
  extension — model checking) and :func:`retraction_walk` (the
  image-shrinks endomorphism walk behind cores and CQ minimization) —
  plus :func:`memoized`, the one structural-cache implementation every
  compiled-artifact cache shares.

Every walker exists twice: the pure-python reference implementation in
this module, and a C implementation in :mod:`repro.kernel._native`
compiled at install time when a toolchain is available. The public
functions dispatch on the process-wide resolved backend
(:func:`repro.kernel.backend.resolve_join_backend`,
``REPRO_JOIN_BACKEND=auto|native|python``); both backends are held to
identical semantics by the seeded differential suites, which
parametrize over the backend exactly as they do over the
compiled/legacy engine split.

NOTE: the candidate loop (smallest-bucket probe selection, single-probe
no-verify and all-bound-membership fast paths, bind-then-check order) is
deliberately inlined in each of the four python walkers below, in their
C twins, and in the enumerating walker of
:mod:`repro.relational.homplan` (``_iter_walk``, a generator — the one
shape that stays python under every backend) — a shared per-candidate
helper costs the kernel its measured speedup. Any change to the step
semantics must be applied to all of them; the differential suites
(``tests/chase/test_kernel_differential.py``,
``tests/chase/test_checker_differential.py``,
``tests/relational/test_homplan.py``) exist to catch a one-sided edit.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence, TypeVar

from repro.kernel import backend as _backend
from repro.kernel.state import IntRow, KernelState

__all__ = [
    "AtomStep",
    "IntRow",
    "KernelState",
    "atom_equality_pattern",
    "compile_atom",
    "compile_steps",
    "extend_matches",
    "has_extension",
    "violation_walk",
    "retraction_walk",
    "memoized",
]

#: (column, slot) pairs — the unit every step component is made of.
ColumnSlots = tuple[tuple[int, int], ...]


class AtomStep:
    """One precompiled join step: match one atom against the index.

    ``probes`` are ``(column, slot)`` pairs whose slots are bound before
    this step — candidate rows come from the smallest matching index
    bucket and are verified against the rest. ``binds`` are the first
    occurrences of newly bound slots; ``checks`` are repeat occurrences
    of slots bound earlier *within this same atom* (verified after
    binding). When every column is a probe (``membership`` True) the
    whole step degenerates to one O(1) set-membership test — the common
    case for full-dependency activity checks and implication goals.
    """

    __slots__ = (
        "probes",
        "binds",
        "checks",
        "membership",
        "probe_slots",
        "verify_probes",
    )

    def __init__(
        self,
        probes: ColumnSlots,
        binds: ColumnSlots,
        checks: ColumnSlots,
    ) -> None:
        self.probes = probes
        self.binds = binds
        self.checks = checks
        self.membership = not binds and not checks
        #: Slot per column, for the membership fast path (probes are in
        #: column order by construction).
        self.probe_slots = tuple(slot for __, slot in probes)
        #: With a single probe the index bucket already guarantees the
        #: match — candidate rows need no re-verification.
        self.verify_probes: ColumnSlots = probes if len(probes) > 1 else ()


def atom_equality_pattern(atom: Sequence[Hashable]) -> ColumnSlots:
    """Column pairs a row must agree on to unify with ``atom``.

    Works over any hashable atom terms — the compiled kernel passes
    integer slots, the legacy delta enumeration
    (:func:`repro.chase.trigger.iter_triggers_touching`) passes
    :class:`~repro.dependencies.template.Variable` atoms. A repeated
    term is the only way an all-variable atom can reject a row, so this
    pattern is the complete row-level dispatch filter.
    """
    first: dict[Hashable, int] = {}
    pattern: list[tuple[int, int]] = []
    for column, term in enumerate(atom):
        seen = first.get(term)
        if seen is None:
            first[term] = column
        else:
            pattern.append((seen, column))
    return tuple(pattern)


def compile_atom(
    slots: Sequence[int], bound: set[int]
) -> tuple[AtomStep, set[int]]:
    """Compile one atom given the already-bound slot set (updated)."""
    probes: list[tuple[int, int]] = []
    binds: list[tuple[int, int]] = []
    checks: list[tuple[int, int]] = []
    bound_here: set[int] = set()
    for column, slot in enumerate(slots):
        if slot in bound:
            probes.append((column, slot))
        elif slot in bound_here:
            checks.append((column, slot))
        else:
            binds.append((column, slot))
            bound_here.add(slot)
    bound |= bound_here
    return AtomStep(tuple(probes), tuple(binds), tuple(checks)), bound


def compile_steps(
    atom_slots: Sequence[tuple[int, ...]], bound: set[int]
) -> tuple[AtomStep, ...]:
    """Greedy most-constrained-first order over ``atom_slots``.

    Mirrors the generic engine's heuristic, decided once: prefer the
    atom with the most already-bound cells, tie-break on fewer new
    slots, then on input order (deterministic).
    """
    remaining = list(range(len(atom_slots)))
    steps: list[AtomStep] = []
    bound = set(bound)
    while remaining:
        best = max(
            remaining,
            key=lambda i: (
                sum(1 for slot in atom_slots[i] if slot in bound),
                -len({slot for slot in atom_slots[i] if slot not in bound}),
                -i,
            ),
        )
        remaining.remove(best)
        step, bound = compile_atom(atom_slots[best], bound)
        steps.append(step)
    return tuple(steps)


_K = TypeVar("_K")
_V = TypeVar("_V")


def memoized(
    cache: dict[_K, _V], key: _K, build: Callable[[_K], _V], max_size: int
) -> _V:
    """Structural memo with oldest-first eviction.

    One implementation for every compiled-artifact cache (the plan and
    program caches in :mod:`repro.chase.plan`, the check cache in
    :mod:`repro.chase.checkplan`, the homomorphism-plan cache in
    :mod:`repro.relational.homplan`, the native step-packing cache
    below), so the eviction policy cannot drift between them. ``build``
    receives ``key`` on a miss.
    """
    value = cache.get(key)
    if value is None:
        value = build(key)
        while len(cache) >= max_size:
            del cache[next(iter(cache))]  # oldest-first
        cache[key] = value
    return value


# ---------------------------------------------------------------------------
# Native step packing
# ---------------------------------------------------------------------------

#: Packed C step programs, keyed by the (identity-hashed) step tuples
#: the plan caches hold — packing re-reads the AtomStep fields once per
#: cached plan, not per walk.
_PACKED_CACHE: dict[tuple[AtomStep, ...], object] = {}
_PACKED_CACHE_MAX = 8192


def _pack(steps: tuple[AtomStep, ...]) -> object:
    """The native backend's packed twin of a python step tuple."""
    native = _backend.active_native()
    assert native is not None
    return memoized(
        _PACKED_CACHE,
        steps,
        lambda key: native.pack_steps(
            [(step.probes, step.binds, step.checks) for step in key]
        ),
        _PACKED_CACHE_MAX,
    )


# ---------------------------------------------------------------------------
# Walkers
# ---------------------------------------------------------------------------


def extend_matches(
    state: KernelState,
    steps: tuple[AtomStep, ...],
    depth: int,
    regs: list[int],
    n_universal: int,
    seen: set[tuple[int, ...]],
    out: list[tuple[int, ...]],
) -> None:
    """Backtracking join over ``steps``; completed matches land in ``out``.

    Matches are deduplicated on their first ``n_universal`` registers
    (the chase's trigger key). See the module NOTE about the
    deliberately inlined candidate loop.
    """
    if depth == 0:
        native = _backend.active_native()
        if native is not None:
            native.extend_matches(
                state.index,
                state.irows,
                state.rows_list,
                _pack(steps),
                regs,
                n_universal,
                seen,
                out,
            )
            return
    if depth == len(steps):
        key = tuple(regs[:n_universal])
        if key not in seen:
            seen.add(key)
            out.append(key)
        return
    step = steps[depth]
    probes = step.probes
    if step.membership:
        if tuple(regs[slot] for slot in step.probe_slots) in state.irows:
            extend_matches(
                state, steps, depth + 1, regs, n_universal, seen, out
            )
        return
    best: Sequence[IntRow]
    if probes:
        index = state.index
        chosen = None
        for column, slot in probes:
            bucket = index.get((column, regs[slot]))
            if not bucket:
                return
            if chosen is None or len(bucket) < len(chosen):
                chosen = bucket
        assert chosen is not None
        best = chosen
    else:
        best = state.rows_list
    verify = step.verify_probes
    binds = step.binds
    checks = step.checks
    next_depth = depth + 1
    for irow in best:
        ok = True
        for column, slot in verify:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        for column, slot in binds:
            regs[slot] = irow[column]
        for column, slot in checks:
            if irow[column] != regs[slot]:
                ok = False
                break
        if ok:
            extend_matches(
                state, steps, next_depth, regs, n_universal, seen, out
            )


def has_extension(
    state: KernelState,
    steps: tuple[AtomStep, ...],
    depth: int,
    regs: list[int],
) -> bool:
    """Does some assignment of the remaining slots embed the atoms?

    Early-exits on the first complete match; a True return unwinds
    without touching ``regs`` again, so the caller can read the
    satisfying assignment straight out of the registers. See the module
    NOTE about the deliberately inlined candidate loop.
    """
    if depth == 0:
        native = _backend.active_native()
        if native is not None:
            found: bool = native.has_extension(
                state.index, state.irows, state.rows_list, _pack(steps), regs
            )
            return found
    if depth == len(steps):
        return True
    step = steps[depth]
    probes = step.probes
    if step.membership:
        if tuple(regs[slot] for slot in step.probe_slots) in state.irows:
            return has_extension(state, steps, depth + 1, regs)
        return False
    best: Sequence[IntRow]
    if probes:
        index = state.index
        chosen = None
        for column, slot in probes:
            bucket = index.get((column, regs[slot]))
            if not bucket:
                return False
            if chosen is None or len(bucket) < len(chosen):
                chosen = bucket
        assert chosen is not None
        best = chosen
    else:
        best = state.rows_list
    verify = step.verify_probes
    binds = step.binds
    checks = step.checks
    next_depth = depth + 1
    for irow in best:
        ok = True
        for column, slot in verify:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        for column, slot in binds:
            regs[slot] = irow[column]
        for column, slot in checks:
            if irow[column] != regs[slot]:
                ok = False
                break
        if ok and has_extension(state, steps, next_depth, regs):
            return True
    return False


def violation_walk(
    state: KernelState,
    steps: tuple[AtomStep, ...],
    depth: int,
    regs: list[int],
    activity_steps: tuple[AtomStep, ...],
) -> bool:
    """Find the first antecedent match with no conclusion extension.

    The model-checking walk (previously inlined in
    :mod:`repro.chase.checkplan`): returns True with the witness left in
    ``regs`` (universal slots), or False when every antecedent match
    extends — i.e. the dependency holds. A True return unwinds without
    touching ``regs`` again, so the caller reads the witness straight
    out of the registers. See the module NOTE about the deliberately
    inlined candidate loop.
    """
    if depth == 0:
        native = _backend.active_native()
        if native is not None:
            violated: bool = native.violation_walk(
                state.index,
                state.irows,
                state.rows_list,
                _pack(steps),
                _pack(activity_steps),
                regs,
            )
            return violated
    if depth == len(steps):
        # Complete antecedent match: violated iff the conclusion atoms
        # have no extension (the precompiled trigger-activity probe).
        return not _has_extension_py(state, activity_steps, 0, regs)
    step = steps[depth]
    probes = step.probes
    if step.membership:
        if tuple(regs[slot] for slot in step.probe_slots) in state.irows:
            return violation_walk(
                state, steps, depth + 1, regs, activity_steps
            )
        return False
    best: Sequence[IntRow]
    if probes:
        index = state.index
        chosen = None
        for column, slot in probes:
            bucket = index.get((column, regs[slot]))
            if not bucket:
                return False
            if chosen is None or len(bucket) < len(chosen):
                chosen = bucket
        assert chosen is not None
        best = chosen
    else:
        best = state.rows_list
    verify = step.verify_probes
    binds = step.binds
    checks = step.checks
    next_depth = depth + 1
    for irow in best:
        ok = True
        for column, slot in verify:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        for column, slot in binds:
            regs[slot] = irow[column]
        for column, slot in checks:
            if irow[column] != regs[slot]:
                ok = False
                break
        if ok and violation_walk(state, steps, next_depth, regs, activity_steps):
            return True
    return False


def retraction_walk(
    state: KernelState,
    steps: tuple[AtomStep, ...],
    depth: int,
    regs: list[int],
    used: set[IntRow],
) -> bool:
    """The image-shrinks early-exit walk (endomorphism mode).

    The core/CQ-minimization walk (previously inlined in
    :mod:`repro.relational.homplan`): ``used`` holds the image rows of
    the source atoms matched so far. The moment a candidate's image row
    repeats, the homomorphism is guaranteed non-injective on rows — a
    proper retraction — so the remaining atoms only need *existence*
    (:func:`has_extension`), not enumeration. A walk that completes
    without a repeat is a row-injective endomorphism and is rejected. A
    True return unwinds without touching ``regs``, so the caller
    decodes the witnessing assignment straight from the registers. See
    the module NOTE about the deliberately inlined candidate loop.
    """
    if depth == 0:
        native = _backend.active_native()
        if native is not None:
            retracts: bool = native.retraction_walk(
                state.index,
                state.irows,
                state.rows_list,
                _pack(steps),
                regs,
                used,
            )
            return retracts
    if depth == len(steps):
        return False  # complete, but row-injective: not a proper retraction
    step = steps[depth]
    probes = step.probes
    next_depth = depth + 1
    if step.membership:
        irow = tuple(regs[slot] for slot in step.probe_slots)
        if irow not in state.irows:
            return False
        if irow in used:
            return _has_extension_py(state, steps, next_depth, regs)
        used.add(irow)
        if retraction_walk(state, steps, next_depth, regs, used):
            return True
        used.discard(irow)
        return False
    best: Sequence[IntRow]
    if probes:
        index = state.index
        chosen = None
        for column, slot in probes:
            bucket = index.get((column, regs[slot]))
            if not bucket:
                return False
            if chosen is None or len(bucket) < len(chosen):
                chosen = bucket
        assert chosen is not None
        best = chosen
    else:
        best = state.rows_list
    verify = step.verify_probes
    binds = step.binds
    checks = step.checks
    for irow in best:
        ok = True
        for column, slot in verify:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        for column, slot in binds:
            regs[slot] = irow[column]
        for column, slot in checks:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        if irow in used:
            if _has_extension_py(state, steps, next_depth, regs):
                return True
            continue
        used.add(irow)
        if retraction_walk(state, steps, next_depth, regs, used):
            return True
        used.discard(irow)
    return False


def _has_extension_py(
    state: KernelState,
    steps: tuple[AtomStep, ...],
    depth: int,
    regs: list[int],
) -> bool:
    """:func:`has_extension` without the backend dispatch.

    The python walkers recurse into existence checks at arbitrary
    depths (the retraction walk's switch-to-existence, the violation
    walk's conclusion probe); routing those through the dispatching
    entry point would be wasted work — when a python walker is running,
    the python backend is the active one for this walk.
    """
    if depth == len(steps):
        return True
    step = steps[depth]
    probes = step.probes
    if step.membership:
        if tuple(regs[slot] for slot in step.probe_slots) in state.irows:
            return _has_extension_py(state, steps, depth + 1, regs)
        return False
    best: Sequence[IntRow]
    if probes:
        index = state.index
        chosen = None
        for column, slot in probes:
            bucket = index.get((column, regs[slot]))
            if not bucket:
                return False
            if chosen is None or len(bucket) < len(chosen):
                chosen = bucket
        assert chosen is not None
        best = chosen
    else:
        best = state.rows_list
    verify = step.verify_probes
    binds = step.binds
    checks = step.checks
    next_depth = depth + 1
    for irow in best:
        ok = True
        for column, slot in verify:
            if irow[column] != regs[slot]:
                ok = False
                break
        if not ok:
            continue
        for column, slot in binds:
            regs[slot] = irow[column]
        for column, slot in checks:
            if irow[column] != regs[slot]:
                ok = False
                break
        if ok and _has_extension_py(state, steps, next_depth, regs):
            return True
    return False

"""Join-backend selection: the compiled C walkers vs the pure-python ones.

The join kernel ships two implementations of the same walker semantics:

* **python** — the reference implementation in
  :mod:`repro.kernel.joins`, always present, always correct;
* **native** — :mod:`repro.kernel._native`, a hand-written CPython
  extension compiled at install time when a C toolchain is available
  (``setup.py`` marks it *optional*: a missing compiler degrades the
  wheel to pure python instead of failing the install).

Selection follows the existing ``REPRO_*`` engine-switch convention
(``REPRO_CHASE_KERNEL`` / ``REPRO_MODEL_CHECKER`` / ``REPRO_HOM_ENGINE``)
with one difference: the join backend is resolved **once per process**,
not per call. Every compiled engine shares one set of structurally
cached plans, and the walkers under those plans must agree within a
process for provenance on outcomes to mean anything — so
:func:`resolve_join_backend` is a single cached function and every
layer (the chase, the model checker, the hom engine, forkserver pool
workers) asks it instead of re-reading the environment.

``REPRO_JOIN_BACKEND`` values:

* ``auto`` (default) — native when importable, else python;
* ``native`` — require the extension; when it is absent, log a warning
  **once** and fall back to python (the request is a preference, not a
  hard dependency — behavior is identical either way);
* ``python`` — force the reference implementation (benchmark baselines,
  differential debugging).

Pool workers do not re-derive the answer from their own environment:
the parent ships its *resolved* backend through the worker initializer
(:func:`set_join_backend`), so a pool can never run mixed backends
behind one parent.
"""

from __future__ import annotations

import logging
import os
from types import ModuleType
from typing import Optional

logger = logging.getLogger(__name__)

#: The engine-selector environment variable, following the
#: ``REPRO_CHASE_KERNEL`` / ``REPRO_MODEL_CHECKER`` / ``REPRO_HOM_ENGINE``
#: naming convention.
ENV_VAR = "REPRO_JOIN_BACKEND"

#: Accepted ``REPRO_JOIN_BACKEND`` values.
CHOICES = ("auto", "native", "python")

#: Resolved backend name, or None before first resolution.
_resolved: Optional[str] = None

#: The imported native module when the resolved backend is native.
_native_module: Optional[ModuleType] = None

#: Whether the native-requested-but-unavailable warning already fired
#: (the log-once contract: resolution is cached, but tests that reset
#: the cache must not re-spam the log either).
_warned_unavailable = False


def _import_native() -> Optional[ModuleType]:
    """The compiled extension module, or None when not built."""
    try:
        from repro.kernel import _native  # noqa: PLC0415
    except ImportError:
        return None
    return _native


def native_available() -> bool:
    """True when the compiled extension can be imported."""
    return _import_native() is not None


def resolve_join_backend() -> str:
    """The process-wide join backend: ``"native"`` or ``"python"``.

    Resolved once and cached — the parent process and every consumer
    (chase plans, model checks, hom walks, ``/v1/stats``, metric info
    gauges) see one consistent answer. Invalid ``REPRO_JOIN_BACKEND``
    values raise; ``native`` without a built extension warns once and
    falls back to python.
    """
    global _resolved, _native_module, _warned_unavailable
    if _resolved is not None:
        return _resolved
    requested = os.environ.get(ENV_VAR, "auto")
    if requested not in CHOICES:
        raise ValueError(
            f"unknown join backend {requested!r} in ${ENV_VAR} "
            f"(use one of {CHOICES})"
        )
    native = None if requested == "python" else _import_native()
    if requested == "native" and native is None and not _warned_unavailable:
        _warned_unavailable = True
        logger.warning(
            "%s=native requested but repro.kernel._native is not built; "
            "falling back to the pure-python join backend "
            "(build with `pip install .` on a machine with a C compiler, "
            "or `python setup.py build_ext --inplace` in a source tree)",
            ENV_VAR,
        )
    _native_module = native
    _resolved = "python" if native is None else "native"
    return _resolved


def active_native() -> Optional[ModuleType]:
    """The native module when it is the resolved backend, else None.

    This is the per-call dispatch hook the walkers in
    :mod:`repro.kernel.joins` consult; after the first resolution it is
    one module-global read.
    """
    if _resolved is None:
        resolve_join_backend()
    return _native_module


def set_join_backend(backend: Optional[str]) -> str:
    """Re-resolve the process backend from an explicit request.

    Used by pool-worker initializers (the parent ships its *resolved*
    backend so workers cannot drift from it) and by the differential
    test fixtures. ``None`` re-resolves from the environment. Returns
    the newly resolved backend. Safe to call at any time: compiled
    plans are backend-neutral (the native step packing lives in a side
    cache), so switching mid-process cannot poison a plan cache.
    """
    global _resolved, _native_module
    if backend is not None:
        if backend not in CHOICES:
            raise ValueError(
                f"unknown join backend {backend!r} (use one of {CHOICES})"
            )
        os.environ[ENV_VAR] = backend
    _resolved = None
    _native_module = None
    return resolve_join_backend()


class join_backend_override:
    """Context manager pinning the join backend, for tests.

    Restores both the environment variable and the cached resolution on
    exit, so a parametrized differential suite can interleave backends
    without order effects.
    """

    def __init__(self, backend: str):
        self.backend = backend
        self._saved_env: Optional[str] = None

    def __enter__(self) -> str:
        self._saved_env = os.environ.get(ENV_VAR)
        return set_join_backend(self.backend)

    def __exit__(self, *exc_info: object) -> None:
        if self._saved_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self._saved_env
        set_join_backend(None)


def join_backend_info() -> dict[str, object]:
    """A JSON-safe description of the resolved backend, for ``/v1/stats``."""
    return {
        "join_backend": resolve_join_backend(),
        "native_available": native_available(),
        "requested": os.environ.get(ENV_VAR, "auto"),
    }

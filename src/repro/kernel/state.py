"""The interned kernel view of a live :class:`Instance`.

Extracted from :mod:`repro.kernel.joins` when the kernel grew its
native backend: the walkers are pure step evaluators over this state,
and keeping the state (the one component that writes through to
:class:`~repro.relational.instance.Instance` internals) in its own
module keeps the audited surface small — this module and the walker
module are the only entries on the repo lint's Instance-storage
allowlist (``scripts/lint_invariants.py``).

The :class:`~repro.relational.values.InternTable` fast path lives here
too: the state holds the table's raw ``(ids, values)`` pair and interns
inline (one dict probe per cell) instead of paying a bound-method call
per value — the dominant cost of single-shot small-CQ calls, which
intern a handful of values against a small instance and then walk a
two-step plan. With the native backend active, bulk interning and index
construction run in C (:func:`repro.kernel._native.fill_state`).
"""

from __future__ import annotations

from typing import Optional

from repro.kernel import backend as _backend
from repro.relational.instance import Instance, Row
from repro.relational.values import Value

#: An interned row: one dense int per column.
IntRow = tuple[int, ...]


class KernelState:
    """The interned view of a live :class:`Instance`, kept in sync.

    Rows are tuples of dense ints (via ``instance.intern_table``); the
    inverted index maps ``(column, value id)`` to a list of int rows.

    Historically each compiled consumer built a fresh ``KernelState``
    per call and was then the only mutator; the canonical way to obtain
    one now is :meth:`Instance.kernel_view`, which caches the view on
    the instance and keeps it in sync through the instance's own
    ``add``/``discard`` hooks — so the view survives out-of-band
    mutation and repeated calls stop paying O(instance) construction.
    Constructing ``KernelState(instance)`` directly still works (tests
    and one-shot callers do) but such a detached view is *not*
    subscribed to the instance and goes stale on mutation.
    """

    __slots__ = (
        "instance",
        "values",
        "_ids",
        "index",
        "irows",
        "rows_list",
        "_pos",
    )

    def __init__(self, instance: Instance):
        self.instance = instance
        table = instance.intern_table
        ids, values = table.raw()
        #: id -> Value (the table's own list, shared, append-only).
        self.values: list[Value] = values
        #: Value -> id (the table's own dict, shared).
        self._ids: dict[Value, int] = ids
        self.index: dict[tuple[int, int], list[IntRow]] = {}
        self.irows: set[IntRow] = set()
        self.rows_list: list[IntRow] = []
        #: Position of each int row in ``rows_list`` (swap-remove on
        #: retraction keeps the scan list dense without an O(n) shift).
        self._pos: dict[IntRow, int] = {}
        native = _backend.active_native()
        if native is not None:
            # One C call interns every row and builds the set, scan
            # list, position map and inverted index together.
            native.fill_state(
                instance,
                ids,
                values,
                self.irows,
                self.rows_list,
                self._pos,
                self.index,
            )
        else:
            for row in instance:
                self._admit(self.intern_row(row))

    def _admit(self, irow: IntRow) -> None:
        self.irows.add(irow)
        self._pos[irow] = len(self.rows_list)
        self.rows_list.append(irow)
        index = self.index
        for column, vid in enumerate(irow):
            key = (column, vid)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [irow]
            else:
                bucket.append(irow)

    def _retract(self, irow: IntRow) -> None:
        """Drop ``irow`` from the view (no-op when absent).

        Called by :meth:`Instance.discard` on the subscribed view; the
        index buckets pay an O(bucket) list removal, which is fine on
        the (cold) deletion path.
        """
        pos = self._pos.pop(irow, None)
        if pos is None:
            return
        self.irows.discard(irow)
        rows_list = self.rows_list
        last = rows_list.pop()
        if pos < len(rows_list):
            rows_list[pos] = last
            self._pos[last] = pos
        index = self.index
        for column, vid in enumerate(irow):
            key = (column, vid)
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(irow)
                if not bucket:
                    del index[key]

    def intern(self, value: Value) -> int:
        """The dense id for one value (assigned on first sight).

        The table fast path, inlined: one dict probe for the hit case.
        Kept as a method for the walk-setup paths that intern a handful
        of prebound values (``GoalPlan.registers``, the hom engine's
        register loading); bulk row interning uses :meth:`intern_row`.
        """
        ids = self._ids
        idx = ids.get(value)
        if idx is None:
            values = self.values
            idx = len(values)
            ids[value] = idx
            values.append(value)
        return idx

    def intern_row(self, row: Row) -> IntRow:
        native = _backend.active_native()
        if native is not None:
            interned: IntRow = native.intern_row(row, self._ids, self.values)
            return interned
        ids = self._ids
        values = self.values
        out: list[int] = []
        for value in row:
            idx = ids.get(value)
            if idx is None:
                idx = len(values)
                ids[value] = idx
                values.append(value)
            out.append(idx)
        return tuple(out)

    def add(self, row: Row) -> Optional[IntRow]:
        """Insert ``row`` into instance and view; None when already present."""
        irow = self.intern_row(row)
        return irow if self.add_interned(irow) is not None else None

    def add_interned(self, irow: IntRow) -> Optional[Row]:
        """Insert a row already expressed as interned ids (the fire path).

        The kernel holds conclusion rows as registers of interned ids,
        so presence is one int-tuple set test and the Value row is only
        materialized for genuinely new rows (returned; None when the
        row was already present). Bypasses :meth:`Instance.add`'s arity
        check (kernel rows come from compiled conclusion templates,
        correct by construction) but keeps the instance's row set,
        inverted index and snapshot invalidation exactly in sync — the
        goal predicate and every post-chase consumer see a normal
        instance. Relies on the class invariant that ``irows`` mirrors
        the instance's row set exactly.
        """
        if irow in self.irows:
            return None
        values = self.values
        row = tuple(values[vid] for vid in irow)
        instance = self.instance
        instance._rows.add(row)
        instance._snapshot = None
        instance._epoch += 1
        index = instance._index
        for column, value in enumerate(row):
            key = (column, value)
            bucket = index.get(key)
            if bucket is None:
                index[key] = {row}
            else:
                bucket.add(row)
        self._admit(irow)
        view = instance._view
        if view is not None and view is not self:
            # A detached state is mutating an instance that also has a
            # subscribed view — keep the subscribed view honest too
            # (interned ids are shared through the instance's table).
            view._admit(irow)
        return row
